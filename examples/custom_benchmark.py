#!/usr/bin/env python
"""Author a custom synthetic workload and inspect its phase structure.

Shows the full program-model API: build basic blocks with chosen
instruction mixes and memory patterns, group them into behaviours, write a
phase script, then watch the online phase classifier discover the phases
you wrote — including where its BBV view diverges from the ground truth.
"""

import math

from repro import (
    BbvTracker,
    Behavior,
    BlockBuilder,
    Mode,
    PatternKind,
    Program,
    Segment,
    SimulationEngine,
)
from repro.phase import OnlinePhaseClassifier

BBV_PERIOD = 5_000


def build_program() -> Program:
    builder = BlockBuilder(seed=7)

    # A compute-bound loop body: high ILP, L1-resident data.
    crunch = builder.build(
        ops=24,
        mix="int_light",
        dep_density=0.1,
        mem_patterns=[builder.pattern(PatternKind.REUSE, 8 * 1024, stride=8)],
    )
    # A memory-bound loop body: pointer chasing over 16 MB.
    wander = builder.build(
        ops=12,
        mix="int",
        dep_density=0.4,
        mem_patterns=[builder.pattern(PatternKind.CHASE, 16 * 1024 * 1024)],
    )
    # A branchy scanning loop.
    scan = builder.build(
        ops=10,
        mix="int",
        dep_density=0.25,
        mem_patterns=[builder.pattern(PatternKind.STREAM, 1024 * 1024, stride=8)],
        random_taken_prob=0.4,
    )

    behaviors = [
        Behavior("crunch", [(crunch, (80, 10))]),
        Behavior("wander", [(wander, (60, 8))]),
        Behavior("scan", [(scan, (90, 12))]),
    ]
    script = [
        Segment("crunch", 60_000),
        Segment("wander", 40_000),
        Segment("crunch", 60_000),
        Segment("scan", 50_000),
        Segment("wander", 40_000),
    ]
    return Program("custom.demo", [crunch, wander, scan], behaviors, script, seed=99)


def main() -> None:
    program = build_program()
    print(f"program: {program}")
    print(f"true phase script: {[(s.behavior, s.ops) for s in program.script]}\n")

    tracker = BbvTracker()
    engine = SimulationEngine(program, bbv_tracker=tracker)
    classifier = OnlinePhaseClassifier(threshold=0.05 * math.pi)

    print(f"{'ops':>10}  {'true behavior':<14} {'detected phase':>14}")
    while not engine.exhausted:
        true_behavior = program.true_phase_at(engine.ops_completed)
        run = engine.run(Mode.FUNC_WARM, BBV_PERIOD)
        if run.ops == 0:
            break
        decision = classifier.observe(tracker.take_vector(), run.ops)
        marker = " <- new phase" if decision.created else (
            " <- transition" if decision.changed else ""
        )
        if decision.changed or decision.created or engine.ops_completed % 25_000 < BBV_PERIOD:
            print(f"{engine.ops_completed:>10,}  {true_behavior:<14} "
                  f"{decision.phase_id:>14}{marker}")

    print(f"\ndetected {classifier.n_phases} phases over "
          f"{classifier.n_observations} periods "
          f"({classifier.n_changes} transitions); ground truth has 3 behaviours")
    for profile in classifier.phases:
        share = profile.ops / engine.ops_completed
        print(f"  phase {profile.phase_id}: {share:5.1%} of execution")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Design-space exploration with sampled simulation — the paper's use case.

"Cycle-accurate architectural simulation is a vital tool in exploring
potential designs of modern processors" — and sampling is what makes a
sweep affordable.  This example sweeps three cache configurations over two
benchmarks, once with full-detail simulation and once with PGSS-Sim, and
shows that PGSS ranks the design points identically at a fraction of the
detailed-simulation cost.
"""

from repro import DEFAULT_MACHINE, Scale, get_workload
from repro.sampling import FullDetail, Pgss, PgssConfig

SCALE = Scale.QUICK
BENCHMARKS = ("164.gzip", "181.mcf")

#: (label, L1 KB, L2 KB) design points.
DESIGNS = (
    ("small ", 16, 256),
    ("base  ", 64, 1024),
    ("big   ", 128, 4096),
)


def main() -> None:
    total_full = 0
    total_pgss = 0
    for benchmark in BENCHMARKS:
        print(f"== {benchmark}")
        rank_full = []
        rank_pgss = []
        for label, l1_kb, l2_kb in DESIGNS:
            machine = DEFAULT_MACHINE.scaled_cache(l1_kb, l2_kb)
            program = get_workload(benchmark, SCALE)

            truth = FullDetail(machine=machine).run(program)
            estimate = Pgss(PgssConfig.from_scale(SCALE), machine=machine).run(
                get_workload(benchmark, SCALE)
            )
            total_full += truth.detailed_ops
            total_pgss += estimate.detailed_ops
            rank_full.append((truth.ipc_estimate, label))
            rank_pgss.append((estimate.ipc_estimate, label))
            print(f"  {label} L1={l1_kb:3d}KB L2={l2_kb:4d}KB   "
                  f"true IPC {truth.ipc_estimate:.4f}   "
                  f"PGSS {estimate.ipc_estimate:.4f} "
                  f"(err {estimate.percent_error(truth.ipc_estimate):.1f}%)")

        order_full = [label for _, label in sorted(rank_full, reverse=True)]
        order_pgss = [label for _, label in sorted(rank_pgss, reverse=True)]
        agree = "agree" if order_full == order_pgss else "DISAGREE"
        print(f"  design ranking (fast->slow): full={order_full} "
              f"pgss={order_pgss} -> {agree}\n")

    print(f"detailed ops: full sweep {total_full:,} vs "
          f"PGSS sweep {total_pgss:,} "
          f"({total_full / total_pgss:.1f}x reduction)")


if __name__ == "__main__":
    main()

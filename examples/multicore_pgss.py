#!/usr/bin/env python
"""Multicore PGSS — the paper's future-work extension, running.

Two cores with private L1s share one L2.  Each core runs its own PGSS-Sim
loop (own BBV tracker, classifier, sample budget) while the cores'
execution interleaves, so shared-L2 interference shapes what the samples
observe.  The per-core estimates are compared against a fully detailed
co-run of the same pair.
"""

from repro import Scale, get_workload
from repro.cpu import Mode, MultiCoreEngine, MultiCorePgss
from repro.sampling import PgssConfig

SCALE = Scale.QUICK
PAIR = ("177.mesa", "181.mcf")  # compute-bound next to memory-bound


def main() -> None:
    programs = [get_workload(name, SCALE) for name in PAIR]
    print(f"co-running {PAIR[0]} and {PAIR[1]} on a shared-L2 CMP\n")

    truth = MultiCoreEngine(
        [get_workload(name, SCALE) for name in PAIR]
    ).run_all(Mode.DETAIL)
    for result in truth:
        print(f"  full detail core {result.core} ({result.program}): "
              f"IPC {result.ipc:.4f}")

    config = PgssConfig.from_scale(SCALE)
    estimates = MultiCorePgss(lambda core: config).run(programs)
    print()
    for core, result in estimates.items():
        true_ipc = truth[core].ipc
        err = 100 * abs(result.ipc_estimate - true_ipc) / true_ipc
        print(f"  PGSS core {core} ({result.program}): "
              f"IPC {result.ipc_estimate:.4f} (err {err:.1f}%), "
              f"{result.extras['n_phases']} phases, "
              f"{result.detailed_ops:,} detailed ops of "
              f"{truth[core].ops:,}")

    total_detail = sum(r.detailed_ops for r in estimates.values())
    total_ops = sum(r.ops for r in truth)
    print(f"\nsuite detail fraction: {total_detail / total_ops:.1%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: sample one benchmark with PGSS-Sim and check its accuracy.

Runs the 164.gzip analogue three ways — full detail (ground truth), SMARTS,
and PGSS-Sim — and compares accuracy against detailed-simulation cost.
Uses the QUICK scale so the whole script finishes in a few seconds; switch
to ``Scale.SCALED`` for the figures' operating point.
"""

from repro import Scale, get_workload
from repro.sampling import FullDetail, Pgss, PgssConfig, Smarts, SmartsConfig

SCALE = Scale.QUICK


def main() -> None:
    program = get_workload("164.gzip", SCALE)
    print(f"workload: {program}")

    truth = FullDetail().run(program)
    print(f"\nfull detail : IPC {truth.ipc_estimate:.4f} "
          f"({truth.detailed_ops:,} detailed ops)")

    smarts = Smarts(SmartsConfig.from_scale(SCALE)).run(program)
    print(f"SMARTS      : IPC {smarts.ipc_estimate:.4f} "
          f"(err {smarts.percent_error(truth.ipc_estimate):.2f}%, "
          f"{smarts.detailed_ops:,} detailed ops, {smarts.n_samples} samples)")

    pgss = Pgss(PgssConfig.from_scale(SCALE)).run(program)
    print(f"PGSS-Sim    : IPC {pgss.ipc_estimate:.4f} "
          f"(err {pgss.percent_error(truth.ipc_estimate):.2f}%, "
          f"{pgss.detailed_ops:,} detailed ops, {pgss.n_samples} samples)")
    print(f"\nPGSS found {pgss.extras['n_phases']} phases "
          f"({pgss.extras['n_phase_changes']} transitions); "
          f"samples per phase: {pgss.extras['samples_per_phase']}")
    print(f"detail reduction vs SMARTS: "
          f"{smarts.detailed_ops / pgss.detailed_ops:.1f}x")


if __name__ == "__main__":
    main()

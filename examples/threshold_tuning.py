#!/usr/bin/env python
"""Section-4 style threshold selection for a benchmark.

Reproduces the paper's threshold methodology on one workload: gather
consecutive-period (BBV change, IPC change) pairs from an instrumented
run, score candidate thresholds by detection rate and false-positive rate
(the Figure 6 regions), and compare with the runtime
:class:`~repro.phase.AdaptiveThresholdSelector` that needs no detailed
simulation at all.
"""

import math

from repro import Scale, get_workload
from repro.phase import (
    AdaptiveThresholdSelector,
    consecutive_changes,
    detection_rate,
    false_positive_rate,
)
from repro.sampling import collect_reference_trace

SCALE = Scale.QUICK
BENCHMARK = "256.bzip2"
PERIOD_FACTOR = 4  # analysis period = 4 trace windows
SIGMA = 0.3        # IPC changes above .3 sigma count as significant


def main() -> None:
    program = get_workload(BENCHMARK, SCALE)
    print(f"collecting instrumented trace of {BENCHMARK} ...")
    trace = collect_reference_trace(program, SCALE.trace_window).aggregate(
        PERIOD_FACTOR
    )
    pairs = consecutive_changes(list(trace.normalized_bbvs()), trace.ipcs.tolist())
    print(f"{len(pairs)} consecutive-period pairs, "
          f"IPC sigma {float(trace.ipcs.std()):.3f}\n")

    print(f"{'threshold':>10} {'caught':>8} {'false+':>8}")
    for frac in (0.02, 0.05, 0.10, 0.15, 0.20, 0.25):
        caught = detection_rate(pairs, frac * math.pi, SIGMA)
        false_pos = false_positive_rate(pairs, frac * math.pi, SIGMA)
        print(f"{frac:>9.2f}p {caught:>7.1%} {false_pos:>7.1%}")

    # The offline pick: highest threshold still catching >=90% of what the
    # tightest threshold catches (the paper's knee reading).
    base = detection_rate(pairs, 0.02 * math.pi, SIGMA)
    offline = 0.02
    for frac in (0.05, 0.10, 0.15, 0.20, 0.25):
        if detection_rate(pairs, frac * math.pi, SIGMA) >= 0.9 * base:
            offline = frac
    print(f"\noffline knee pick: {offline:.2f}pi")

    # The runtime pick: no detailed simulation, BBV stream only.
    selector = AdaptiveThresholdSelector()
    runtime = selector.select(list(trace.normalized_bbvs()))
    print(f"adaptive (runtime) pick: {runtime:.2f}pi")
    for row in selector.evaluate(list(trace.normalized_bbvs())):
        print(f"  .{int(row['threshold'] * 100):02d}pi: "
              f"{row['n_phases']} phases, change rate {row['change_rate']:.2f}, "
              f"usable={row['usable']}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Trace-driven simulation: record once, replay everywhere.

Captures a workload's dynamic basic-block trace, saves it to disk, then
replays the identical instruction stream on three cache configurations —
the classic trace-driven methodology that isolates architectural effects
from workload generation (and the setting of the Online-SimPoint paper's
"cycle-close trace generation").
"""

import tempfile
from pathlib import Path

from repro import DEFAULT_MACHINE, Mode, Scale, SimulationEngine, get_workload
from repro.program import EventTrace, record_trace

WORKLOAD = "256.bzip2"
SCALE = Scale.QUICK

DESIGNS = (
    ("tiny  ", 8, 128),
    ("base  ", 64, 1024),
    ("huge  ", 256, 8192),
)


def main() -> None:
    program = get_workload(WORKLOAD, SCALE)
    print(f"recording {WORKLOAD} ({program.total_ops:,} nominal ops) ...")
    trace = record_trace(program)

    path = Path(tempfile.mkdtemp()) / "bzip2.trace.npz"
    trace.save(path)
    print(f"saved {len(trace):,} block events to {path} "
          f"({path.stat().st_size / 1024:.0f} KiB)\n")

    loaded = EventTrace.load(path)
    print(f"{'design':8} {'L1':>6} {'L2':>7} {'IPC':>8}")
    for label, l1_kb, l2_kb in DESIGNS:
        machine = DEFAULT_MACHINE.scaled_cache(l1_kb, l2_kb)
        engine = SimulationEngine(
            get_workload(WORKLOAD, SCALE),
            machine=machine,
            stream=loaded.as_stream(get_workload(WORKLOAD, SCALE)),
        )
        result = engine.run_to_end(Mode.DETAIL)
        print(f"{label:8} {l1_kb:>4}KB {l2_kb:>5}KB {result.ipc:>8.4f}")

    print("\nsame trace, three machines: every IPC difference above is an "
          "architecture effect.")


if __name__ == "__main__":
    main()

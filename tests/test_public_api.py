"""Public-API surface tests: exports, docstrings, and import hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.isa",
    "repro.program",
    "repro.memory",
    "repro.branch",
    "repro.cpu",
    "repro.bbv",
    "repro.phase",
    "repro.clustering",
    "repro.sampling",
    "repro.stats",
    "repro.experiments",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    def _walk_modules(self):
        yield repro
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            yield importlib.import_module(info.name)

    def test_every_module_documented(self):
        for module in self._walk_modules():
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_public_classes_and_functions_documented(self):
        missing = []
        for module in self._walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, missing

    def test_public_methods_documented(self):
        missing = []
        for module in self._walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not inspect.isclass(obj):
                    continue
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not inspect.getdoc(attr):
                        missing.append(f"{module.__name__}.{name}.{attr_name}")
        assert not missing, missing


class TestImportHygiene:
    def test_no_import_cycles_detected(self):
        """A fresh import of every module succeeds in isolation order."""
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            importlib.import_module(info.name)

    def test_cli_importable_without_side_effects(self):
        module = importlib.import_module("repro.cli")
        assert callable(module.main)

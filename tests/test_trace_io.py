"""Tests for trace recording and trace-driven replay."""

import numpy as np
import pytest

from repro import Mode, ProgramError, ProgramStream, SimulationEngine, StreamExhausted
from repro.program import EventTrace, TraceStream, record_trace
from repro.sampling import FullDetail

from conftest import make_two_phase_program


@pytest.fixture(scope="module")
def program():
    return make_two_phase_program()


@pytest.fixture(scope="module")
def trace(program):
    return record_trace(program)


class TestRecord:
    def test_records_full_run(self, program, trace):
        assert len(trace) > 0
        assert trace.total_ops(program) >= program.total_ops

    def test_matches_live_stream(self, program, trace):
        stream = ProgramStream(program)
        for i, event in enumerate(stream):
            assert trace.bids[i] == event.block.bid
            assert trace.taken[i] == event.taken
            assert trace.ks[i] == event.k

    def test_max_ops_bound(self, program):
        partial = record_trace(program, max_ops=10_000)
        assert 10_000 <= partial.total_ops(program) <= 10_100

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ProgramError):
            EventTrace("x", np.zeros(2), np.zeros(3, dtype=bool), np.zeros(2))


class TestSaveLoad:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = EventTrace.load(path)
        assert loaded.program_name == trace.program_name
        assert (loaded.bids == trace.bids).all()
        assert (loaded.taken == trace.taken).all()
        assert (loaded.ks == trace.ks).all()


class TestReplay:
    def test_rejects_wrong_program(self, trace):
        other = make_two_phase_program(seed=99)
        other_named = type(other)(
            "different", other.blocks, list(other.behaviors.values()),
            other.script, seed=1,
        )
        with pytest.raises(ProgramError):
            TraceStream(other_named, trace)

    def test_replay_events_identical(self, program, trace):
        replay = trace.as_stream(program)
        live = ProgramStream(program)
        for live_event in live:
            replayed = replay.next_event()
            assert replayed.block is live_event.block
            assert replayed.taken == live_event.taken
            assert replayed.k == live_event.k
        assert replay.next_event() is None

    def test_snapshot_restore(self, program, trace):
        replay = trace.as_stream(program)
        replay.take_ops(5_000)
        snap = replay.snapshot()
        tail1 = [e.block.bid for e in replay]
        replay2 = trace.as_stream(program)
        replay2.restore(snap)
        tail2 = [e.block.bid for e in replay2]
        assert tail1 == tail2

    def test_take_ops_exhaustion(self, program, trace):
        replay = trace.as_stream(program)
        with pytest.raises(StreamExhausted):
            replay.take_ops(10**9)

    def test_clone_fresh(self, program, trace):
        replay = trace.as_stream(program)
        replay.take_ops(5_000)
        fresh = replay.clone_fresh()
        assert fresh.ops_emitted == 0


class TestTraceDrivenSimulation:
    def test_replayed_ipc_matches_execution_driven(self, program, trace):
        """Trace-driven detailed simulation is bit-identical to
        execution-driven simulation of the same program."""
        live = FullDetail().run(program)
        engine = SimulationEngine(program, stream=trace.as_stream(program))
        replayed = engine.run_to_end(Mode.DETAIL)
        assert replayed.ops == live.total_ops
        assert replayed.ipc == pytest.approx(live.ipc_estimate, rel=1e-12)

    def test_replay_on_different_machine(self, program, trace):
        """The same trace replays under a different cache configuration,
        isolating architecture effects from workload generation."""
        from repro import DEFAULT_MACHINE

        small = DEFAULT_MACHINE.scaled_cache(4, 64)
        engine = SimulationEngine(
            program, machine=small, stream=trace.as_stream(program)
        )
        result = engine.run_to_end(Mode.DETAIL)
        base = FullDetail().run(program)
        assert result.ipc <= base.ipc_estimate + 1e-9

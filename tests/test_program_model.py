"""Tests for memory patterns, blocks, behaviors and programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Behavior,
    BlockBuilder,
    MemPattern,
    PatternKind,
    Program,
    ProgramError,
    Segment,
)
from repro.isa import Instruction, Op
from repro.program.block import BasicBlock


class TestMemPattern:
    def test_stream_advances_by_stride(self):
        p = MemPattern(PatternKind.STREAM, base=0x1000, span=1 << 20, stride=8)
        assert p.address(0) == 0x1000
        assert p.address(1) == 0x1008
        assert p.address(10) == 0x1050

    def test_stream_wraps_at_span(self):
        p = MemPattern(PatternKind.STREAM, base=0, span=64, stride=8)
        assert p.address(8) == p.address(0)

    def test_reuse_stays_in_span(self):
        p = MemPattern(PatternKind.REUSE, base=0x100, span=256, stride=8)
        for k in range(1000):
            assert 0x100 <= p.address(k) < 0x100 + 256

    def test_random_stays_in_span(self):
        p = MemPattern(PatternKind.RANDOM, base=0x1000, span=4096, seed=7)
        for k in range(1000):
            assert 0x1000 <= p.address(k) < 0x1000 + 4096

    def test_random_is_deterministic(self):
        p = MemPattern(PatternKind.RANDOM, base=0, span=1 << 20, seed=3)
        assert [p.address(k) for k in range(50)] == [p.address(k) for k in range(50)]

    def test_random_addresses_revisit_lines(self):
        """The avalanche hash must produce statistical reuse, not a
        collision-free permutation (the bug class DESIGN.md notes)."""
        p = MemPattern(PatternKind.RANDOM, base=0, span=256 * 1024, seed=1)
        lines = {p.address(k) >> 6 for k in range(8000)}
        # A bijection would give ~4096 distinct lines; birthday-style
        # collisions must keep it clearly below the ceiling.
        assert len(lines) < 3900

    def test_random_eight_byte_aligned(self):
        p = MemPattern(PatternKind.RANDOM, base=0, span=1 << 16, seed=9)
        assert all(p.address(k) % 8 == 0 for k in range(200))

    def test_chase_serialises(self):
        assert MemPattern(PatternKind.CHASE, base=0, span=64).serialises
        assert not MemPattern(PatternKind.RANDOM, base=0, span=64).serialises

    def test_rejects_zero_span(self):
        with pytest.raises(ProgramError):
            MemPattern(PatternKind.STREAM, base=0, span=0)

    def test_rejects_zero_stride_for_stream(self):
        with pytest.raises(ProgramError):
            MemPattern(PatternKind.STREAM, base=0, span=64, stride=0)

    def test_footprint_lines(self):
        p = MemPattern(PatternKind.RANDOM, base=0, span=64 * 100)
        assert p.footprint_lines() == 100

    @given(st.integers(min_value=0, max_value=1 << 30))
    @settings(max_examples=100, deadline=None)
    def test_any_k_stays_in_region(self, k):
        for kind in PatternKind:
            p = MemPattern(kind, base=1 << 26, span=8192, stride=16, seed=5)
            assert (1 << 26) <= p.address(k) < (1 << 26) + 8192


class TestBasicBlock:
    def test_must_end_in_branch(self):
        with pytest.raises(ProgramError):
            BasicBlock(0, 0x1000, [Instruction(Op.IALU, dst=1, src1=2)])

    def test_only_terminator_branches(self):
        insts = [
            Instruction(Op.BRANCH, src1=1),
            Instruction(Op.BRANCH, src1=1),
        ]
        with pytest.raises(ProgramError):
            BasicBlock(0, 0x1000, insts)

    def test_pattern_count_must_match(self):
        insts = [
            Instruction(Op.LOAD, dst=1, src1=2, mem_index=0),
            Instruction(Op.BRANCH, src1=1),
        ]
        with pytest.raises(ProgramError):
            BasicBlock(0, 0x1000, insts, mem_patterns=[])

    def test_branch_address(self):
        insts = [
            Instruction(Op.IALU, dst=1, src1=2),
            Instruction(Op.BRANCH, src1=1),
        ]
        block = BasicBlock(3, 0x1000, insts)
        assert block.branch_address == 0x1004
        assert block.n_ops == 2

    def test_compiled_arrays_consistent(self):
        insts = [
            Instruction(Op.IALU, dst=1, src1=2),
            Instruction(Op.BRANCH, src1=1),
        ]
        block = BasicBlock(0, 0x1000, insts)
        assert block.ops == [int(Op.IALU), int(Op.BRANCH)]
        assert block.dsts == [1, -1]
        assert block.src2s == [-1, -1]

    def test_inst_lines_cover_block(self):
        insts = [Instruction(Op.IALU, dst=1, src1=2)] * 31 + [
            Instruction(Op.BRANCH, src1=1)
        ]
        block = BasicBlock(0, 0x1000, insts)  # 32 insts * 4B = 128B = 2 lines
        assert block.inst_lines == [0x1000, 0x1040]

    def test_rejects_bad_taken_prob(self):
        insts = [Instruction(Op.BRANCH, src1=1)]
        with pytest.raises(ProgramError):
            BasicBlock(0, 0x1000, insts, random_taken_prob=1.5)


class TestBlockBuilder:
    def test_deterministic_given_seed(self):
        b1 = BlockBuilder(seed=9)
        b2 = BlockBuilder(seed=9)
        blk1 = b1.build(16, mix="int", dep_density=0.3)
        blk2 = b2.build(16, mix="int", dep_density=0.3)
        assert blk1.ops == blk2.ops
        assert blk1.dsts == blk2.dsts
        assert blk1.address == blk2.address

    def test_different_seeds_differ(self):
        blk1 = BlockBuilder(seed=1).build(16, mix="int")
        blk2 = BlockBuilder(seed=2).build(16, mix="int")
        assert blk1.ops != blk2.ops or blk1.src1s != blk2.src1s

    def test_requested_op_count(self, builder):
        blk = builder.build(20, mix="mixed")
        assert blk.n_ops == 20

    def test_mem_patterns_all_placed(self, builder):
        pats = [
            builder.pattern(PatternKind.STREAM, 4096),
            builder.pattern(PatternKind.REUSE, 4096, is_write=True),
        ]
        blk = builder.build(16, mem_patterns=pats)
        mem_ops = [op for op in blk.ops if op in (int(Op.LOAD), int(Op.STORE))]
        assert len(mem_ops) == 2
        assert int(Op.STORE) in mem_ops

    def test_chase_load_self_depends(self, builder):
        pats = [builder.pattern(PatternKind.CHASE, 1 << 20)]
        blk = builder.build(12, mem_patterns=pats)
        loads = [i for i in blk.instructions if i.op is Op.LOAD]
        assert len(loads) == 1
        assert loads[0].dst == loads[0].src1

    def test_loads_are_consumed(self, builder):
        """Every non-chase load's destination is read by a later
        instruction in the same block (the IPC-determinism guarantee)."""
        pats = [builder.pattern(PatternKind.RANDOM, 1 << 20) for _ in range(3)]
        blk = builder.build(20, mem_patterns=pats)
        for pos, inst in enumerate(blk.instructions):
            if inst.op is Op.LOAD:
                consumed = any(
                    later.src1 == inst.dst or later.src2 == inst.dst
                    for later in blk.instructions[pos + 1 :]
                )
                assert consumed, f"load at {pos} never consumed"

    def test_unknown_mix_rejected(self, builder):
        with pytest.raises(ProgramError):
            builder.build(16, mix="nope")

    def test_too_small_for_patterns_rejected(self, builder):
        pats = [builder.pattern(PatternKind.STREAM, 4096) for _ in range(5)]
        with pytest.raises(ProgramError):
            builder.build(5, mem_patterns=pats)

    def test_distinct_block_addresses(self, builder):
        blocks = [builder.build(16) for _ in range(20)]
        addresses = [b.branch_address for b in blocks]
        assert len(set(addresses)) == 20

    def test_addresses_spread_for_hash_bits(self, builder):
        """Blocks must scatter across enough address range that the 5-bit
        BBV hash can distinguish them (regression for the collision bug)."""
        blocks = [builder.build(16) for _ in range(10)]
        span = max(b.address for b in blocks) - min(b.address for b in blocks)
        assert span > 4096

    def test_region_bases_disjoint(self, builder):
        p1 = builder.pattern(PatternKind.STREAM, 1 << 20)
        p2 = builder.pattern(PatternKind.STREAM, 1 << 20)
        assert abs(p1.base - p2.base) >= 1 << 20


class TestBehavior:
    def test_entries_exposed(self, builder):
        blk = builder.build(16)
        beh = Behavior("x", [(blk, 10), (blk, (20, 5))])
        assert beh.entries == [(blk, 10, 0), (blk, 20, 5)]

    def test_rejects_empty(self):
        with pytest.raises(ProgramError):
            Behavior("x", [])

    def test_rejects_bad_iterations(self, builder):
        blk = builder.build(16)
        with pytest.raises(ProgramError):
            Behavior("x", [(blk, 0)])
        with pytest.raises(ProgramError):
            Behavior("x", [(blk, (5, 5))])

    def test_resolve_iters_fixed(self, builder):
        import random

        blk = builder.build(16)
        beh = Behavior("x", [(blk, 10)])
        assert beh.resolve_iters(0, random.Random(0)) == 10

    def test_resolve_iters_jitter_in_range(self, builder):
        import random

        blk = builder.build(16)
        beh = Behavior("x", [(blk, (10, 3))])
        rng = random.Random(0)
        draws = {beh.resolve_iters(0, rng) for _ in range(200)}
        assert draws <= set(range(7, 14))
        assert len(draws) > 1

    def test_blocks_deduplicated(self, builder):
        blk = builder.build(16)
        beh = Behavior("x", [(blk, 5), (blk, 7)])
        assert len(beh.blocks) == 1

    def test_mean_ops(self, builder):
        blk = builder.build(16)
        beh = Behavior("x", [(blk, 10)])
        assert beh.mean_ops_per_cycle_through() == 160


class TestProgram:
    def test_rejects_unknown_behavior_in_script(self, builder):
        blk = builder.build(16)
        beh = Behavior("a", [(blk, 5)])
        with pytest.raises(ProgramError):
            Program("p", [blk], [beh], [Segment("b", 1000)])

    def test_rejects_duplicate_behavior_names(self, builder):
        blk = builder.build(16)
        behs = [Behavior("a", [(blk, 5)]), Behavior("a", [(blk, 6)])]
        with pytest.raises(ProgramError):
            Program("p", [blk], behs, [Segment("a", 1000)])

    def test_rejects_bad_block_numbering(self, builder):
        blk1 = builder.build(16)
        blk2 = builder.build(16)
        beh = Behavior("a", [(blk1, 5)])
        with pytest.raises(ProgramError):
            Program("p", [blk2, blk1], [beh], [Segment("a", 1000)])

    def test_total_ops(self, builder):
        blk = builder.build(16)
        beh = Behavior("a", [(blk, 5)])
        prog = Program("p", [blk], [beh], [Segment("a", 1000), Segment("a", 500)])
        assert prog.total_ops == 1500

    def test_true_phase_at(self, builder):
        blk = builder.build(16)
        behs = [Behavior("a", [(blk, 5)]), Behavior("b", [(blk, 5)])]
        prog = Program(
            "p", [blk], behs, [Segment("a", 1000), Segment("b", 500)]
        )
        assert prog.true_phase_at(0) == "a"
        assert prog.true_phase_at(999) == "a"
        assert prog.true_phase_at(1000) == "b"
        assert prog.true_phase_at(10_000) == "b"

    def test_segment_boundaries(self, builder):
        blk = builder.build(16)
        beh = Behavior("a", [(blk, 5)])
        prog = Program("p", [blk], [beh], [Segment("a", 100), Segment("a", 200)])
        assert prog.segment_boundaries() == [100, 300]

    def test_segment_rejects_nonpositive_ops(self):
        with pytest.raises(ProgramError):
            Segment("a", 0)

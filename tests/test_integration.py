"""Cross-module integration tests: the paper's claims in miniature.

These run full technique pipelines on QUICK-scale workloads and assert the
*comparative* properties the paper reports — the same shape the benchmark
harness reproduces at the scaled operating point.
"""

import pytest

from repro import Scale, get_workload
from repro.sampling import (
    FullDetail,
    OnlineSimPoint,
    OnlineSimPointConfig,
    Pgss,
    PgssConfig,
    SimPoint,
    SimPointConfig,
    Smarts,
    SmartsConfig,
    TurboSmarts,
    TurboSmartsConfig,
    collect_reference_trace,
)

SCALE = Scale.QUICK


@pytest.fixture(scope="module")
def gzip_trace():
    program = get_workload("164.gzip", SCALE)
    return program, collect_reference_trace(program, SCALE.trace_window)


class TestAccuracyClaims:
    def test_smarts_accurate(self, gzip_trace):
        program, trace = gzip_trace
        result = Smarts(SmartsConfig.from_scale(SCALE)).run(program)
        assert result.percent_error(trace.true_ipc) < 15.0

    def test_pgss_reasonable_with_far_less_detail(self, gzip_trace):
        program, trace = gzip_trace
        smarts = Smarts(SmartsConfig.from_scale(SCALE)).run(program)
        pgss = Pgss(PgssConfig.from_scale(SCALE)).run(program)
        assert pgss.detailed_ops < smarts.detailed_ops
        assert pgss.percent_error(trace.true_ipc) < 35.0

    def test_simpoint_accurate_but_expensive(self, gzip_trace):
        program, trace = gzip_trace
        sp = SimPoint(SimPointConfig(SCALE.simpoint_intervals[1], 5)).run(
            program, trace=trace
        )
        pgss = Pgss(PgssConfig.from_scale(SCALE)).run(program)
        assert sp.detailed_ops > pgss.detailed_ops
        assert sp.percent_error(trace.true_ipc) < 25.0

    def test_turbo_cheaper_than_smarts_universe(self, gzip_trace):
        program, _ = gzip_trace
        smarts = Smarts(SmartsConfig.from_scale(SCALE)).run(program)
        turbo = TurboSmarts(TurboSmartsConfig.from_scale(SCALE)).run(program)
        assert turbo.detailed_ops <= smarts.detailed_ops

    def test_online_simpoint_runs_whole_suite_interface(self, gzip_trace):
        program, trace = gzip_trace
        result = OnlineSimPoint(
            OnlineSimPointConfig(SCALE.simpoint_intervals[1], 0.10)
        ).run(program, trace=trace)
        assert result.ipc_estimate > 0
        assert result.n_samples >= 1


class TestPhaseAwareness:
    def test_pgss_adapts_samples_to_phases(self):
        """PGSS takes more samples in long/unstable phases and fewer in
        rare ones — Section 3's adaptive-allocation claim."""
        program = get_workload("253.perlbmk", SCALE)
        result = Pgss(
            PgssConfig.from_scale(SCALE, bbv_period_ops=SCALE.pgss_periods[0])
        ).run(program)
        per_phase = result.extras["samples_per_phase"]
        assert len(per_phase) >= 2
        counts = sorted(per_phase.values())
        assert counts[-1] > counts[0]  # unequal allocation

    def test_short_period_finds_more_phases(self):
        program_a = get_workload("164.gzip", SCALE)
        program_b = get_workload("164.gzip", SCALE)
        fine = Pgss(
            PgssConfig.from_scale(SCALE, bbv_period_ops=SCALE.pgss_periods[0])
        ).run(program_a)
        coarse = Pgss(
            PgssConfig.from_scale(SCALE, bbv_period_ops=SCALE.pgss_periods[-1])
        ).run(program_b)
        assert fine.extras["n_phases"] >= coarse.extras["n_phases"]

    def test_loose_threshold_fewer_phases(self):
        tight = Pgss(PgssConfig.from_scale(SCALE, threshold_pi=0.05)).run(
            get_workload("183.equake", SCALE)
        )
        loose = Pgss(PgssConfig.from_scale(SCALE, threshold_pi=0.25)).run(
            get_workload("183.equake", SCALE)
        )
        assert loose.extras["n_phases"] <= tight.extras["n_phases"]


class TestGroundTruthConsistency:
    def test_full_detail_equals_trace(self):
        program = get_workload("177.mesa", SCALE)
        trace = collect_reference_trace(program, SCALE.trace_window)
        full = FullDetail().run(get_workload("177.mesa", SCALE))
        assert full.ipc_estimate == pytest.approx(trace.true_ipc, rel=1e-9)

    def test_trace_window_choice_does_not_change_truth(self):
        program = get_workload("177.mesa", SCALE)
        t1 = collect_reference_trace(program, 1_000)
        t2 = collect_reference_trace(
            get_workload("177.mesa", SCALE), 4_000
        )
        assert t1.true_ipc == pytest.approx(t2.true_ipc, rel=1e-9)

    def test_machine_variation_shifts_ipc(self):
        from repro import DEFAULT_MACHINE

        small = DEFAULT_MACHINE.scaled_cache(4, 64)
        program = get_workload("181.mcf", SCALE)
        base = FullDetail().run(program)
        shrunk = FullDetail(machine=small).run(get_workload("181.mcf", SCALE))
        assert shrunk.ipc_estimate <= base.ipc_estimate + 1e-9

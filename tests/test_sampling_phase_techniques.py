"""Tests for SimPoint, Online SimPoint, and PGSS-Sim."""

import pytest

from repro import Scale
from repro.errors import ConfigurationError, SamplingError
from repro.sampling import (
    OnlineSimPoint,
    OnlineSimPointConfig,
    Pgss,
    PgssConfig,
    SimPoint,
    SimPointConfig,
    collect_reference_trace,
)

from conftest import make_two_phase_program


@pytest.fixture(scope="module")
def program():
    return make_two_phase_program()


@pytest.fixture(scope="module")
def trace(program):
    return collect_reference_trace(program, window_ops=2_000)


class TestSimPointConfig:
    def test_label(self):
        assert SimPointConfig(100_000, 10).label == "10x100k"
        assert SimPointConfig(1_000_000, 5).label == "5x1M"
        assert SimPointConfig(100_000).label == "bic20x100k"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimPointConfig(0, 5)
        with pytest.raises(ConfigurationError):
            SimPointConfig(1000, 0)
        with pytest.raises(ConfigurationError):
            SimPointConfig(1000, max_k=0)


class TestSimPoint:
    def test_accuracy_with_trace(self, program, trace):
        result = SimPoint(SimPointConfig(8_000, 4)).run(program, trace=trace)
        assert result.percent_error(trace.true_ipc) < 20.0
        assert result.n_samples <= 4

    def test_detailed_cost_is_k_times_interval(self, program, trace):
        cfg = SimPointConfig(8_000, 4)
        result = SimPoint(cfg).run(program, trace=trace)
        assert result.detailed_ops == result.n_samples * cfg.interval_ops

    def test_weights_sum_to_one(self, program, trace):
        result = SimPoint(SimPointConfig(8_000, 4)).run(program, trace=trace)
        assert sum(result.extras["weights"].values()) == pytest.approx(1.0)

    def test_live_two_pass_close_to_trace_mode(self, program, trace):
        cfg = SimPointConfig(8_000, 3, seed=5)
        via_trace = SimPoint(cfg).run(program, trace=trace)
        live = SimPoint(cfg).run(program)
        # The live second pass warms functionally, so interval IPCs match
        # the trace-derived values closely (not exactly: the trace's
        # intervals were measured inside one continuous detailed run).
        assert live.ipc_estimate == pytest.approx(
            via_trace.ipc_estimate, rel=0.15
        )

    def test_too_many_clusters_rejected(self, program, trace):
        with pytest.raises(SamplingError):
            SimPoint(SimPointConfig(trace.total_ops, 5)).run(program, trace=trace)

    def test_profile_intervals_live(self, program):
        cfg = SimPointConfig(8_000, 3)
        intervals = SimPoint(cfg).profile_intervals(program)
        assert intervals.n_windows >= 10
        assert (intervals.cycles == 0).all()

    def test_bic_mode_picks_reasonable_k(self, program, trace):
        """SimPoint 3.0 BIC selection: the two-phase program needs few
        clusters, and the chosen k is reported in extras."""
        result = SimPoint(SimPointConfig(4_000, max_k=8)).run(
            program, trace=trace
        )
        assert 2 <= result.extras["n_clusters"] <= 8
        assert result.percent_error(trace.true_ipc) < 20.0
        assert result.detailed_ops == result.extras["n_clusters"] * 4_000

    def test_two_phase_program_clusters_match_phases(self, program, trace):
        """k=2 on the two-phase program: cluster weights mirror the 50/50
        phase split."""
        result = SimPoint(SimPointConfig(4_000, 2)).run(program, trace=trace)
        weights = sorted(result.extras["weights"].values())
        assert weights[0] == pytest.approx(0.5, abs=0.15)


class TestOnlineSimPoint:
    def test_label(self):
        assert OnlineSimPointConfig(8_000, 0.10).label == "8k/.10"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineSimPointConfig(0, 0.1)
        with pytest.raises(ConfigurationError):
            OnlineSimPointConfig(1000, 0.0)

    def test_finds_both_phases(self, program, trace):
        result = OnlineSimPoint(OnlineSimPointConfig(4_000, 0.10)).run(
            program, trace=trace
        )
        assert result.extras["n_phases"] >= 2
        assert result.n_samples == result.extras["n_phases"]

    def test_detailed_cost(self, program, trace):
        cfg = OnlineSimPointConfig(4_000, 0.10)
        result = OnlineSimPoint(cfg).run(program, trace=trace)
        assert result.detailed_ops == result.n_samples * cfg.interval_ops

    def test_reasonable_accuracy(self, program, trace):
        result = OnlineSimPoint(OnlineSimPointConfig(4_000, 0.10)).run(
            program, trace=trace
        )
        assert result.percent_error(trace.true_ipc) < 30.0

    def test_live_mode_runs(self, program, trace):
        result = OnlineSimPoint(OnlineSimPointConfig(8_000, 0.10)).run(program)
        assert result.ipc_estimate > 0


class TestPgssConfig:
    def test_from_scale_defaults(self):
        cfg = PgssConfig.from_scale(Scale.QUICK)
        assert cfg.bbv_period_ops == Scale.QUICK.pgss_best_period
        assert cfg.threshold_pi == 0.05
        assert cfg.detail_ops == Scale.QUICK.smarts_detail

    def test_from_scale_overrides(self):
        cfg = PgssConfig.from_scale(
            Scale.QUICK, bbv_period_ops=24_000, threshold_pi=0.25, spread_ops=1
        )
        assert cfg.bbv_period_ops == 24_000
        assert cfg.threshold_pi == 0.25
        assert cfg.spread_ops == 1

    def test_label(self):
        cfg = PgssConfig(bbv_period_ops=80_000, threshold_pi=0.05)
        assert cfg.label == "80k/.05"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PgssConfig(bbv_period_ops=3_000, threshold_pi=0.05)  # < warm+detail
        with pytest.raises(ConfigurationError):
            PgssConfig(bbv_period_ops=50_000, threshold_pi=0.0)
        with pytest.raises(ConfigurationError):
            PgssConfig(bbv_period_ops=50_000, threshold_pi=0.05, min_samples=0)
        with pytest.raises(ConfigurationError):
            PgssConfig(
                bbv_period_ops=50_000, threshold_pi=0.05, fixed_samples_per_phase=0
            )


class TestPgss:
    def _config(self, **overrides):
        overrides.setdefault("spread_ops", 8_000)
        return PgssConfig.from_scale(Scale.QUICK, bbv_period_ops=4_000, **overrides)

    def test_finds_the_two_phases(self, program, trace):
        result = Pgss(self._config()).run(program)
        assert result.extras["n_phases"] >= 2

    def test_accuracy(self, program, trace):
        result = Pgss(self._config()).run(program)
        assert result.percent_error(trace.true_ipc) < 15.0

    def test_uses_less_detail_than_program(self, program):
        result = Pgss(self._config()).run(program)
        assert 0 < result.detailed_ops < program.total_ops / 4

    def test_every_phase_gets_samples(self, program):
        result = Pgss(self._config()).run(program)
        per_phase = result.extras["samples_per_phase"]
        sampled = [p for p, n in per_phase.items() if n > 0]
        assert len(sampled) >= 2

    def test_spread_rule_limits_sampling(self, program):
        dense = Pgss(self._config(spread_ops=0)).run(program)
        sparse = Pgss(self._config(spread_ops=40_000)).run(program)
        assert sparse.n_samples < dense.n_samples

    def test_spread_rule_ablation_flag(self, program):
        on = Pgss(self._config(spread_ops=40_000, use_spread_rule=True)).run(program)
        off = Pgss(self._config(spread_ops=40_000, use_spread_rule=False)).run(program)
        assert off.n_samples >= on.n_samples

    def test_fixed_samples_per_phase(self, program):
        result = Pgss(
            self._config(fixed_samples_per_phase=2, spread_ops=0)
        ).run(program)
        per_phase = result.extras["samples_per_phase"]
        assert all(n <= 2 for n in per_phase.values())

    def test_confidence_stopping_reduces_samples(self, program):
        loose = Pgss(self._config(rel_error=0.8, min_samples=2, spread_ops=0)).run(
            program
        )
        tight = Pgss(self._config(rel_error=1e-9, spread_ops=0)).run(program)
        assert loose.n_samples < tight.n_samples

    def test_wide_bbv_variant(self, program, trace):
        result = Pgss(self._config(wide_bbv_buckets=256)).run(program)
        assert result.percent_error(trace.true_ipc) < 25.0

    def test_manhattan_metric_variant(self, program):
        cfg = self._config(metric="manhattan", threshold_pi=0.15)
        result = Pgss(cfg).run(program)
        assert result.ipc_estimate > 0

    def test_deterministic(self, program):
        r1 = Pgss(self._config()).run(program)
        r2 = Pgss(self._config()).run(program)
        assert r1.ipc_estimate == r2.ipc_estimate
        assert r1.detailed_ops == r2.detailed_ops

    def test_detailed_ops_matches_accounting(self, program):
        result = Pgss(self._config()).run(program)
        assert result.detailed_ops == result.accounting.detailed_ops

    def test_total_ops_covers_program(self, program):
        result = Pgss(self._config()).run(program)
        assert result.total_ops >= program.total_ops

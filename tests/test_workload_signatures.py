"""Per-workload qualitative-signature regressions.

Each SPEC2000 analogue was calibrated to the character the paper
attributes to it (DESIGN.md's substitution table).  These tests pin those
signatures at the QUICK scale so workload edits cannot silently break the
figures' premises.
"""

import numpy as np
import pytest

from repro import BbvTracker, Scale, get_workload
from repro.sampling import collect_reference_trace


@pytest.fixture(scope="module")
def traces():
    out = {}
    for name in (
        "164.gzip",
        "177.mesa",
        "179.art",
        "181.mcf",
        "256.bzip2",
        "300.twolf",
        "168.wupwise",
    ):
        program = get_workload(name, Scale.QUICK)
        out[name] = collect_reference_trace(program, Scale.QUICK.trace_window)
    return out


class TestIpcSignatures:
    def test_art_mcf_are_the_slowest(self, traces):
        ipcs = {n: t.true_ipc for n, t in traces.items()}
        slowest_two = sorted(ipcs, key=ipcs.get)[:3]
        assert "179.art" in slowest_two
        assert "181.mcf" in slowest_two

    def test_mesa_is_stable(self, traces):
        """177.mesa: one dominant, very stable phase — clearly lower cv
        than the strongly phased benchmarks (measured on 4-window
        aggregates so single-block noise does not dominate at QUICK
        scale)."""
        cv = lambda t: float(
            t.aggregate(4).ipcs.std() / t.aggregate(4).ipcs.mean()
        )
        assert cv(traces["177.mesa"]) < 0.35
        assert cv(traces["177.mesa"]) < 0.6 * cv(traces["256.bzip2"])

    def test_bzip2_has_large_swings(self, traces):
        t = traces["256.bzip2"].aggregate(4)
        assert float(t.ipcs.max()) > 3 * float(t.ipcs.min())

    def test_gzip_variation_averages_out(self, traces):
        """164.gzip: the Fig.-2 subject — fine-grained variation shrinks
        markedly under coarse aggregation."""
        fine = traces["164.gzip"].aggregate(4)
        coarse = traces["164.gzip"].aggregate(32)
        fine_rel = float(fine.ipcs.std() / fine.ipcs.mean())
        coarse_rel = float(coarse.ipcs.std() / coarse.ipcs.mean())
        assert coarse_rel < fine_rel * 0.7

    def test_wupwise_bimodal(self, traces):
        from repro.stats import bimodality_coefficient

        assert bimodality_coefficient(traces["168.wupwise"].ipcs) > 0.33


class TestMicroPhaseSignatures:
    @pytest.mark.parametrize("name", ["179.art", "181.mcf"])
    def test_micro_oscillation_below_period(self, name, traces):
        """art/mcf oscillate at a scale below the shortest BBV period, so
        window IPCs alternate rather than trend."""
        ipcs = traces[name].ipcs
        # Lag-1 autocorrelation of the fine IPC series is weak-to-negative
        # relative to a slowly-varying workload like mesa.
        def lag1(series):
            a = np.asarray(series, dtype=np.float64)
            a = a - a.mean()
            denom = float((a * a).sum())
            return float((a[:-1] * a[1:]).sum() / denom) if denom else 0.0

        assert lag1(ipcs) < lag1(traces["177.mesa"].ipcs)


class TestBbvSignatures:
    def test_phased_workloads_have_distinct_bbvs(self, traces):
        """gzip's behaviours produce separable BBVs; mesa's single phase
        produces near-identical ones."""
        from repro.bbv import angle_between

        def spread(trace):
            vecs = trace.aggregate(4).normalized_bbvs()
            step = max(len(vecs) // 30, 1)
            sample = vecs[::step]
            angles = [
                angle_between(sample[i], sample[j])
                for i in range(len(sample))
                for j in range(i + 1, len(sample))
            ]
            return float(np.mean(angles))

        assert spread(traces["164.gzip"]) > spread(traces["177.mesa"])

    def test_every_block_hits_some_bucket(self, traces):
        tracker = BbvTracker()
        program = get_workload("164.gzip", Scale.QUICK)
        buckets = {tracker.bucket_for(block) for block in program.blocks}
        assert len(buckets) >= 2  # the hash separates this program's blocks

"""Degenerate-input behaviour: tiny programs, empty streams, clear errors."""

import pytest

from repro import Behavior, BlockBuilder, Program, Scale, Segment
from repro.errors import SamplingError
from repro.sampling import (
    FullDetail,
    Pgss,
    PgssConfig,
    Smarts,
    SmartsConfig,
    TurboSmarts,
    TurboSmartsConfig,
)


def tiny_program(ops: int = 2_000) -> Program:
    builder = BlockBuilder(seed=11)
    block = builder.build(10, mix="int_light", dep_density=0.1)
    behavior = Behavior("only", [(block, 5)])
    return Program("tiny", [block], [behavior], [Segment("only", ops)], seed=1)


class TestTinyPrograms:
    def test_full_detail_works_on_tiny(self):
        result = FullDetail().run(tiny_program())
        assert result.ipc_estimate > 0

    def test_smarts_raises_clearly_when_no_samples_fit(self):
        cfg = SmartsConfig(period_ops=50_000, detail_ops=500, warmup_ops=500)
        with pytest.raises(SamplingError, match="shrink"):
            Smarts(cfg).run(tiny_program())

    def test_smarts_works_when_period_fits(self):
        cfg = SmartsConfig(period_ops=1_500, detail_ops=200, warmup_ops=200)
        result = Smarts(cfg).run(tiny_program(20_000))
        assert result.n_samples > 3

    def test_turbo_propagates_smarts_error(self):
        cfg = TurboSmartsConfig(
            smarts=SmartsConfig(period_ops=50_000, detail_ops=500, warmup_ops=500)
        )
        with pytest.raises(SamplingError):
            TurboSmarts(cfg).run(tiny_program())

    def test_pgss_raises_clearly_when_no_period_fits(self):
        cfg = PgssConfig(bbv_period_ops=100_000, threshold_pi=0.05)
        with pytest.raises(SamplingError, match="BBV period"):
            Pgss(cfg).run(tiny_program())

    def test_pgss_works_on_single_phase_tiny(self):
        cfg = PgssConfig(
            bbv_period_ops=2_000,
            threshold_pi=0.05,
            detail_ops=200,
            warmup_ops=200,
            spread_ops=2_000,
        )
        result = Pgss(cfg).run(tiny_program(20_000))
        assert result.extras["n_phases"] >= 1
        assert result.ipc_estimate > 0

    def test_single_block_program_has_one_phase(self):
        cfg = PgssConfig(
            bbv_period_ops=2_000,
            threshold_pi=0.05,
            detail_ops=200,
            warmup_ops=200,
            spread_ops=2_000,
        )
        result = Pgss(cfg).run(tiny_program(30_000))
        assert result.extras["n_phases"] == 1

    def test_quick_scale_workloads_survive_all_techniques(self):
        """Every canonical workload runs every technique without error at
        the QUICK scale (integration smoke over the full matrix)."""
        from repro import get_workload

        for name in ("177.mesa", "256.bzip2"):
            program = get_workload(name, Scale.QUICK)
            Smarts(SmartsConfig.from_scale(Scale.QUICK)).run(program)
            Pgss(PgssConfig.from_scale(Scale.QUICK)).run(
                get_workload(name, Scale.QUICK)
            )

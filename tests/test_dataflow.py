"""Tests for the whole-program dataflow layer (DESIGN.md §14).

Covers the module IR and incremental cache, each new rule family's
positive and negative fixtures, the acceptance case that flow-sensitive
LEA1xx catches oracle taint laundered through a helper-function return
while the syntactic LEA001-003 provably miss it, suppression-comment
edge cases, the SARIF reporter, and the zero-findings whole-tree sweep
with every family enabled.
"""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    default_project_rules,
    default_rules,
    render_sarif,
)
from repro.analysis.bus_protocol import (
    EVENT_OWNERS,
    DeadEventRule,
    ForeignEmitRule,
    UnknownSubscriptionRule,
)
from repro.analysis.cache_safety import (
    CacheDirWriteRule,
    CellParamJsonRule,
    DirectExperimentWriteRule,
)
from repro.analysis.callgraph import build_call_graph
from repro.analysis.cli import main as lint_main
from repro.analysis.core import Finding, Rule, Severity, lint_paths
from repro.analysis.dataflow import (
    AnalysisCache,
    Project,
    analyze_project,
    extract_module,
    module_name_for,
)
from repro.analysis.leakage import LEAKAGE_RULES
from repro.analysis.oracle_flow import (
    OracleIntoBudgetRule,
    OracleIntoPlanRule,
    OracleIntoThresholdRule,
)
from repro.analysis.rng_provenance import (
    GlobalRngRule,
    MeasurePathDrawRule,
    UnseededRngRule,
)

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Minimal event hierarchy for fixture trees.
EVENTS_SRC = """
    '''Fixture event hierarchy.'''

    __all__ = []


    class SessionEvent:
        pass


    class SegmentStart(SessionEvent):
        pass


    class CustomEvent(SessionEvent):
        pass
"""


def write_tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path; returns the root."""
    root = tmp_path / "tree"
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return root


def project_findings(root, rules):
    findings, _ = analyze_project([str(root)], rules)
    return findings


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestModuleIR:
    def test_module_name_anchoring(self):
        assert module_name_for("src/repro/sampling/pgss.py") == (
            "repro.sampling.pgss"
        )
        assert module_name_for("/x/repro/events.py") == "repro.events"
        assert module_name_for("a/b/loose.py") == "loose"
        assert module_name_for("src/repro/bbv/__init__.py") == "repro.bbv"

    def test_extraction_survives_syntax_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        mir = extract_module(str(path))
        assert mir.parse_error is not None
        assert mir.functions == ()

    def test_ir_is_picklable(self):
        import pickle

        mir = extract_module(str(SRC_REPRO / "sampling" / "session.py"))
        clone = pickle.loads(pickle.dumps(mir))
        assert clone == mir

    def test_function_local_imports_are_recorded(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/mod.py": """
                    def f():
                        from repro.events import CustomEvent
                        return CustomEvent
                """,
            },
        )
        mir = extract_module(str(root / "repro" / "mod.py"))
        assert ("CustomEvent", "repro.events.CustomEvent") in mir.imports


class TestCallGraph:
    def test_cross_module_resolution_and_reachability(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/a.py": """
                    from repro.b import helper

                    def entry():
                        return helper(1)
                """,
                "repro/b.py": """
                    def helper(x):
                        return leaf(x)

                    def leaf(x):
                        return x

                    def unrelated():
                        return 0
                """,
            },
        )
        mirs = [
            extract_module(str(root / "repro" / name))
            for name in ("a.py", "b.py")
        ]
        project = Project(mirs)
        graph = build_call_graph(project)
        assert "repro.b.helper" in graph.callees("repro.a.entry")
        reachable = graph.reachable(["repro.a.entry"])
        assert "repro.b.leaf" in reachable
        assert "repro.b.unrelated" not in reachable

    def test_self_method_resolution(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/c.py": """
                    class Widget:
                        def outer(self):
                            return self.inner()

                        def inner(self):
                            return 1
                """,
            },
        )
        project = Project([extract_module(str(root / "repro" / "c.py"))])
        graph = build_call_graph(project)
        assert "repro.c.Widget.inner" in graph.callees("repro.c.Widget.outer")


class TestOracleFlow:
    def test_lea101_catches_laundered_taint_syntactic_rules_miss(
        self, tmp_path
    ):
        """The acceptance case: oracle taint through a helper return.

        The helper lives outside the online subpackages, so LEA002 does
        not fire on its ``.true_ipc`` read; the online module never
        spells an oracle name, so LEA001-003 have nothing to match — yet
        the value steers ``ModeSegment`` construction.
        """
        root = write_tree(
            tmp_path,
            {
                "repro/stats/helpers.py": """
                    '''Fixture helper (offline package).'''

                    __all__ = []


                    def baseline_ipc(trace):
                        return trace.true_ipc
                """,
                "repro/sampling/plan.py": """
                    '''Fixture online plan module.'''

                    __all__ = []

                    from repro.stats.helpers import baseline_ipc


                    def build(trace, mode):
                        ipc = baseline_ipc(trace)
                        ops = int(ipc * 1000)
                        return ModeSegment(mode, ops)
                """,
            },
        )
        # Syntactic leakage rules: provably silent on both modules.
        syntactic = lint_paths([str(root)], [cls() for cls in LEAKAGE_RULES])
        assert syntactic == []
        # Flow-sensitive rule: catches the laundered flow.
        findings = project_findings(root, [OracleIntoPlanRule()])
        assert rule_ids(findings) == ["LEA101"]
        assert "plan.py" in findings[0].path

    def test_lea101_taint_through_tuple_unpacking(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/sampling/tup.py": """
                    def build(trace, mode):
                        ipc, label = trace.true_ipc, "x"
                        return ModeSegment(mode, int(ipc))
                """,
            },
        )
        findings = project_findings(root, [OracleIntoPlanRule()])
        assert rule_ids(findings) == ["LEA101"]

    def test_lea101_negative_plain_config_flow(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/sampling/ok.py": """
                    def build(config, mode):
                        ops = int(config.detail_ops)
                        return ModeSegment(mode, ops)
                """,
            },
        )
        assert project_findings(root, [OracleIntoPlanRule()]) == []

    def test_lea102_budget_sink(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/sampling/budget.py": """
                    def fit(ctx, name):
                        target = ctx.true_ipc(name) / 100.0
                        return SampleBudget(1000, 3000, target, 0.997)
                """,
            },
        )
        findings = project_findings(root, [OracleIntoBudgetRule()])
        assert rule_ids(findings) == ["LEA102"]

    def test_lea103_threshold_sink_and_negative(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/phase/fit.py": """
                    def tuned(trace):
                        return OnlinePhaseClassifier(trace.true_ipc * 0.01)

                    def honest(threshold):
                        return OnlinePhaseClassifier(threshold)
                """,
            },
        )
        findings = project_findings(root, [OracleIntoThresholdRule()])
        assert rule_ids(findings) == ["LEA103"]
        assert len(findings) == 1


class TestRngProvenance:
    def test_det101_unseeded_and_unprovable(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/sim/noise.py": """
                    import os
                    import random


                    def bad_entropy():
                        return random.Random()


                    def bad_provenance():
                        return random.Random(os.getpid())
                """,
            },
        )
        findings = project_findings(root, [UnseededRngRule()])
        assert len(findings) == 2
        assert rule_ids(findings) == ["DET101"]

    def test_det101_negative_seed_through_helper(self, tmp_path):
        """Interprocedural: a seed-deriving helper is accepted."""
        root = write_tree(
            tmp_path,
            {
                "repro/sim/seeded.py": """
                    import random


                    def derive(seed, k):
                        mixed = (seed * 31 + 7) & 0xFFFF
                        return mixed


                    def make(cell_seed):
                        return random.Random(derive(cell_seed, 0))


                    def direct(config):
                        return random.Random(config.seed ^ 0x5EED)
                """,
            },
        )
        assert project_findings(root, [UnseededRngRule()]) == []

    def test_det102_module_global_rng(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/sim/shared.py": """
                    import random

                    _RNG = random.Random(7)
                """,
            },
        )
        findings = project_findings(root, [GlobalRngRule()])
        assert rule_ids(findings) == ["DET102"]

    def test_det103_measure_path_draw(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/cpu/jitterfx.py": """
                    import random

                    _RNG = random.Random(3)


                    def jitter(x):
                        return x + _RNG.random()


                    def clean(rng):
                        return rng.random()
                """,
            },
        )
        findings = project_findings(root, [MeasurePathDrawRule()])
        assert rule_ids(findings) == ["DET103"]
        assert len(findings) == 1
        # Same global + draw outside the measured packages: no DET103.
        root2 = write_tree(
            tmp_path / "other",
            {
                "repro/stats/shared2.py": """
                    import random

                    _RNG = random.Random(3)


                    def jitter(x):
                        return x + _RNG.random()
                """,
            },
        )
        assert project_findings(root2, [MeasurePathDrawRule()]) == []


class TestBusProtocol:
    def test_evt101_dead_event_and_ancestor_coverage(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/events.py": EVENTS_SRC,
                "repro/sampling/chatty.py": """
                    from repro.events import CustomEvent


                    def go(bus):
                        bus.emit(CustomEvent())
                """,
            },
        )
        findings = project_findings(root, [DeadEventRule()])
        assert rule_ids(findings) == ["EVT101"]
        # A subscription to the ancestor type covers the emit.
        root2 = write_tree(
            tmp_path / "covered",
            {
                "repro/events.py": EVENTS_SRC,
                "repro/sampling/chatty.py": """
                    from repro.events import CustomEvent


                    def go(bus):
                        bus.emit(CustomEvent())
                """,
                "repro/cli2.py": """
                    from repro.events import SessionEvent


                    def wire(bus):
                        bus.subscribe(SessionEvent, print)
                """,
            },
        )
        assert project_findings(root2, [DeadEventRule()]) == []

    def test_evt102_unknown_subscription(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/events.py": EVENTS_SRC,
                "repro/wiring.py": """
                    class NotAnEvent:
                        pass


                    def wire(bus):
                        bus.subscribe(NotAnEvent, print)
                """,
            },
        )
        findings = project_findings(root, [UnknownSubscriptionRule()])
        assert rule_ids(findings) == ["EVT102"]

    def test_evt102_callback_arity(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/events.py": EVENTS_SRC,
                "repro/wiring2.py": """
                    from repro.events import CustomEvent


                    def chunky(event, extra):
                        return (event, extra)


                    def wire(bus):
                        bus.subscribe(CustomEvent, chunky)
                """,
            },
        )
        findings = project_findings(root, [UnknownSubscriptionRule()])
        assert rule_ids(findings) == ["EVT102"]
        assert "argument" in findings[0].message

    def test_evt103_foreign_emit(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/events.py": EVENTS_SRC,
                "repro/experiments/forger.py": """
                    from repro.events import SegmentStart


                    def fake(bus):
                        bus.emit(SegmentStart())
                """,
            },
        )
        findings = project_findings(root, [ForeignEmitRule()])
        assert rule_ids(findings) == ["EVT103"]

    def test_event_owners_table_matches_real_hierarchy(self):
        tree = ast.parse((SRC_REPRO / "events.py").read_text())
        classes = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        events = {
            name
            for name in classes
            if name not in ("SessionEvent", "EventBus")
        }
        assert set(EVENT_OWNERS) == events

    def test_real_emit_sites_respect_ownership(self):
        findings, _ = analyze_project(
            [str(SRC_REPRO)], [ForeignEmitRule(), DeadEventRule()]
        )
        assert findings == []


class TestCacheSafety:
    def test_cch101_tainted_cache_path_write(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/tools/dumper.py": """
                    import json


                    def side_write(cache, payload):
                        path = cache.directory / "extra.json"
                        with open(path, "w") as fh:
                            json.dump(payload, fh)
                """,
            },
        )
        findings = project_findings(root, [CacheDirWriteRule()])
        assert rule_ids(findings) == ["CCH101"]

    def test_cch101_negative_unrelated_path(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/tools/report.py": """
                    import json


                    def report(output, payload):
                        with open(output, "w") as fh:
                            json.dump(payload, fh)
                """,
            },
        )
        assert project_findings(root, [CacheDirWriteRule()]) == []

    def test_cch102_direct_write_in_experiment_module(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/experiments/fig99.py": """
                    import json


                    def run(ctx):
                        with open("results.json", "w") as fh:
                            json.dump({}, fh)
                """,
            },
        )
        findings = project_findings(root, [DirectExperimentWriteRule()])
        assert rule_ids(findings) == ["CCH102"]
        # The cache implementation itself is exempt.
        root2 = write_tree(
            tmp_path / "exempt",
            {
                "repro/experiments/cache.py": """
                    import json


                    def publish(path, payload):
                        with open(path, "w") as fh:
                            json.dump(payload, fh)
                """,
            },
        )
        assert project_findings(root2, [DirectExperimentWriteRule()]) == []

    def test_cch103_non_jsonable_cell_params(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/experiments/fig98.py": """
                    def helper(ctx):
                        return 1


                    def cells(ctx):
                        return [
                            ExperimentCell.make("f", "b", fn=lambda x: x),
                            ExperimentCell.make("f", "b", tags={1, 2}),
                            ExperimentCell.make("f", "b", technique=helper),
                            ExperimentCell.make("f", "b", n=5, name="ok"),
                        ]
                """,
            },
        )
        findings = project_findings(root, [CellParamJsonRule()])
        assert rule_ids(findings) == ["CCH103"]
        assert len(findings) == 3


class TestIncrementalCache:
    FILES = {
        "repro/pkg/base.py": """
            def shared(x):
                return x
        """,
        "repro/pkg/uses_base.py": """
            from repro.pkg.base import shared


            def caller():
                return shared(1)
        """,
        "repro/pkg/leaf_a.py": """
            def a():
                return 1
        """,
        "repro/pkg/leaf_b.py": """
            def b():
                return 2
        """,
    }

    def _run(self, root, cache_path):
        cache = AnalysisCache(cache_path)
        return analyze_project(
            [str(root)],
            default_project_rules(),
            ast_rules=default_rules(),
            cache=cache,
        )

    def test_warm_rerun_reuses_everything(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        cache_path = tmp_path / "lint.cache"
        _, cold = self._run(root, cache_path)
        assert cold.modules_extracted == cold.modules_total == 4
        findings, warm = self._run(root, cache_path)
        assert warm.modules_extracted == 0
        assert warm.modules_analyzed == 0
        assert warm.findings_cached == 4

    def test_dirty_file_invalidates_only_its_dependents(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        cache_path = tmp_path / "lint.cache"
        self._run(root, cache_path)
        target = root / "repro" / "pkg" / "base.py"
        target.write_text(target.read_text() + "\n# touched\n")
        _, stats = self._run(root, cache_path)
        assert stats.modules_extracted == 1
        # base.py itself + uses_base.py (closure contains base); the
        # two leaves come straight from the findings cache.
        assert stats.modules_analyzed == 2
        assert stats.findings_cached == 2

    def test_corrupt_cache_degrades_to_full_run(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        cache_path = tmp_path / "lint.cache"
        self._run(root, cache_path)
        cache_path.write_bytes(b"not a pickle")
        _, stats = self._run(root, cache_path)
        assert stats.modules_extracted == 4

    def test_parallel_extraction_matches_serial(self, tmp_path):
        root = write_tree(tmp_path, self.FILES)
        serial, _ = analyze_project(
            [str(root)], default_project_rules(), ast_rules=default_rules()
        )
        parallel, stats = analyze_project(
            [str(root)],
            default_project_rules(),
            ast_rules=default_rules(),
            jobs=2,
        )
        assert serial == parallel
        assert stats.jobs == 2


class TestSuppressionEdgeCases:
    class FlagEveryDef(Rule):
        """Test-only rule flagging every function definition."""

        rule_id = "TST001"
        severity = Severity.ERROR
        summary = "flags defs, for suppression tests"

        def check(self, ctx):
            import ast as _ast

            for node in _ast.walk(ctx.tree):
                if isinstance(node, _ast.FunctionDef):
                    yield self.finding(ctx, node, "def found")

    def _lint(self, tmp_path, source, rules):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(source))
        return lint_paths([str(path)], rules)

    def test_suppression_on_decorated_def_line(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import functools


            @functools.lru_cache(maxsize=None)
            def cached():  # simlint: disable=TST001
                return 1


            @functools.lru_cache(maxsize=None)
            def flagged():
                return 2
            """,
            [self.FlagEveryDef()],
        )
        assert len(findings) == 1
        assert findings[0].line > 0

    def test_decorator_line_comment_does_not_suppress(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import functools


            @functools.lru_cache(maxsize=None)  # simlint: disable=TST001
            def on_decorator():
                return 1
            """,
            [self.FlagEveryDef()],
        )
        # The finding anchors on the ``def`` line, not the decorator.
        assert len(findings) == 1

    def test_multiline_expression_comment_on_last_line(self, tmp_path):
        from repro.analysis.determinism import WallClockRule

        findings = self._lint(
            tmp_path,
            """
            import time

            t0 = time.time(
            )  # simlint: disable=DET004
            t1 = time.time()
            """,
            [WallClockRule()],
        )
        assert len(findings) == 1
        assert findings[0].line == 6

    def test_file_level_disable(self, tmp_path):
        from repro.analysis.determinism import WallClockRule

        findings = self._lint(
            tmp_path,
            """
            # simlint: disable-file=DET004
            import time

            t0 = time.time()
            t1 = time.time()
            """,
            [WallClockRule()],
        )
        assert findings == []

    def test_file_level_disable_is_rule_scoped(self, tmp_path):
        from repro.analysis.determinism import (
            HostTimingRule,
            WallClockRule,
        )

        findings = self._lint(
            tmp_path,
            """
            # simlint: disable-file=DET004
            import time

            t0 = time.time()
            t1 = time.perf_counter()
            """,
            [WallClockRule(), HostTimingRule()],
        )
        assert rule_ids(findings) == ["DET005"]

    def test_project_rule_findings_respect_suppressions(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/sim/hushed.py": """
                    import random


                    def noisy():
                        return random.Random()  # simlint: disable=DET101
                """,
            },
        )
        assert project_findings(root, [UnseededRngRule()]) == []


class TestSarifReporter:
    def _findings(self):
        return [
            Finding(
                path="src/repro/x.py",
                line=3,
                col=5,
                rule_id="DET101",
                severity=Severity.ERROR,
                message="unseeded",
                end_line=4,
            ),
            Finding(
                path="src/repro/a.py",
                line=1,
                col=1,
                rule_id="LEA101",
                severity=Severity.WARNING,
                message="tainted",
            ),
        ]

    def test_sarif_shape(self):
        document = json.loads(
            render_sarif(self._findings(), default_project_rules())
        )
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "pgss-lint"
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"DET101", "LEA101", "EVT101", "CCH101"} <= rules
        results = run["results"]
        # Sorted by (path, line, col, rule).
        assert [r["ruleId"] for r in results] == ["LEA101", "DET101"]
        assert results[1]["level"] == "error"
        region = results[1]["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 5, "endLine": 4}
        for result in results:
            assert run["tool"]["driver"]["rules"][result["ruleIndex"]][
                "id"
            ] == result["ruleId"]

    def test_sarif_deterministic(self):
        found = self._findings()
        assert render_sarif(found, default_project_rules()) == render_sarif(
            list(reversed(found)), default_project_rules()
        )


class TestCliIntegration:
    def test_explain_known_rule(self, capsys):
        assert lint_main(["--explain", "LEA101"]) == 0
        out = capsys.readouterr().out
        assert "LEA101" in out
        assert "helper" in out

    def test_explain_unknown_rule(self, capsys):
        assert lint_main(["--explain", "NOPE999"]) == 2

    def test_list_rules_includes_project_families(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("LEA101", "DET101", "EVT101", "CCH101", "DET001"):
            assert rule_id in out

    def test_sarif_output_round_trips(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("import time\nt0 = time.time()\n")
        assert lint_main([str(path), "--format", "sarif"]) == 2
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"]

    def test_json_includes_analysis_stats(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text('"""Doc."""\n\n__all__ = []\n')
        assert lint_main([str(path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["analysis"]["modules_total"] == 1

    def test_no_project_flag(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text('"""Doc."""\n\n__all__ = []\n')
        assert lint_main(
            [str(path), "--format", "json", "--no-project"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert "analysis" not in document

    def test_cache_flag_incremental(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text('"""Doc."""\n\n__all__ = []\n')
        cache = tmp_path / "lint.cache"
        assert lint_main(
            [str(path), "--cache", str(cache), "--format", "json"]
        ) == 0
        capsys.readouterr()
        assert cache.exists()
        assert lint_main(
            [str(path), "--cache", str(cache), "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["analysis"]["modules_extracted"] == 0
        assert document["analysis"]["findings_cached"] == 1


class TestRealTreeSweep:
    def test_whole_tree_zero_findings_all_families(self):
        """The acceptance gate: src/repro is clean under every family."""
        findings, stats = analyze_project(
            [str(SRC_REPRO)],
            default_project_rules(),
            ast_rules=default_rules(),
        )
        assert findings == [], [str(f) for f in findings]
        assert stats.modules_total > 40

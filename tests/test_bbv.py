"""Tests for BBV tracking: the hash, register file, and vector math."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BbvTracker, ReducedBbvHash, WideBbvHash
from repro.bbv.vector import (
    angle_between,
    cosine_similarity,
    l2_norm,
    l2_normalize,
    manhattan_distance,
)
from repro.errors import ConfigurationError
from repro.isa import Instruction, Op
from repro.program.block import BasicBlock
from repro.program.stream import BlockRun


def make_block(bid: int, address: int, n_ops: int = 8) -> BasicBlock:
    insts = [Instruction(Op.IALU, dst=1, src1=0) for _ in range(n_ops - 1)]
    insts.append(Instruction(Op.BRANCH, src1=1))
    return BasicBlock(bid, address, insts)


class TestReducedHash:
    def test_five_bits_default(self):
        h = ReducedBbvHash()
        assert len(h.bit_positions) == 5
        assert h.n_buckets == 32

    def test_deterministic_for_seed(self):
        assert (
            ReducedBbvHash(seed=1).bit_positions
            == ReducedBbvHash(seed=1).bit_positions
        )

    def test_different_seeds_pick_different_bits(self):
        picks = {tuple(ReducedBbvHash(seed=s).bit_positions) for s in range(10)}
        assert len(picks) > 1

    def test_output_range(self):
        h = ReducedBbvHash(seed=3)
        for addr in range(0, 1 << 16, 97):
            assert 0 <= h(addr) < 32

    def test_bits_extracted_correctly(self):
        h = ReducedBbvHash(seed=0)
        addr = 0
        for shift, pos in enumerate(h.bit_positions):
            addr |= 1 << pos
        assert h(addr) == 31  # all selected bits set
        assert h(0) == 0

    def test_rejects_too_many_bits(self):
        with pytest.raises(ConfigurationError):
            ReducedBbvHash(n_bits=10, lo=2, hi=8)


class TestWideHash:
    def test_range(self):
        h = WideBbvHash(n_buckets=1024)
        for addr in range(0, 1 << 16, 61):
            assert 0 <= h(addr) < 1024

    def test_spreads_addresses(self):
        h = WideBbvHash(n_buckets=256)
        buckets = {h(0x1000 + i * 4) for i in range(512)}
        assert len(buckets) > 100

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            WideBbvHash(n_buckets=1)


class TestTracker:
    def test_taken_branch_credits_bucket(self):
        tracker = BbvTracker()
        block = make_block(0, 0x1000, n_ops=8)
        tracker.record(block, taken=True)
        vec = tracker.take_vector(normalize=False)
        assert vec.sum() == 8
        assert vec[tracker.bucket_for(block)] == 8

    def test_untaken_run_credited_to_next_taken(self):
        """Fig. 4 semantics: ops since the last taken branch accumulate
        and land in the bucket of the branch that ends the run."""
        tracker = BbvTracker()
        a = make_block(0, 0x1000, n_ops=8)
        b = make_block(1, 0x4000, n_ops=6)
        tracker.record(a, taken=False)
        tracker.record(b, taken=True)
        vec = tracker.take_vector(normalize=False)
        assert vec[tracker.bucket_for(b)] == 14
        assert vec.sum() == 14

    def test_trailing_untaken_run_not_counted_in_vector(self):
        tracker = BbvTracker()
        a = make_block(0, 0x1000, n_ops=8)
        tracker.record(a, taken=False)
        assert tracker.take_vector(normalize=False).sum() == 0

    def test_take_vector_resets(self):
        tracker = BbvTracker()
        block = make_block(0, 0x1000)
        tracker.record(block, taken=True)
        tracker.take_vector()
        assert tracker.peek_vector().sum() == 0

    def test_take_vector_normalized(self):
        tracker = BbvTracker()
        tracker.record(make_block(0, 0x1000), taken=True)
        tracker.record(make_block(1, 0x8000), taken=True)
        vec = tracker.take_vector(normalize=True)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_total_ops_counts_everything(self):
        tracker = BbvTracker()
        tracker.record(make_block(0, 0x1000, 8), taken=True)
        tracker.record(make_block(1, 0x2000, 6), taken=False)
        assert tracker.total_ops == 14

    def test_bucket_cache_consistent(self):
        tracker = BbvTracker()
        block = make_block(0, 0x1234)
        assert tracker.bucket_for(block) == tracker.hash_fn(block.branch_address)
        assert tracker.bucket_for(block) == tracker.bucket_for(block)

    def test_snapshot_restore(self):
        tracker = BbvTracker()
        tracker.record(make_block(0, 0x1000), taken=True)
        tracker.record(make_block(1, 0x2000), taken=False)
        snap = tracker.snapshot()
        tracker.record(make_block(2, 0x3000), taken=True)
        tracker.restore(snap)
        vec = tracker.take_vector(normalize=False)
        assert vec.sum() == 8  # only the first taken block

    def test_reset(self):
        tracker = BbvTracker()
        tracker.record(make_block(0, 0x1000), taken=True)
        tracker.reset()
        assert tracker.total_ops == 0
        assert tracker.peek_vector().sum() == 0

    def test_wide_tracker(self):
        tracker = BbvTracker(WideBbvHash(128))
        assert tracker.n_buckets == 128
        tracker.record(make_block(0, 0x1000), taken=True)
        assert tracker.take_vector(normalize=False).sum() == 8

    def test_matches_naive_reference_model(self):
        """Oracle test: the tracker's register file equals a naive
        re-implementation of the Fig. 4 semantics over a random event
        sequence."""
        import random

        rng = random.Random(99)
        blocks = [make_block(i, 0x1000 + i * 0x940, n_ops=4 + i) for i in range(6)]
        tracker = BbvTracker()
        reference = [0.0] * 32
        run_ops = 0
        for _ in range(500):
            block = rng.choice(blocks)
            taken = rng.random() < 0.8
            tracker.record(block, taken)
            if taken:
                reference[tracker.hash_fn(block.branch_address)] += (
                    run_ops + block.n_ops
                )
                run_ops = 0
            else:
                run_ops += block.n_ops
        assert tracker.peek_vector().tolist() == reference


def _runs_to_events(runs):
    return [(run.block, taken) for run in runs for _, taken, _ in run.events()]


def _random_runs(rng, blocks, n_runs):
    """Generate a mixed batch of loop-style and random-branch runs."""
    runs = []
    ks = {}
    for _ in range(n_runs):
        block = rng.choice(blocks)
        n = rng.randint(1, 9)
        k = ks.get(block.bid, 0)
        ks[block.bid] = k + n
        if rng.random() < 0.5:
            runs.append(BlockRun(block, n, k, rng.random() < 0.7, None))
        else:
            takens = tuple(rng.random() < 0.6 for _ in range(n))
            runs.append(BlockRun(block, n, k, False, takens))
    return runs


class TestRecordBatch:
    def test_matches_scalar_record(self):
        """Oracle: record_batch equals per-event record, bit for bit."""
        import random

        rng = random.Random(4242)
        blocks = [make_block(i, 0x1000 + i * 0x1234, n_ops=3 + i) for i in range(7)]
        for trial in range(20):
            runs = _random_runs(rng, blocks, rng.randint(1, 12))
            scalar, batched = BbvTracker(), BbvTracker()
            for block, taken in _runs_to_events(runs):
                scalar.record(block, taken)
            batched.record_batch(runs)
            assert scalar.peek_vector().tolist() == batched.peek_vector().tolist()
            assert scalar.total_ops == batched.total_ops
            assert scalar._run_ops == batched._run_ops

    def test_run_counter_carries_across_batches(self):
        """The ops-since-last-taken counter survives batch boundaries."""
        import random

        rng = random.Random(99)
        blocks = [make_block(i, 0x2000 + i * 0x890, n_ops=5) for i in range(4)]
        scalar, batched = BbvTracker(), BbvTracker()
        for _ in range(6):
            runs = _random_runs(rng, blocks, 4)
            for block, taken in _runs_to_events(runs):
                scalar.record(block, taken)
            batched.record_batch(runs)
        assert scalar.peek_vector().tolist() == batched.peek_vector().tolist()
        assert scalar._run_ops == batched._run_ops

    def test_empty_batch_is_noop(self):
        tracker = BbvTracker()
        tracker.record_batch([])
        assert tracker.total_ops == 0
        assert tracker.peek_vector().sum() == 0

    def test_all_untaken_batch_accumulates_run_ops(self):
        tracker = BbvTracker()
        block = make_block(0, 0x1000, n_ops=8)
        takens = (False, False, False)
        tracker.record_batch([BlockRun(block, 3, 0, False, takens)])
        assert tracker.total_ops == 24
        assert tracker.peek_vector().sum() == 0
        assert tracker._run_ops == 24

    def test_interleaves_with_scalar_record(self):
        """Mixing the two entry points keeps one consistent state."""
        a = make_block(0, 0x1000, n_ops=8)
        b = make_block(1, 0x4000, n_ops=6)
        tracker = BbvTracker()
        tracker.record(a, taken=False)
        tracker.record_batch([BlockRun(b, 1, 0, False, (True,))])
        vec = tracker.take_vector(normalize=False)
        assert vec[tracker.bucket_for(b)] == 14
        assert vec.sum() == 14

    def test_works_with_wide_hash(self):
        tracker = BbvTracker(WideBbvHash(128))
        block = make_block(0, 0x1000, n_ops=8)
        tracker.record_batch([BlockRun(block, 4, 0, True, None)])
        vec = tracker.take_vector(normalize=False)
        assert vec[tracker.bucket_for(block)] == 24  # 3 taken iterations
        assert tracker.total_ops == 32


class TestBatchHashes:
    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_reduced_batch_matches_scalar(self, addresses):
        h = ReducedBbvHash(seed=7)
        assert h.batch(np.array(addresses)).tolist() == [h(a) for a in addresses]

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_wide_batch_matches_scalar(self, addresses):
        h = WideBbvHash(n_buckets=1024)
        assert h.batch(np.array(addresses)).tolist() == [h(a) for a in addresses]


class TestVectorMath:
    def test_l2_norm(self):
        assert l2_norm([3.0, 4.0]) == pytest.approx(5.0)
        assert l2_norm([0.0, 0.0]) == 0.0

    def test_normalize_unit_norm(self):
        vec = l2_normalize([3.0, 4.0])
        assert np.linalg.norm(vec) == pytest.approx(1.0)
        assert vec[0] == pytest.approx(0.6)

    def test_normalize_zero_vector(self):
        assert (l2_normalize([0.0, 0.0]) == 0).all()

    def test_angle_identical_is_zero(self):
        assert angle_between([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0, abs=1e-9)

    def test_angle_orthogonal_is_pi_over_two(self):
        assert angle_between([1, 0], [0, 1]) == pytest.approx(math.pi / 2)

    def test_angle_zero_vs_nonzero(self):
        assert angle_between([0, 0], [1, 0]) == pytest.approx(math.pi / 2)
        assert angle_between([0, 0], [0, 0]) == 0.0

    def test_cosine_similarity(self):
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_manhattan(self):
        assert manhattan_distance([1, 2], [3, 0]) == pytest.approx(4.0)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=32),
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_angle_bounds_for_nonnegative_vectors(self, a, b):
        n = min(len(a), len(b))
        angle = angle_between(a[:n], b[:n])
        assert -1e-9 <= angle <= math.pi / 2 + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_angle_scale_invariant(self, a):
        scaled = [x * 7.5 for x in a]
        assert angle_between(a, scaled) == pytest.approx(0.0, abs=1e-6)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=4, max_size=16),
        st.lists(st.floats(min_value=0, max_value=100), min_size=4, max_size=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_angle_symmetric(self, a, b):
        n = min(len(a), len(b))
        assert angle_between(a[:n], b[:n]) == pytest.approx(
            angle_between(b[:n], a[:n]), abs=1e-9
        )

    def test_cosine_clipping_against_rounding(self):
        # Nearly identical unit vectors can yield dot products just above
        # one; acos must not blow up.
        v = l2_normalize(np.ones(32))
        assert angle_between(v, v) == pytest.approx(0.0, abs=1e-9)

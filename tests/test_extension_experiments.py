"""Tests for the extension experiments: tradeoff and stratification gain."""

import pytest

from repro.config import Scale
from repro.experiments import ExperimentContext
from repro.experiments import stratification_gain, tradeoff


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    return ExperimentContext(
        Scale.QUICK,
        cache_dir=tmp_path_factory.mktemp("extcache"),
        benchmarks=["164.gzip", "181.mcf"],
    )


class TestStratificationGain:
    def test_structure(self, ctx):
        result = stratification_gain.run(ctx)
        assert set(result["benchmarks"]) == set(ctx.benchmarks)
        for stats in result["benchmarks"].values():
            assert stats["unstratified_samples"] > 0
            assert stats["truth_samples"] > 0
            assert stats["detected_samples"] > 0

    def test_stratification_never_hurts_much(self, ctx):
        result = stratification_gain.run(ctx)
        for name, stats in result["benchmarks"].items():
            assert stats["truth_gain"] >= 0.9, name
            assert stats["detected_gain"] >= 0.9, name

    def test_format(self, ctx):
        text = stratification_gain.format_result(stratification_gain.run(ctx))
        assert "gain" in text
        assert "164.gzip" in text


class TestTradeoff:
    def test_curves_structure(self, ctx):
        result = tradeoff.run(ctx)
        assert len(result["smarts"]) == len(tradeoff.SMARTS_PERIOD_FACTORS)
        assert len(result["smarts_cold"]) == len(tradeoff.SMARTS_PERIOD_FACTORS)
        assert len(result["pgss"]) == len(tradeoff.PGSS_SPREAD_FACTORS)

    def test_smarts_detail_falls_with_period(self, ctx):
        result = tradeoff.run(ctx)
        details = [p["mean_detailed_ops"] for p in result["smarts"]]
        assert details == sorted(details, reverse=True)

    def test_cold_sampling_worse(self, ctx):
        result = tradeoff.run(ctx)
        # At the dense periods — where sampling noise is small enough for
        # the bias to dominate — cold fast-forward is clearly worse.  At
        # the sparse end of the QUICK scale a dozen samples of noise can
        # swamp the bias, so only the densest point is asserted.
        warm = result["smarts"][0]
        cold = result["smarts_cold"][0]
        assert cold["a_mean_error"] > warm["a_mean_error"]

    def test_format(self, ctx):
        text = tradeoff.format_result(tradeoff.run(ctx))
        assert "SMARTS (cold FF)" in text
        assert "PGSS" in text

"""Tests for the random program synthesiser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Mode, SimulationEngine
from repro.errors import ConfigurationError
from repro.program import ProgramStream, SynthesisSpec, synthesize_program


class TestSpec:
    def test_defaults_valid(self):
        SynthesisSpec()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SynthesisSpec(total_ops=0)
        with pytest.raises(ConfigurationError):
            SynthesisSpec(n_behaviors=0)
        with pytest.raises(ConfigurationError):
            SynthesisSpec(min_segment_ops=10, max_segment_ops=5)
        with pytest.raises(ConfigurationError):
            SynthesisSpec(blocks_per_behavior=0)


class TestSynthesize:
    def test_deterministic(self):
        p1 = synthesize_program(42)
        p2 = synthesize_program(42)
        assert [b.address for b in p1.blocks] == [b.address for b in p2.blocks]
        assert [(s.behavior, s.ops) for s in p1.script] == [
            (s.behavior, s.ops) for s in p2.script
        ]

    def test_seeds_differ(self):
        p1 = synthesize_program(1)
        p2 = synthesize_program(2)
        assert [b.ops for b in p1.blocks] != [b.ops for b in p2.blocks]

    def test_respects_spec_shape(self):
        spec = SynthesisSpec(
            total_ops=50_000, n_behaviors=4, blocks_per_behavior=3
        )
        program = synthesize_program(7, spec)
        assert len(program.behaviors) == 4
        assert program.n_blocks == 12
        assert program.total_ops >= 50_000

    def test_custom_name(self):
        assert synthesize_program(3, name="myprog").name == "myprog"
        assert synthesize_program(3).name == "synth.3"

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_any_seed_yields_valid_program(self, seed):
        spec = SynthesisSpec(total_ops=20_000)
        program = synthesize_program(seed, spec)
        stream = ProgramStream(program)
        total = sum(e.block.n_ops for e in stream)
        assert total >= 20_000

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_any_seed_simulates(self, seed):
        spec = SynthesisSpec(total_ops=15_000)
        program = synthesize_program(seed, spec)
        result = SimulationEngine(program).run_to_end(Mode.DETAIL)
        assert 0 < result.ipc <= 4.0

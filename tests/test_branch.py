"""Tests for the branch predictors."""

import random

import pytest

from repro.branch import BimodalPredictor, GsharePredictor
from repro.errors import ConfigurationError, SnapshotError


@pytest.fixture(params=[BimodalPredictor, GsharePredictor])
def predictor(request):
    return request.param(table_bits=10)


class TestCommonBehaviour:
    def test_learns_always_taken(self, predictor):
        for _ in range(4):
            predictor.predict_update(0x1000, True)
        assert predictor.predict_update(0x1000, True) is True

    def test_learns_always_not_taken(self, predictor):
        for _ in range(4):
            predictor.predict_update(0x1000, False)
        assert predictor.predict_update(0x1000, False) is True

    def test_loop_branch_mispredicts_once_per_exit(self, predictor):
        """A (T^n N)* loop pattern costs ~one mispredict per iteration set."""
        predictor_misses = 0
        for _ in range(20):          # 20 loop visits
            for _ in range(9):       # 9 taken back-edges
                if not predictor.predict_update(0x2000, True):
                    predictor_misses += 1
            if not predictor.predict_update(0x2000, False):
                predictor_misses += 1
        # Far better than random (100), near one miss per exit for bimodal.
        assert predictor_misses <= 45

    def test_random_branches_mispredict_often(self, predictor):
        rng = random.Random(7)
        misses = 0
        n = 2000
        for _ in range(n):
            if not predictor.predict_update(0x3000, rng.random() < 0.5):
                misses += 1
        assert misses / n > 0.3

    def test_stats_accounting(self, predictor):
        for i in range(10):
            predictor.predict_update(0x100 + i * 4, True)
        assert predictor.stats.predictions == 10
        assert 0.0 <= predictor.stats.accuracy <= 1.0

    def test_stats_reset(self, predictor):
        predictor.predict_update(0x100, True)
        predictor.stats.reset()
        assert predictor.stats.predictions == 0
        assert predictor.stats.accuracy == 1.0

    def test_snapshot_restore_equivalence(self, predictor):
        rng = random.Random(3)
        history = [(rng.randrange(1 << 14) * 4, rng.random() < 0.7) for _ in range(500)]
        for addr, taken in history[:250]:
            predictor.predict_update(addr, taken)
        snap = predictor.snapshot()
        first = [predictor.predict_update(a, t) for a, t in history[250:]]
        predictor.restore(snap)
        second = [predictor.predict_update(a, t) for a, t in history[250:]]
        assert first == second

    def test_rejects_bad_table_bits(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(table_bits=0)
        with pytest.raises(ConfigurationError):
            GsharePredictor(table_bits=30)


class TestBimodalSpecific:
    def test_aliasing_between_distant_addresses(self):
        """Addresses that collide modulo the table share a counter."""
        p = BimodalPredictor(table_bits=4)
        stride = 1 << 6  # (addr >> 2) & 0xF collides every 64 bytes
        for _ in range(4):
            p.predict_update(0x0, True)
        assert p.predict_update(stride * (1 << 2) * 4, True) is True

    def test_restore_rejects_gshare_snapshot(self):
        b = BimodalPredictor(table_bits=8)
        g = GsharePredictor(table_bits=8)
        with pytest.raises(SnapshotError):
            b.restore(g.snapshot())


class TestGshareSpecific:
    def test_learns_alternating_pattern(self):
        """Gshare's history lets it learn T,N,T,N... perfectly; bimodal
        cannot."""
        g = GsharePredictor(table_bits=12)
        outcome = True
        misses_late = 0
        for i in range(400):
            correct = g.predict_update(0x4000, outcome)
            if i >= 200 and not correct:
                misses_late += 1
            outcome = not outcome
        assert misses_late == 0

    def test_history_in_snapshot(self):
        g = GsharePredictor(table_bits=8)
        g.predict_update(0x0, True)
        snap = g.snapshot()
        assert "history" in snap


class TestBulkFastPaths:
    """is_steady / taken_streak — the batched pipeline's branch probes.

    Both claim byte-identity with sequences of real ``predict_update``
    calls; the reference clones the predictor through a snapshot and
    replays the calls one at a time.
    """

    def _clone(self, predictor):
        other = type(predictor)(table_bits=predictor.table_bits)
        other.restore(predictor.snapshot())
        return other

    def _train(self, predictor, seed=7, n=300):
        rng = random.Random(seed)
        addrs = [0x1000, 0x104C, 0x2020, 0x5FF4]
        for _ in range(n):
            addr = rng.choice(addrs)
            # Loop-shaped outcomes: mostly taken with periodic exits.
            predictor.predict_update(addr, rng.random() < 0.85)

    @pytest.mark.parametrize("taken", (True, False))
    def test_is_steady_implies_no_state_change(self, predictor, taken):
        self._train(predictor)
        checked = 0
        for addr in (0x1000, 0x104C, 0x2020, 0x5FF4):
            # Drive the address to its fixed point for this outcome.
            for _ in range(20):
                predictor.predict_update(addr, taken)
            if not predictor.is_steady(addr, taken):
                continue  # gshare history may belong to the other outcome
            checked += 1
            before = predictor.snapshot()
            assert predictor.predict_update(addr, taken) is True
            assert predictor.snapshot() == before
        if isinstance(predictor, BimodalPredictor):
            assert checked > 0  # no history: saturation always steadies

    def test_not_steady_while_training(self, predictor):
        assert not predictor.is_steady(0x1000, True)  # weak-taken start

    @pytest.mark.parametrize("limit", (0, 1, 7, 40))
    def test_taken_streak_matches_sequential_updates(self, predictor, limit):
        self._train(predictor)
        # Leave the history mid-refill: a not-taken then a few takens.
        predictor.predict_update(0x1000, False)
        predictor.predict_update(0x1000, True)
        reference = self._clone(predictor)
        base_preds = predictor.stats.predictions
        base_miss = predictor.stats.mispredictions
        applied = predictor.taken_streak(0x1000, limit)
        assert 0 <= applied <= limit
        for _ in range(applied):
            assert reference.predict_update(0x1000, True) is True
        assert predictor.snapshot() == reference.snapshot()
        # Every bulk step was a real prediction, and none mispredicted.
        assert predictor.stats.predictions - base_preds == applied
        assert predictor.stats.mispredictions == base_miss
        # The step after the streak behaves identically on both.
        before_mis = predictor.stats.mispredictions
        p = predictor.predict_update(0x1000, True)
        r = reference.predict_update(0x1000, True)
        assert p == r
        assert predictor.snapshot() == reference.snapshot()
        if applied < limit:
            # The streak stopped for a reason: the next real taken update
            # either mispredicts or writes a table entry.
            assert (
                predictor.stats.mispredictions > before_mis
                or p is True
            )

    def test_streak_stops_before_unsaturated_entry(self, predictor):
        # Fresh table: weak-taken counters would move, so no bulk steps.
        assert predictor.taken_streak(0x1000, 100) == 0

"""Tests for the sampling base types, the full-detail reference trace, and
SMARTS/TurboSMARTS."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Scale
from repro.errors import ConfigurationError, SamplingError, StreamExhausted
from repro.sampling import (
    FullDetail,
    ReferenceTrace,
    Smarts,
    SmartsConfig,
    TurboSmarts,
    TurboSmartsConfig,
    collect_reference_trace,
)
from repro.sampling.base import SamplingResult

from conftest import make_two_phase_program


@pytest.fixture(scope="module")
def program():
    return make_two_phase_program()


@pytest.fixture(scope="module")
def trace(program):
    return collect_reference_trace(program, window_ops=2_000)


class TestSamplingResult:
    def test_percent_error(self):
        res = SamplingResult("t", "p", ipc_estimate=1.1, detailed_ops=0, total_ops=0)
        assert res.percent_error(1.0) == pytest.approx(10.0)

    def test_repr_mentions_technique(self):
        res = SamplingResult("PGSS", "x", 1.0, 10, 10)
        assert "PGSS" in repr(res)


class TestFullDetail:
    def test_full_detail_is_ground_truth(self, program, trace):
        result = FullDetail().run(program)
        assert result.ipc_estimate == pytest.approx(trace.true_ipc, rel=1e-6)
        assert result.detailed_ops == result.total_ops

    def test_deterministic(self, program):
        r1 = FullDetail().run(program)
        r2 = FullDetail().run(program)
        assert r1.ipc_estimate == r2.ipc_estimate


class TestReferenceTrace:
    def test_window_sums(self, program, trace):
        assert trace.total_ops == sum(trace.ops)
        assert trace.n_windows >= 50
        assert trace.true_ipc == pytest.approx(
            trace.total_ops / trace.total_cycles
        )

    def test_ipcs_shape(self, trace):
        assert trace.ipcs.shape == (trace.n_windows,)
        assert (trace.ipcs > 0).all()

    def test_bbvs_nonnegative(self, trace):
        assert (trace.bbvs >= 0).all()
        assert trace.bbvs.shape[1] == 32

    def test_normalized_rows_unit(self, trace):
        norms = np.linalg.norm(trace.normalized_bbvs(), axis=1)
        nonzero = norms[norms > 0]
        assert np.allclose(nonzero, 1.0)

    def test_aggregate_preserves_totals(self, trace):
        for factor in (2, 3, 7):
            agg = trace.aggregate(factor)
            assert agg.total_ops == trace.total_ops
            assert agg.total_cycles == trace.total_cycles
            assert agg.bbvs.sum() == pytest.approx(trace.bbvs.sum())
            assert agg.true_ipc == pytest.approx(trace.true_ipc)

    def test_aggregate_one_is_identity(self, trace):
        assert trace.aggregate(1) is trace

    def test_aggregate_window_count(self, trace):
        agg = trace.aggregate(4)
        assert agg.n_windows == math.ceil(trace.n_windows / 4)

    def test_to_period(self, trace):
        agg = trace.to_period(8_000)
        assert agg.window_ops_target == 8_000

    def test_to_period_rejects_non_multiple(self, trace):
        with pytest.raises(SamplingError):
            trace.to_period(3_000)

    def test_save_load_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ReferenceTrace.load(path)
        assert loaded.program == trace.program
        assert (loaded.ops == trace.ops).all()
        assert (loaded.bbvs == trace.bbvs).all()
        assert loaded.true_ipc == trace.true_ipc

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(SamplingError):
            ReferenceTrace("x", 100, np.ones(3), np.ones(2), np.ones((3, 4)))

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_aggregate_any_factor_preserves_ipc(self, factor):
        ops = np.arange(1, 30, dtype=np.int64) * 100
        cycles = ops * 2
        bbvs = np.ones((29, 8))
        t = ReferenceTrace("x", 100, ops, cycles, bbvs)
        assert t.aggregate(factor).true_ipc == pytest.approx(0.5)


class TestSmartsConfig:
    def test_from_scale(self):
        cfg = SmartsConfig.from_scale(Scale.QUICK)
        assert cfg.period_ops == Scale.QUICK.smarts_period
        assert cfg.detail_ops == Scale.QUICK.smarts_detail

    def test_rejects_period_smaller_than_sample(self):
        with pytest.raises(ConfigurationError):
            SmartsConfig(period_ops=3_000, detail_ops=1_000, warmup_ops=3_000)

    def test_rejects_zero_detail(self):
        with pytest.raises(ConfigurationError):
            SmartsConfig(period_ops=10_000, detail_ops=0)


class TestSmarts:
    def test_accuracy_on_two_phase(self, program, trace):
        cfg = SmartsConfig(period_ops=4_000, detail_ops=500, warmup_ops=500)
        result = Smarts(cfg).run(program)
        assert result.percent_error(trace.true_ipc) < 15.0
        assert result.n_samples >= 30

    def test_detailed_ops_accounting(self, program):
        cfg = SmartsConfig(period_ops=4_000, detail_ops=500, warmup_ops=500)
        result = Smarts(cfg).run(program)
        per_sample = 1_000  # warm + detail
        assert result.detailed_ops == pytest.approx(
            result.n_samples * per_sample, rel=0.1
        )

    def test_ci_reported(self, program):
        cfg = SmartsConfig(period_ops=4_000, detail_ops=500, warmup_ops=500)
        result = Smarts(cfg).run(program)
        assert result.ci is not None
        assert result.ci.n == result.n_samples

    def test_sample_offsets_periodic(self, program):
        cfg = SmartsConfig(period_ops=8_000, detail_ops=500, warmup_ops=500)
        samples, _ = Smarts(cfg).collect_samples(program)
        offsets = [s.op_offset for s in samples]
        gaps = np.diff(offsets)
        assert np.abs(gaps - 8_000).max() < 500  # block-granularity jitter

    def test_polymodal_population(self, program):
        """The two-phase program produces the polymodal sample population
        of the paper's Fig. 3 argument."""
        cfg = SmartsConfig(period_ops=3_000, detail_ops=500, warmup_ops=500)
        samples, _ = Smarts(cfg).collect_samples(program)
        ipcs = np.array([s.ipc for s in samples])
        spread = ipcs.max() / max(ipcs.min(), 1e-9)
        assert spread > 3  # samples straddle the fast and slow phases


class TestTurboSmarts:
    def test_consumes_subset_when_loose_bound(self, program):
        cfg = TurboSmartsConfig(
            smarts=SmartsConfig(period_ops=3_000, detail_ops=500, warmup_ops=500),
            rel_error=0.5,
            confidence=0.90,
            min_samples=5,
        )
        result = TurboSmarts(cfg).run(program)
        assert result.extras["converged"]
        assert result.n_samples < result.extras["universe_size"]

    def test_consumes_everything_when_impossible_bound(self, program):
        cfg = TurboSmartsConfig(
            smarts=SmartsConfig(period_ops=3_000, detail_ops=500, warmup_ops=500),
            rel_error=1e-6,
        )
        result = TurboSmarts(cfg).run(program)
        assert not result.extras["converged"]
        assert result.n_samples == result.extras["universe_size"]

    def test_detailed_cost_counts_consumed_only(self, program):
        cfg = TurboSmartsConfig(
            smarts=SmartsConfig(period_ops=3_000, detail_ops=500, warmup_ops=500),
            rel_error=0.5,
            confidence=0.90,
            min_samples=5,
        )
        result = TurboSmarts(cfg).run(program)
        assert result.detailed_ops == result.n_samples * 1_000

    def test_random_order_seed_matters(self, program):
        def run(seed):
            cfg = TurboSmartsConfig(
                smarts=SmartsConfig(
                    period_ops=3_000, detail_ops=500, warmup_ops=500
                ),
                rel_error=0.35,
                confidence=0.90,
                min_samples=5,
                seed=seed,
            )
            return TurboSmarts(cfg).run(program)

        estimates = {round(run(seed).ipc_estimate, 6) for seed in range(5)}
        assert len(estimates) > 1

    def test_estimate_close_to_smarts_with_full_universe(self, program):
        smarts_cfg = SmartsConfig(period_ops=3_000, detail_ops=500, warmup_ops=500)
        full = Smarts(smarts_cfg).run(program)
        turbo = TurboSmarts(
            TurboSmartsConfig(smarts=smarts_cfg, rel_error=1e-6)
        ).run(program)
        assert turbo.ipc_estimate == pytest.approx(full.ipc_estimate, rel=1e-6)

    def test_config_validation(self):
        base = SmartsConfig(period_ops=3_000, detail_ops=500, warmup_ops=500)
        with pytest.raises(ConfigurationError):
            TurboSmartsConfig(smarts=base, rel_error=0.0)
        with pytest.raises(ConfigurationError):
            TurboSmartsConfig(smarts=base, confidence=2.0)
        with pytest.raises(ConfigurationError):
            TurboSmartsConfig(smarts=base, min_samples=1)


class TestStreamExhaustedGuard:
    def test_collect_trace_rejects_bad_window(self, program):
        with pytest.raises(SamplingError):
            collect_reference_trace(program, window_ops=0)

    def test_exhausted_error_type(self):
        assert issubclass(StreamExhausted, Exception)

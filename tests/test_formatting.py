"""Tests for the experiment text-formatting helpers."""

from repro.experiments.formatting import fmt_ops, fmt_pct, table


class TestTable:
    def test_alignment(self):
        text = table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All lines equal width per column: header padded to widest cell.
        assert lines[0].startswith("a   ")
        assert "----" in lines[1]

    def test_empty_rows(self):
        text = table(["h1", "h2"], [])
        assert "h1" in text and "h2" in text

    def test_cell_wider_than_header(self):
        text = table(["x"], [["wide-cell"]])
        assert "wide-cell" in text


class TestFmtOps:
    def test_scales(self):
        assert fmt_ops(500) == "500"
        assert fmt_ops(1_500) == "2k"
        assert fmt_ops(80_000) == "80k"
        assert fmt_ops(3_200_000) == "3.20M"
        assert fmt_ops(2_500_000_000) == "2.50G"

    def test_float_input(self):
        assert fmt_ops(1234.5) == "1k"


class TestFmtPct:
    def test_precision_bands(self):
        assert fmt_pct(0.123) == "0.12%"
        assert fmt_pct(5.67) == "5.67%"
        assert fmt_pct(45.6) == "45.6%"
        assert fmt_pct(123.0) == "123%"

"""Tests for the parallel orchestration layer and the concurrency-safe cache.

Covers the cache's atomic publication, duplicate-work suppression,
corruption quarantine, and strict keying; cell enumeration and
deduplication; the parallel driver's timeout/retry handling; the
byte-identity of ``--jobs 1`` vs ``--jobs N`` figure results; and the
``run-all`` CLI wiring.
"""

import json
import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.config import Scale
from repro.errors import CacheError, OrchestrationError, SamplingError
from repro.experiments import (
    ExperimentCell,
    ExperimentContext,
    ParallelRunner,
    ResultCache,
    enumerate_cells,
    run_cells,
    trace_cell,
)
from repro.experiments.cells import TRACE_FIGURE
from repro.sampling.full import ReferenceTrace

PAYLOAD = {"kind": "stress", "k": 1}

EQUALITY_FIGURES = ["fig02_sampling_granularity", "fig07_change_distribution"]


def _make_ctx(cache_dir):
    return ExperimentContext(
        Scale.QUICK,
        cache_dir=cache_dir,
        benchmarks=["164.gzip", "300.twolf"],
    )


def _race_writer(cache_dir, out_dir, idx):
    """One racing process: compute-or-hit the shared key, record both."""
    cache = ResultCache(cache_dir)

    def compute():
        (out_dir / f"compute.{idx}").write_text("computed")
        return {"value": 42, "blob": list(range(64)), "writer_pool": True}

    result = cache.json(PAYLOAD, compute)
    (out_dir / f"result.{idx}.json").write_text(
        json.dumps(result, sort_keys=True)
    )


def _sleepy_runner(ctx, cell):
    time.sleep(30)


def _flaky_runner(ctx, cell):
    """Fails the first attempt of each cell, succeeds afterwards."""
    marker = ctx.cache.directory / f"attempted.{cell.benchmark}"
    if not marker.exists():
        marker.write_text("first attempt")
        raise SamplingError("transient fault, please retry")


def _noop_runner(ctx, cell):
    return None


class TestCacheConcurrency:
    def test_multiprocess_writers_race_one_key(self, tmp_path):
        """N processes racing one key: all observe identical bytes."""
        cache_dir = tmp_path / "cache"
        out_dir = tmp_path / "out"
        cache_dir.mkdir()
        out_dir.mkdir()
        mp = multiprocessing.get_context("fork")
        procs = [
            mp.Process(target=_race_writer, args=(cache_dir, out_dir, i))
            for i in range(6)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        results = {
            path.read_text() for path in sorted(out_dir.glob("result.*.json"))
        }
        assert len(results) == 1  # every process saw the same bytes
        computes = list(out_dir.glob("compute.*"))
        assert len(computes) >= 1
        # The published entry is complete, valid JSON.
        entries = list(cache_dir.glob("*.json"))
        assert len(entries) == 1
        assert json.loads(entries[0].read_text())["value"] == 42
        # No tmp or claim litter survives the race.
        assert not list(cache_dir.glob("*.tmp"))
        assert not list(cache_dir.glob("*.claim"))

    def test_waiter_reuses_peer_result(self, tmp_path):
        """A reader that loses the claim race waits instead of recomputing."""
        first = ResultCache(tmp_path)
        second = ResultCache(tmp_path)
        claimed = threading.Event()
        release = threading.Event()

        def slow_compute():
            claimed.set()
            assert release.wait(timeout=30)
            return {"value": "from-first"}

        def never_compute():
            raise AssertionError("waiter must not recompute")

        holder = threading.Thread(
            target=lambda: first.json({"k": "slow"}, slow_compute)
        )
        holder.start()
        assert claimed.wait(timeout=30)
        # First holds the claim now; let it publish shortly after the
        # second reader has started waiting on it.
        threading.Timer(0.2, release.set).start()
        result = second.json({"k": "slow"}, never_compute)
        holder.join(timeout=30)
        assert result == {"value": "from-first"}
        assert second.races == 1
        assert second.hits == 1 and second.misses == 0

    def test_stale_claim_is_stolen(self, tmp_path):
        """A claim left by a dead process does not block readers."""
        cache = ResultCache(tmp_path)
        key = cache.key({"k": "stale"})
        claim = tmp_path / f"{key}.json.claim"
        claim.write_text("999999999")  # no such pid
        result = cache.json({"k": "stale"}, lambda: {"v": 1})
        assert result == {"v": 1}
        assert cache.races == 1 and cache.misses == 1
        assert not claim.exists()


class TestCacheCorruption:
    def test_corrupt_json_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.json({"k": 1}, lambda: {"v": "original"})
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{not json at all")
        fresh = ResultCache(tmp_path)
        result = fresh.json({"k": 1}, lambda: {"v": "recomputed"})
        assert result == {"v": "recomputed"}
        assert fresh.corrupt == 1 and fresh.misses == 1
        assert list(tmp_path.glob("*.corrupt"))
        # The recomputed entry replaces the quarantined one durably.
        assert ResultCache(tmp_path).json(
            {"k": 1}, lambda: {"v": "never"}
        ) == {"v": "recomputed"}

    def test_non_object_json_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.json({"k": 1}, lambda: {"v": 1})
        next(tmp_path.glob("*.json")).write_text('["valid", "but", "a", "list"]')
        fresh = ResultCache(tmp_path)
        assert fresh.json({"k": 1}, lambda: {"v": 2}) == {"v": 2}
        assert fresh.corrupt == 1

    def test_truncated_trace_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        trace = ReferenceTrace(
            "tiny",
            100,
            np.array([100, 100]),
            np.array([200, 150]),
            np.zeros((2, 32)),
        )
        cache.trace({"k": "t"}, lambda: trace)
        entry = next(tmp_path.glob("*.npz"))
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        fresh = ResultCache(tmp_path)
        recovered = fresh.trace({"k": "t"}, lambda: trace)
        assert recovered.true_ipc == trace.true_ipc
        assert fresh.corrupt == 1 and fresh.misses == 1
        assert list(tmp_path.glob("*.corrupt"))


class TestCacheHygiene:
    def test_clear_sweeps_working_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.json({"k": 1}, lambda: {})
        (tmp_path / "deadbeef.json.123.abcd1234.tmp").write_text("torn")
        (tmp_path / "deadbeef.json.claim").write_text("42")
        (tmp_path / "deadbeef.json.corrupt").write_text("bad")
        (tmp_path / "unrelated.txt").write_text("keep me")
        assert cache.clear() == 4
        assert (tmp_path / "unrelated.txt").exists()
        assert not list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob("*.claim"))
        assert not list(tmp_path.glob("*.corrupt"))

    def test_key_rejects_unserializable_payload(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CacheError):
            cache.key({"bad": object()})
        with pytest.raises(CacheError):
            cache.key({"bad": {1, 2, 3}})

    def test_key_rejects_unserializable_nested_value(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CacheError):
            cache.json({"cfg": {"rng": np.random.default_rng(0)}}, lambda: {})


class TestCells:
    def test_cell_identity_and_seed_are_stable(self):
        a = ExperimentCell.make("fig11_pgss_sweep", "164.gzip", period=4000, threshold_pi=0.05)
        b = ExperimentCell.make("fig11_pgss_sweep", "164.gzip", threshold_pi=0.05, period=4000)
        assert a == b
        assert a.cell_id == "fig11_pgss_sweep/164.gzip[period=4000,threshold_pi=0.05]"
        assert a.seed == b.seed
        assert a.seed != trace_cell("164.gzip").seed

    def test_enumerate_cells_dedupes_shared_traces(self, tmp_path):
        ctx = _make_ctx(tmp_path)
        cells = enumerate_cells(ctx, figures=EQUALITY_FIGURES)
        assert len(cells) == len(set(cells))
        traces = [c for c in cells if c.figure == TRACE_FIGURE]
        # fig02 warms one benchmark, fig07 warms both; the shared trace
        # cell must appear exactly once.
        assert len(traces) == len({c.benchmark for c in traces})

    def test_enumerate_cells_covers_all_figures(self, tmp_path):
        ctx = _make_ctx(tmp_path)
        cells = enumerate_cells(ctx)
        figures = {c.figure for c in cells}
        assert TRACE_FIGURE in figures
        assert "fig11_pgss_sweep" in figures
        assert "fig12_technique_comparison" in figures
        assert "tradeoff" in figures

    def test_unknown_cell_params_raise(self, tmp_path):
        from repro.experiments.cells import run_cell as run_one

        ctx = _make_ctx(tmp_path)
        bad = ExperimentCell.make(
            "fig12_technique_comparison", "164.gzip", technique="nonesuch"
        )
        with pytest.raises(OrchestrationError):
            run_one(ctx, bad)


class TestParallelRunner:
    def test_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(OrchestrationError):
            ParallelRunner(_make_ctx(tmp_path), jobs=0)

    def test_serial_outcomes_in_order(self, tmp_path):
        ctx = _make_ctx(tmp_path)
        cells = [trace_cell(b) for b in ctx.benchmarks]
        outcomes = run_cells(ctx, cells, jobs=1, cell_runner=_noop_runner)
        assert [o.cell for o in outcomes] == cells
        assert all(o.status == "ok" and o.attempts == 1 for o in outcomes)

    def test_pool_timeout_is_reported(self, tmp_path):
        ctx = _make_ctx(tmp_path)
        outcomes = run_cells(
            ctx,
            [trace_cell("164.gzip")],
            jobs=2,
            timeout_s=1.0,
            retries=0,
            cell_runner=_sleepy_runner,
        )
        assert outcomes[0].status == "timeout"
        assert "budget" in outcomes[0].error

    def test_pool_retry_recovers_transient_fault(self, tmp_path):
        ctx = _make_ctx(tmp_path)
        cells = [trace_cell(b) for b in ctx.benchmarks]
        outcomes = run_cells(
            ctx, cells, jobs=2, retries=1, cell_runner=_flaky_runner
        )
        assert all(o.status == "ok" for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)

    def test_retries_exhausted_reports_error(self, tmp_path):
        ctx = _make_ctx(tmp_path)

        def always_fails(ctx, cell):
            raise SamplingError("permanent fault")

        outcomes = run_cells(
            ctx,
            [trace_cell("164.gzip")],
            jobs=1,
            retries=1,
            cell_runner=always_fails,
        )
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 2
        assert "permanent fault" in outcomes[0].error

    def test_progress_lines_emitted(self, tmp_path):
        ctx = _make_ctx(tmp_path)
        lines = []
        cells = [trace_cell(b) for b in ctx.benchmarks]
        run_cells(ctx, cells, jobs=1, progress=lines.append, cell_runner=_noop_runner)
        assert len(lines) == len(cells)
        assert lines[-1].startswith(f"[{len(cells)}/{len(cells)}]")
        assert "ETA" in lines[0]


class TestWorkerAlarmHygiene:
    def test_execute_cell_restores_sigalrm_handler(self, tmp_path):
        """Regression: _execute_cell leaked _on_alarm into the host when
        run in-process, turning any later host alarm into a _CellTimeout."""
        import signal

        from repro.experiments.parallel import _context_spec, _execute_cell

        def sentinel(signum, frame):  # pragma: no cover - never fired
            raise AssertionError("sentinel alarm fired")

        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            record = _execute_cell(
                _context_spec(_make_ctx(tmp_path)),
                trace_cell("164.gzip"),
                5.0,
                _noop_runner,
            )
            assert record["status"] == "ok"
            assert signal.getsignal(signal.SIGALRM) is sentinel
            assert signal.alarm(0) == 0  # no alarm left pending
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_execute_cell_restores_handler_on_error(self, tmp_path):
        import signal

        from repro.experiments.parallel import _context_spec, _execute_cell

        def sentinel(signum, frame):  # pragma: no cover - never fired
            raise AssertionError("sentinel alarm fired")

        def failing_runner(ctx, cell):
            raise SamplingError("boom")

        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            record = _execute_cell(
                _context_spec(_make_ctx(tmp_path)),
                trace_cell("164.gzip"),
                5.0,
                failing_runner,
            )
            assert record["status"] == "error"
            assert signal.getsignal(signal.SIGALRM) is sentinel
            assert signal.alarm(0) == 0
        finally:
            signal.signal(signal.SIGALRM, previous)


class TestParallelEquality:
    def test_jobs1_and_jobs2_results_byte_identical(self, tmp_path):
        """The acceptance property: any job count, identical figure bytes."""
        serial_ctx = _make_ctx(tmp_path / "serial")
        parallel_ctx = _make_ctx(tmp_path / "parallel")

        serial = run_cells(
            serial_ctx,
            enumerate_cells(serial_ctx, figures=EQUALITY_FIGURES),
            jobs=1,
        )
        parallel = run_cells(
            parallel_ctx,
            enumerate_cells(parallel_ctx, figures=EQUALITY_FIGURES),
            jobs=2,
        )
        assert all(o.status == "ok" for o in serial + parallel)

        import repro.experiments.fig02_sampling_granularity as fig02
        import repro.experiments.fig07_change_distribution as fig07

        for module in (fig02, fig07):
            a = json.dumps(module.run(serial_ctx), sort_keys=True)
            b = json.dumps(module.run(parallel_ctx), sort_keys=True)
            assert a == b
        # Figure assembly after the fan-out reads pure cache hits.
        assert serial_ctx.cache.stats()["corrupt"] == 0
        assert parallel_ctx.cache.stats()["corrupt"] == 0


class TestRunAllCli:
    def test_parser_accepts_run_all(self):
        args = build_parser().parse_args(
            ["--scale", "quick", "run-all", "--jobs", "3", "--figures", "2,10"]
        )
        assert args.command == "run-all"
        assert args.jobs == 3
        assert args.figures == "2,10"

    def test_run_all_unknown_figure_fails_fast(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--scale", "quick", "run-all", "--figures", "99"])
        assert code == 2
        assert "unknown figure id" in capsys.readouterr().err

    def test_run_all_quick_figure_parallel(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            ["--scale", "quick", "run-all", "--figures", "2", "--jobs", "2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Figure 2" in captured.out
        assert "cache:" in captured.err

    def test_run_all_writes_report_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "report.txt"
        code = main(
            [
                "--scale",
                "quick",
                "run-all",
                "--figures",
                "2",
                "--quiet",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert "Figure 2" in out.read_text()

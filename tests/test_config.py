"""Tests for configuration objects and their validation."""

import dataclasses

import pytest

from repro import (
    CacheConfig,
    ConfigurationError,
    DEFAULT_MACHINE,
    MachineConfig,
    Scale,
    ScaleConfig,
)


class TestCacheConfig:
    def test_default_geometry(self):
        cfg = CacheConfig(64 * 1024, 4)
        assert cfg.line_bytes == 64
        assert cfg.n_sets == 256

    def test_n_sets_computed_from_geometry(self):
        cfg = CacheConfig(1024 * 1024, 8, line_bytes=64)
        assert cfg.n_sets == 2048

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(64 * 1024, 4, line_bytes=48)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(0, 4)

    def test_rejects_negative_assoc(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(64 * 1024, -1)

    def test_rejects_unaligned_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(100, 3, line_bytes=64)

    def test_is_frozen(self):
        cfg = CacheConfig(64 * 1024, 4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.size_bytes = 1


class TestMachineConfig:
    def test_paper_machine_defaults(self):
        """The default machine is the paper's evaluation processor."""
        m = DEFAULT_MACHINE
        assert m.issue_width == 4
        assert m.l1i.size_bytes == 64 * 1024
        assert m.l1d.size_bytes == 64 * 1024
        assert m.l1i.assoc == 4
        assert m.l2.size_bytes == 1024 * 1024

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(issue_width=0)

    def test_rejects_zero_mshrs(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(n_mshrs=0)

    def test_scaled_cache_resizes_all_levels(self):
        m = DEFAULT_MACHINE.scaled_cache(16, 256)
        assert m.l1i.size_bytes == 16 * 1024
        assert m.l1d.size_bytes == 16 * 1024
        assert m.l2.size_bytes == 256 * 1024

    def test_scaled_cache_preserves_other_fields(self):
        m = DEFAULT_MACHINE.scaled_cache(16, 256)
        assert m.issue_width == DEFAULT_MACHINE.issue_width
        assert m.memory_latency == DEFAULT_MACHINE.memory_latency


class TestScaleConfig:
    def test_three_scales_exist(self):
        assert Scale.PAPER.name == "paper"
        assert Scale.SCALED.name == "scaled"
        assert Scale.QUICK.name == "quick"

    def test_paper_uses_papers_literal_values(self):
        """DESIGN.md scaling map: PAPER keeps the published parameters."""
        p = Scale.PAPER
        assert p.smarts_detail == 1_000
        assert p.smarts_warmup == 3_000
        assert p.smarts_period == 1_000_000
        assert p.pgss_periods == (100_000, 1_000_000, 10_000_000)
        assert p.pgss_best_period == 1_000_000
        assert p.simpoint_intervals == (1_000_000, 10_000_000, 100_000_000)
        assert p.turbo_rel_error == 0.03
        assert p.turbo_confidence == 0.997

    def test_thresholds_match_paper(self):
        for scale in (Scale.PAPER, Scale.SCALED, Scale.QUICK):
            assert scale.thresholds == (0.05, 0.10, 0.15, 0.20, 0.25)

    def test_intervals_are_window_multiples(self):
        for scale in (Scale.PAPER, Scale.SCALED, Scale.QUICK):
            for interval in scale.simpoint_intervals + scale.pgss_periods:
                assert interval % scale.trace_window == 0

    def test_rejects_non_multiple_interval(self):
        with pytest.raises(ConfigurationError):
            ScaleConfig(
                name="bad",
                benchmark_ops=1000,
                smarts_detail=10,
                smarts_warmup=10,
                smarts_period=100,
                pgss_periods=(150,),
                pgss_best_period=150,
                pgss_spread=100,
                trace_window=100,
            )

    def test_rejects_empty_periods(self):
        with pytest.raises(ConfigurationError):
            ScaleConfig(
                name="bad",
                benchmark_ops=1000,
                smarts_detail=10,
                smarts_warmup=10,
                smarts_period=100,
                pgss_periods=(),
                pgss_best_period=100,
                pgss_spread=100,
            )

    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            ScaleConfig(
                name="bad",
                benchmark_ops=1000,
                smarts_detail=10,
                smarts_warmup=10,
                smarts_period=100,
                pgss_periods=(100,),
                pgss_best_period=100,
                pgss_spread=100,
                turbo_confidence=1.5,
                trace_window=100,
            )


class TestSampleBudget:
    """The shared from_scale helper (paper Table 1 parameters)."""

    def test_paper_values_match_table1(self):
        budget = Scale.PAPER.sample_budget
        assert budget.detail_ops == 1_000
        assert budget.warmup_ops == 3_000
        assert budget.rel_error == 0.03
        assert budget.confidence == 0.997
        assert Scale.PAPER.smarts_period == 1_000_000
        assert Scale.PAPER.pgss_spread == 1_000_000

    def test_ops_per_sample(self):
        assert Scale.PAPER.sample_budget.ops_per_sample == 4_000

    def test_from_scale_constructors_share_the_budget(self):
        """Smarts/TurboSmarts/Pgss derive identical sample parameters."""
        from repro.sampling import PgssConfig, SmartsConfig, TurboSmartsConfig

        for scale in (Scale.PAPER, Scale.SCALED, Scale.QUICK):
            budget = scale.sample_budget
            smarts = SmartsConfig.from_scale(scale)
            turbo = TurboSmartsConfig.from_scale(scale)
            pgss = PgssConfig.from_scale(scale)
            assert smarts.detail_ops == budget.detail_ops
            assert smarts.warmup_ops == budget.warmup_ops
            assert smarts.confidence == budget.confidence
            assert turbo.smarts == smarts
            assert turbo.rel_error == budget.rel_error
            assert turbo.confidence == budget.confidence
            assert pgss.detail_ops == budget.detail_ops
            assert pgss.warmup_ops == budget.warmup_ops
            assert pgss.rel_error == budget.rel_error
            assert pgss.confidence == budget.confidence

    def test_budget_is_validated(self):
        from repro import SampleBudget

        with pytest.raises(ConfigurationError):
            SampleBudget(0, 100, 0.03, 0.997)
        with pytest.raises(ConfigurationError):
            SampleBudget(1000, 3000, -0.1, 0.997)
        with pytest.raises(ConfigurationError):
            SampleBudget(1000, 3000, 0.03, 1.5)

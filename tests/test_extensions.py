"""Tests for the paper's future-work extensions: multicore PGSS and
phase-transition refinement."""

import math

import numpy as np
import pytest

from repro import Scale, get_workload
from repro.config import MachineConfig
from repro.cpu import Mode, MultiCoreEngine, MultiCorePgss
from repro.errors import ConfigurationError, SamplingError
from repro.phase import OnlinePhaseClassifier, TransitionRefiner
from repro.sampling import FullDetail, PgssConfig
from repro.sampling.pgss import PgssController
from repro.cpu.engine import SimulationEngine

from conftest import make_two_phase_program


class TestMultiCoreEngine:
    def test_requires_programs(self):
        with pytest.raises(ConfigurationError):
            MultiCoreEngine([])

    def test_rejects_bad_slice(self):
        with pytest.raises(ConfigurationError):
            MultiCoreEngine([make_two_phase_program()], slice_ops=0)

    def test_cores_share_one_l2(self):
        mc = MultiCoreEngine(
            [make_two_phase_program(seed=1), make_two_phase_program(seed=2)]
        )
        assert mc.engines[0].hierarchy.l2 is mc.engines[1].hierarchy.l2
        assert mc.engines[0].hierarchy.l1d is not mc.engines[1].hierarchy.l1d

    def test_run_all_completes_every_core(self):
        programs = [
            get_workload("177.mesa", Scale.QUICK),
            get_workload("181.mcf", Scale.QUICK),
        ]
        mc = MultiCoreEngine(programs)
        results = mc.run_all(Mode.DETAIL)
        assert mc.all_exhausted
        assert len(results) == 2
        for result, program in zip(results, programs):
            assert result.ops >= program.total_ops * 0.9
            assert result.ipc > 0

    def test_shared_l2_interference_slows_cores(self):
        """Two L2-hungry co-runners run slower than solo — the first-order
        CMP effect the extension models."""
        small_l2 = MachineConfig().scaled_cache(64, 256)

        def solo(name):
            return FullDetail(machine=small_l2).run(
                get_workload(name, Scale.QUICK)
            ).ipc_estimate

        solo_ipcs = {n: solo(n) for n in ("256.bzip2", "183.equake")}
        mc = MultiCoreEngine(
            [
                get_workload("256.bzip2", Scale.QUICK),
                get_workload("183.equake", Scale.QUICK),
            ],
            machine=small_l2,
        )
        co = {r.program: r.ipc for r in mc.run_all(Mode.DETAIL)}
        # At least one co-runner must lose noticeable performance.
        losses = [solo_ipcs[n] / co[n] for n in solo_ipcs]
        assert max(losses) > 1.02, losses

    def test_single_core_matches_plain_engine(self):
        program = make_two_phase_program()
        mc = MultiCoreEngine([make_two_phase_program()])
        mc_result = mc.run_all(Mode.DETAIL)[0]
        solo = FullDetail().run(program)
        assert mc_result.ipc == pytest.approx(solo.ipc_estimate, rel=1e-9)


class TestMultiCorePgss:
    def test_per_core_results(self):
        cfg = PgssConfig.from_scale(Scale.QUICK)
        runner = MultiCorePgss(lambda core: cfg)
        out = runner.run(
            [
                get_workload("177.mesa", Scale.QUICK),
                get_workload("181.mcf", Scale.QUICK),
            ]
        )
        assert set(out) == {0, 1}
        for result in out.values():
            assert result.ipc_estimate > 0
            assert result.extras["n_phases"] >= 1
            assert result.detailed_ops > 0

    def test_estimates_track_cmp_ground_truth(self):
        programs = [
            get_workload("177.mesa", Scale.QUICK),
            get_workload("164.gzip", Scale.QUICK),
        ]
        truth = {
            r.core: r.ipc
            for r in MultiCoreEngine(
                [get_workload("177.mesa", Scale.QUICK),
                 get_workload("164.gzip", Scale.QUICK)]
            ).run_all(Mode.DETAIL)
        }
        cfg = PgssConfig.from_scale(Scale.QUICK)
        out = MultiCorePgss(lambda core: cfg).run(programs)
        for core, result in out.items():
            err = abs(result.ipc_estimate - truth[core]) / truth[core]
            # QUICK-scale sampling noise is large; the SCALED operating
            # point is exercised by the benchmark harness.
            assert err < 0.5, (core, err)

    def test_per_core_configs(self):
        configs = {
            0: PgssConfig.from_scale(Scale.QUICK, threshold_pi=0.05),
            1: PgssConfig.from_scale(Scale.QUICK, threshold_pi=0.25),
        }
        out = MultiCorePgss(lambda core: configs[core]).run(
            [
                get_workload("183.equake", Scale.QUICK),
                get_workload("183.equake", Scale.QUICK),
            ]
        )
        assert out[0].extras["config"].endswith(".05")
        assert out[1].extras["config"].endswith(".25")


class TestPgssController:
    def test_requires_tracker(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        with pytest.raises(ConfigurationError):
            PgssController(engine, PgssConfig.from_scale(Scale.QUICK))

    def test_step_until_done_matches_run(self, two_phase_program):
        from repro.sampling import Pgss

        cfg = PgssConfig.from_scale(Scale.QUICK, bbv_period_ops=4_000)
        direct = Pgss(cfg).run(two_phase_program)

        tech = Pgss(cfg)
        engine = SimulationEngine(
            make_two_phase_program(), bbv_tracker=tech._make_tracker()
        )
        controller = PgssController(engine, cfg)
        steps = 0
        while controller.step():
            steps += 1
        stepped = controller.result()
        assert steps > 5
        assert stepped.ipc_estimate == pytest.approx(direct.ipc_estimate)
        assert stepped.detailed_ops == direct.detailed_ops

    def test_result_before_finish_wraps_up(self, two_phase_program):
        cfg = PgssConfig.from_scale(Scale.QUICK, bbv_period_ops=4_000)
        from repro.sampling import Pgss

        engine = SimulationEngine(
            two_phase_program, bbv_tracker=Pgss(cfg)._make_tracker()
        )
        controller = PgssController(engine, cfg)
        for _ in range(3):
            controller.step()
        result = controller.result()
        assert result.ipc_estimate > 0

    def test_step_after_finish_returns_false(self, two_phase_program):
        from repro.sampling import Pgss

        cfg = PgssConfig.from_scale(Scale.QUICK, bbv_period_ops=4_000)
        engine = SimulationEngine(
            two_phase_program, bbv_tracker=Pgss(cfg)._make_tracker()
        )
        controller = PgssController(engine, cfg)
        while controller.step():
            pass
        assert controller.step() is False


class TestTransitionRefiner:
    def _series(self, boundary_window=10, n=20, dim=8):
        """Fine windows: phase A then phase B at *boundary_window*."""
        a = np.zeros(dim)
        a[0] = 1.0
        b = np.zeros(dim)
        b[1] = 1.0
        bbvs = [a] * boundary_window + [b] * (n - boundary_window)
        ops = [100] * n
        return bbvs, ops

    def test_finds_exact_boundary(self):
        bbvs, ops = self._series(boundary_window=10)
        refiner = TransitionRefiner(bbvs, ops, windows_per_period=5)
        # Coarse period 2 (windows 10-14) differs from period 1 (5-9).
        refined = refiner.refine(2)
        assert refined.fine_window == 10
        assert refined.op_offset == 1000
        assert refined.angle == pytest.approx(math.pi / 2)

    def test_boundary_error_metric(self):
        bbvs, ops = self._series(boundary_window=10)
        refiner = TransitionRefiner(bbvs, ops, windows_per_period=5)
        refined = refiner.refine(2)
        assert refiner.boundary_error_ops(refined, 1000) == 0
        assert refiner.boundary_error_ops(refined, 1250) == 250

    def test_refinement_beats_period_granularity(self):
        """The refined boundary is closer to the truth than the coarse
        period start can guarantee."""
        bbvs, ops = self._series(boundary_window=13, n=30)
        refiner = TransitionRefiner(bbvs, ops, windows_per_period=5)
        refined = refiner.refine(3)  # periods of 5: change seen in period 3
        assert refined.op_offset == 1300
        coarse_error = abs(3 * 5 * 100 - 1300)  # period-granularity guess
        assert refiner.boundary_error_ops(refined, 1300) <= coarse_error

    def test_refine_all_skips_bad(self):
        bbvs, ops = self._series()
        refiner = TransitionRefiner(bbvs, ops, windows_per_period=5)
        out = refiner.refine_all([2, 999])
        assert len(out) == 1

    def test_validation(self):
        with pytest.raises(SamplingError):
            TransitionRefiner([np.ones(4)], [1, 2], windows_per_period=2)
        bbvs, ops = self._series()
        refiner = TransitionRefiner(bbvs, ops, windows_per_period=5)
        with pytest.raises(SamplingError):
            refiner.refine(0)

    def test_integrates_with_classifier(self):
        """End to end: classifier detects the change at period grain, the
        refiner pins it to the window grain."""
        bbvs, ops = self._series(boundary_window=12, n=30)
        wpp = 5
        classifier = OnlinePhaseClassifier(0.05 * math.pi)
        changes = []
        for period in range(len(bbvs) // wpp):
            agg = np.sum(bbvs[period * wpp : (period + 1) * wpp], axis=0)
            agg = agg / np.linalg.norm(agg)
            decision = classifier.observe(agg, 500)
            if decision.changed or (decision.created and period > 0):
                changes.append(period)
        assert changes, "classifier must notice the phase change"
        refiner = TransitionRefiner(bbvs, ops, windows_per_period=wpp)
        refined = refiner.refine(changes[0])
        assert refiner.boundary_error_ops(refined, 1200) <= 100

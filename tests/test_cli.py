"""Tests for the ``pgss-sim`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_default_scale(self):
        args = build_parser().parse_args(["list"])
        assert args.scale == "scaled"

    def test_scale_flag(self):
        args = build_parser().parse_args(["--scale", "quick", "list"])
        assert args.scale == "quick"

    def test_sample_defaults(self):
        args = build_parser().parse_args(["sample", "164.gzip"])
        assert args.technique == "pgss"
        assert args.threshold == 0.05

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "164.gzip" in out and "300.twolf" in out

    def test_simulate(self, capsys):
        assert main(["--scale", "quick", "simulate", "177.mesa"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_sample_pgss(self, capsys):
        assert main(["--scale", "quick", "sample", "177.mesa"]) == 0
        out = capsys.readouterr().out
        assert "PGSS" in out
        assert "n_phases" in out

    def test_sample_smarts(self, capsys):
        assert main(
            ["--scale", "quick", "sample", "177.mesa", "-t", "smarts"]
        ) == 0
        assert "SMARTS" in capsys.readouterr().out

    def test_sample_simpoint(self, capsys):
        assert main(
            ["--scale", "quick", "sample", "177.mesa", "-t", "simpoint"]
        ) == 0
        assert "SimPoint" in capsys.readouterr().out

    def test_rates(self, capsys):
        assert main(["--scale", "quick", "rates"]) == 0
        assert "kops/s" in capsys.readouterr().out

    def test_figure_runs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["--scale", "quick", "figure", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_clear_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["clear-cache"]) == 0
        assert "removed" in capsys.readouterr().out

    def test_calibrate(self, capsys):
        assert main(["--scale", "quick", "calibrate"]) == 0
        out = capsys.readouterr().out
        assert "164.gzip" in out and "168.wupwise" in out
        assert "sigma" in out

    def test_inspect(self, capsys):
        assert main(["--scale", "quick", "inspect", "181.mcf"]) == 0
        out = capsys.readouterr().out
        assert "behaviour occupancy" in out
        assert "CHASE" in out

    def test_report_selected_figures(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.config import Scale
        from repro.experiments import ExperimentContext
        from repro.experiments.report import generate_report

        ctx = ExperimentContext(
            Scale.QUICK, cache_dir=tmp_path, benchmarks=["164.gzip"]
        )
        text = generate_report(ctx, figures=["2", "3"])
        assert "Figure 2" in text
        assert "Figure 3" in text
        assert "Figure 10" not in text

    def test_report_to_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_file = tmp_path / "report.txt"
        # A full quick-scale report takes a couple of minutes; exercise the
        # CLI path through the figure subcommand instead and the report
        # writer through generate_report above.
        assert main(["--scale", "quick", "figure", "3"]) == 0
        assert "Figure 3" in capsys.readouterr().out
        assert not out_file.exists()

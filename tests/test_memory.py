"""Tests for the cache model and the two-level hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CacheConfig, DEFAULT_MACHINE
from repro.errors import SnapshotError
from repro.memory import Cache, CacheHierarchy


def small_cache(assoc: int = 2, sets: int = 4) -> Cache:
    return Cache(CacheConfig(assoc * sets * 64, assoc), name="t")


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True

    def test_same_line_different_offset_hits(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x103F) is True  # same 64B line

    def test_adjacent_line_misses(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1040) is False

    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, sets=1)  # fully specified single set
        a, b, d = 0x0, 0x40, 0x80
        c.access(a)
        c.access(b)
        c.access(a)      # a is MRU, b is LRU
        c.access(d)      # evicts b
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)

    def test_hit_refreshes_lru(self):
        c = small_cache(assoc=2, sets=1)
        a, b, d = 0x0, 0x40, 0x80
        c.access(a)
        c.access(b)      # order: b, a
        c.access(a)      # order: a, b
        c.access(d)      # evicts b, not a
        assert c.contains(a) and not c.contains(b)

    def test_writeback_counted_on_dirty_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x0, is_write=True)
        assert c.stats.writebacks == 0
        c.access(0x40)   # evicts dirty line
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x0)
        c.access(0x40)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x0)                 # clean fill
        c.access(0x0, is_write=True)  # dirty it
        c.access(0x40)
        assert c.stats.writebacks == 1

    def test_stats_accounting(self):
        c = small_cache()
        c.access(0x0)
        c.access(0x0)
        c.access(0x40)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_flush_invalidates(self):
        c = small_cache()
        c.access(0x0)
        c.flush()
        assert not c.contains(0x0)
        assert c.resident_lines() == 0

    def test_contains_is_side_effect_free(self):
        c = small_cache()
        c.access(0x0)
        before = c.stats.accesses
        c.contains(0x0)
        assert c.stats.accesses == before

    def test_snapshot_restore_roundtrip(self):
        c = small_cache()
        for addr in (0x0, 0x40, 0x80, 0x1000):
            c.access(addr, is_write=addr == 0x40)
        snap = c.snapshot()
        c.access(0x2000)
        c.access(0x2040)
        c.restore(snap)
        assert c.contains(0x0)
        # The restored state must behave identically going forward.
        assert c.access(0x40) is True

    def test_restore_rejects_wrong_geometry(self):
        c1 = small_cache(assoc=2, sets=4)
        c2 = small_cache(assoc=4, sets=4)
        with pytest.raises(SnapshotError):
            c2.restore(c1.snapshot())

    def test_capacity_bounded(self):
        c = small_cache(assoc=2, sets=4)
        for i in range(100):
            c.access(i * 64)
        assert c.resident_lines() <= 8


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_resident_never_exceeds_capacity(self, addrs):
        c = small_cache(assoc=2, sets=4)
        for addr in addrs:
            c.access(addr)
        assert c.resident_lines() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        c = small_cache()
        for addr in addrs:
            c.access(addr)
            assert c.access(addr) is True

    @given(st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_snapshot_restore_equivalence(self, addrs):
        """Replaying the same accesses after restore gives identical hits."""
        c = small_cache()
        for addr in addrs[: len(addrs) // 2]:
            c.access(addr)
        snap = c.snapshot()
        tail = addrs[len(addrs) // 2 :]
        first = [c.access(a) for a in tail]
        c.restore(snap)
        second = [c.access(a) for a in tail]
        assert first == second

    @given(st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_is_accesses(self, addrs):
        c = small_cache()
        for addr in addrs:
            c.access(addr)
        assert c.stats.hits + c.stats.misses == c.stats.accesses == len(addrs)


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x1000)
        res = h.access_data(0x1000)
        assert res.level == 1
        assert res.latency == DEFAULT_MACHINE.l1d.hit_latency

    def test_miss_goes_to_memory_first_time(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        res = h.access_data(0x1000)
        assert res.level == 3
        assert res.latency == (
            DEFAULT_MACHINE.l1d.hit_latency
            + DEFAULT_MACHINE.l2.hit_latency
            + DEFAULT_MACHINE.memory_latency
        )

    def test_l2_hit_after_l1_eviction(self):
        machine = DEFAULT_MACHINE.scaled_cache(1, 1024)  # tiny 1 KB L1
        h = CacheHierarchy(machine)
        h.access_data(0x0)
        # Blow the 16-line L1 with conflicting lines; L2 keeps everything.
        for i in range(1, 64):
            h.access_data(i * 1024)
        res = h.access_data(0x0)
        assert res.level == 2

    def test_split_l1_sides_are_independent(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x1000)
        res = h.access_inst(0x1000)
        # Same address on the I-side does not hit the D-side L1 (it does
        # hit the unified L2).
        assert res.level == 2

    def test_warm_matches_access_state(self):
        h1 = CacheHierarchy(DEFAULT_MACHINE)
        h2 = CacheHierarchy(DEFAULT_MACHINE)
        addrs = [0x0, 0x40, 0x1000, 0x0, 0x40400, 0x1000]
        for a in addrs:
            h1.access_data(a)
            h2.warm_data(a)
        assert h1.snapshot() == h2.snapshot()

    def test_memory_access_counter(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x0)
        h.access_data(0x0)
        assert h.memory_accesses == 1

    def test_snapshot_restore(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        for i in range(32):
            h.access_data(i * 64)
        snap = h.snapshot()
        h.flush()
        h.restore(snap)
        assert h.access_data(0x0).level == 1

    def test_reset_stats(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x0)
        h.access_inst(0x0)
        h.reset_stats()
        assert h.l1d.stats.accesses == 0
        assert h.l1i.stats.accesses == 0
        assert h.memory_accesses == 0

    def test_stats_summary_keys(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        assert set(h.stats_summary()) == {"L1I", "L1D", "L2"}


class TestQuietAccessAndHotRefs:
    """access_quiet / hot_refs — the batched pipeline's inline primitives."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0x4000), st.booleans()
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_access_quiet_matches_access_state(self, ops):
        """Same transitions and writebacks as access(), counters aside."""
        loud = small_cache(assoc=2, sets=4)
        quiet = small_cache(assoc=2, sets=4)
        for addr, is_write in ops:
            assert loud.access(addr, is_write) == quiet.access_quiet(
                addr, is_write
            )
        assert loud.snapshot() == quiet.snapshot()
        assert loud.stats.writebacks == quiet.stats.writebacks
        assert quiet.stats.accesses == 0 and quiet.stats.hits == 0

    def test_hot_refs_expose_live_storage(self):
        c = small_cache()
        tags, dirty, line_shift, assoc, pow2, set_mask, n_sets = c.hot_refs()
        c.access(0x1000, is_write=True)
        line = 0x1000 >> line_shift
        base = (line & set_mask if pow2 else line % n_sets) * assoc
        assert tags[base] == line
        assert dirty[base] is True

    def test_hot_refs_must_be_refetched_after_flush(self):
        """flush() rebinds the storage lists, invalidating old refs."""
        c = small_cache()
        old_tags = c.hot_refs()[0]
        c.flush()
        assert c.hot_refs()[0] is not old_tags


class TestSilentProbes:
    """Net-silence probes versus the execute-and-compare oracle.

    An iteration is net-silent exactly when really executing its
    accesses leaves the cache byte-identical, so the reference replays
    iterations on a clone and diffs snapshots.  This covers both the
    per-access MRU-rest case and the shared-set case where individual
    accesses rotate the set but the iteration permutes it back.
    """

    SALTS = (0, 1 << 36)

    def _brute_span(self, cache, accesses, k_start, limit, salt):
        """accesses: (addr_of(k), is_write) pairs, program order."""
        clone = Cache(cache.config, name="clone")
        clone.restore(cache.snapshot())
        m = 0
        while m < limit:
            before = clone.snapshot()
            for addr_of, w in accesses:
                clone.access_quiet(addr_of(k_start + m) ^ salt, w)
            if clone.snapshot() != before:
                break
            m += 1
        return m

    @pytest.mark.parametrize("salt", SALTS)
    @pytest.mark.parametrize("is_write", (False, True))
    def test_strided_span_matches_oracle(self, salt, is_write):
        from repro.program import MemPattern, PatternKind

        cache = small_cache(assoc=4, sets=8)
        pat = MemPattern(
            PatternKind.REUSE, base=0x8000, span=1024, stride=48,
            is_write=is_write,
        )
        # Warm an arbitrary prefix of the footprint (real accesses so the
        # MRU/dirty state is whatever access() leaves behind).
        for k in range(11):
            cache.access(pat.address(k) ^ salt, is_write)
        for k_start in range(0, 40, 7):
            got = cache.silent_span_strided(
                pat.base, pat.stride, pat.span, k_start, 64, is_write, salt
            )
            want = self._brute_span(
                cache, [(pat.address, is_write)], k_start, 64, salt
            )
            assert got == want

    @pytest.mark.parametrize("salt", SALTS)
    def test_hashed_span_matches_oracle(self, salt):
        from repro.program import MemPattern, PatternKind

        cache = small_cache(assoc=4, sets=8)
        pat = MemPattern(PatternKind.RANDOM, base=0x8000, span=512, stride=7)
        for k in range(64):
            cache.access(pat.address(k) ^ salt)
        for k_start in range(0, 48, 5):
            got = cache.silent_span_hashed(
                pat.address, k_start, 32, False, salt
            )
            want = self._brute_span(
                cache, [(pat.address, False)], k_start, 32, salt
            )
            assert got == want

    @given(
        st.integers(min_value=8, max_value=96),   # stride 1
        st.integers(min_value=8, max_value=96),   # stride 2
        st.booleans(),                            # write 1
        st.booleans(),                            # write 2
        st.integers(min_value=0, max_value=24),   # warm iterations
        st.integers(min_value=0, max_value=16),   # probe start
    )
    @settings(max_examples=60, deadline=None)
    def test_pair_span_matches_block_span_and_oracle(
        self, s1, s2, w1, w2, warm, k_start
    ):
        """The unrolled two-access walk equals the general walk and the
        oracle for any geometry, including set- and line-sharing pairs."""
        from repro.program import MemPattern, PatternKind

        p1 = MemPattern(
            PatternKind.STREAM, base=0x4000, span=2048, stride=s1, is_write=w1
        )
        p2 = MemPattern(
            PatternKind.REUSE, base=0x4400, span=512, stride=s2, is_write=w2
        )
        progs = (
            (p1.base, p1.stride, p1.span, p1.is_write),
            (p2.base, p2.stride, p2.span, p2.is_write),
        )
        salt = 1 << 36
        cache = small_cache(assoc=4, sets=8)
        for k in range(warm):
            cache.access(p1.address(k) ^ salt, w1)
            cache.access(p2.address(k) ^ salt, w2)
        snap = cache.snapshot()
        got_pair = cache.silent_block_pair_span(
            progs[0], progs[1], k_start, 40, salt
        )
        got_block = cache.silent_block_span(progs, k_start, 40, salt)
        want = self._brute_span(
            cache, [(p1.address, w1), (p2.address, w2)], k_start, 40, salt
        )
        assert got_pair == got_block == want
        assert cache.snapshot() == snap  # probes are side-effect free

"""Tests for the cache model and the two-level hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CacheConfig, DEFAULT_MACHINE
from repro.errors import SnapshotError
from repro.memory import Cache, CacheHierarchy


def small_cache(assoc: int = 2, sets: int = 4) -> Cache:
    return Cache(CacheConfig(assoc * sets * 64, assoc), name="t")


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True

    def test_same_line_different_offset_hits(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x103F) is True  # same 64B line

    def test_adjacent_line_misses(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1040) is False

    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, sets=1)  # fully specified single set
        a, b, d = 0x0, 0x40, 0x80
        c.access(a)
        c.access(b)
        c.access(a)      # a is MRU, b is LRU
        c.access(d)      # evicts b
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)

    def test_hit_refreshes_lru(self):
        c = small_cache(assoc=2, sets=1)
        a, b, d = 0x0, 0x40, 0x80
        c.access(a)
        c.access(b)      # order: b, a
        c.access(a)      # order: a, b
        c.access(d)      # evicts b, not a
        assert c.contains(a) and not c.contains(b)

    def test_writeback_counted_on_dirty_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x0, is_write=True)
        assert c.stats.writebacks == 0
        c.access(0x40)   # evicts dirty line
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x0)
        c.access(0x40)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x0)                 # clean fill
        c.access(0x0, is_write=True)  # dirty it
        c.access(0x40)
        assert c.stats.writebacks == 1

    def test_stats_accounting(self):
        c = small_cache()
        c.access(0x0)
        c.access(0x0)
        c.access(0x40)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_flush_invalidates(self):
        c = small_cache()
        c.access(0x0)
        c.flush()
        assert not c.contains(0x0)
        assert c.resident_lines() == 0

    def test_contains_is_side_effect_free(self):
        c = small_cache()
        c.access(0x0)
        before = c.stats.accesses
        c.contains(0x0)
        assert c.stats.accesses == before

    def test_snapshot_restore_roundtrip(self):
        c = small_cache()
        for addr in (0x0, 0x40, 0x80, 0x1000):
            c.access(addr, is_write=addr == 0x40)
        snap = c.snapshot()
        c.access(0x2000)
        c.access(0x2040)
        c.restore(snap)
        assert c.contains(0x0)
        # The restored state must behave identically going forward.
        assert c.access(0x40) is True

    def test_restore_rejects_wrong_geometry(self):
        c1 = small_cache(assoc=2, sets=4)
        c2 = small_cache(assoc=4, sets=4)
        with pytest.raises(SnapshotError):
            c2.restore(c1.snapshot())

    def test_capacity_bounded(self):
        c = small_cache(assoc=2, sets=4)
        for i in range(100):
            c.access(i * 64)
        assert c.resident_lines() <= 8


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_resident_never_exceeds_capacity(self, addrs):
        c = small_cache(assoc=2, sets=4)
        for addr in addrs:
            c.access(addr)
        assert c.resident_lines() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        c = small_cache()
        for addr in addrs:
            c.access(addr)
            assert c.access(addr) is True

    @given(st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_snapshot_restore_equivalence(self, addrs):
        """Replaying the same accesses after restore gives identical hits."""
        c = small_cache()
        for addr in addrs[: len(addrs) // 2]:
            c.access(addr)
        snap = c.snapshot()
        tail = addrs[len(addrs) // 2 :]
        first = [c.access(a) for a in tail]
        c.restore(snap)
        second = [c.access(a) for a in tail]
        assert first == second

    @given(st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_is_accesses(self, addrs):
        c = small_cache()
        for addr in addrs:
            c.access(addr)
        assert c.stats.hits + c.stats.misses == c.stats.accesses == len(addrs)


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x1000)
        res = h.access_data(0x1000)
        assert res.level == 1
        assert res.latency == DEFAULT_MACHINE.l1d.hit_latency

    def test_miss_goes_to_memory_first_time(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        res = h.access_data(0x1000)
        assert res.level == 3
        assert res.latency == (
            DEFAULT_MACHINE.l1d.hit_latency
            + DEFAULT_MACHINE.l2.hit_latency
            + DEFAULT_MACHINE.memory_latency
        )

    def test_l2_hit_after_l1_eviction(self):
        machine = DEFAULT_MACHINE.scaled_cache(1, 1024)  # tiny 1 KB L1
        h = CacheHierarchy(machine)
        h.access_data(0x0)
        # Blow the 16-line L1 with conflicting lines; L2 keeps everything.
        for i in range(1, 64):
            h.access_data(i * 1024)
        res = h.access_data(0x0)
        assert res.level == 2

    def test_split_l1_sides_are_independent(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x1000)
        res = h.access_inst(0x1000)
        # Same address on the I-side does not hit the D-side L1 (it does
        # hit the unified L2).
        assert res.level == 2

    def test_warm_matches_access_state(self):
        h1 = CacheHierarchy(DEFAULT_MACHINE)
        h2 = CacheHierarchy(DEFAULT_MACHINE)
        addrs = [0x0, 0x40, 0x1000, 0x0, 0x40400, 0x1000]
        for a in addrs:
            h1.access_data(a)
            h2.warm_data(a)
        assert h1.snapshot() == h2.snapshot()

    def test_memory_access_counter(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x0)
        h.access_data(0x0)
        assert h.memory_accesses == 1

    def test_snapshot_restore(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        for i in range(32):
            h.access_data(i * 64)
        snap = h.snapshot()
        h.flush()
        h.restore(snap)
        assert h.access_data(0x0).level == 1

    def test_reset_stats(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        h.access_data(0x0)
        h.access_inst(0x0)
        h.reset_stats()
        assert h.l1d.stats.accesses == 0
        assert h.l1i.stats.accesses == 0
        assert h.memory_accesses == 0

    def test_stats_summary_keys(self):
        h = CacheHierarchy(DEFAULT_MACHINE)
        assert set(h.stats_summary()) == {"L1I", "L1D", "L2"}

"""Tests for the in-order pipeline's timing semantics.

Each test constructs a tiny hand-built block and checks the cycle count
against the architectural rule being exercised: issue width, dependence
stalls, functional-unit limits, cache-miss latency, MSHR back-pressure,
and branch-mispredict penalties.
"""

import pytest

from repro import DEFAULT_MACHINE, MachineConfig
from repro.branch import BimodalPredictor
from repro.cpu.pipeline import InOrderPipeline
from repro.isa import Instruction, Op
from repro.memory import CacheHierarchy
from repro.program import MemPattern, PatternKind
from repro.program.block import BasicBlock
from repro.program.stream import BlockEvent


def make_pipeline(machine: MachineConfig = DEFAULT_MACHINE):
    hierarchy = CacheHierarchy(machine)
    predictor = BimodalPredictor(machine.branch_history_bits)
    return InOrderPipeline(machine, hierarchy, predictor)


def run_block(pipeline, instructions, mem_patterns=(), taken=True, k=0, bid=0):
    block = BasicBlock(bid, 0x1000, instructions, mem_patterns)
    start = pipeline.cycle
    pipeline.execute_event(BlockEvent(block, taken, k))
    return pipeline.cycle - start


def independent_alus(n):
    """n IALU ops with no mutual dependences (distinct dst, zero sources)."""
    return [Instruction(Op.IALU, dst=1 + i % 30, src1=0, src2=0) for i in range(n)]


class TestIssueWidth:
    def test_four_wide_issue(self):
        """16 independent single-cycle ops + branch need ~4 cycles."""
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)  # pre-warm the I-line
        pipe.hierarchy.warm_inst(0x1040)
        insts = independent_alus(15) + [Instruction(Op.BRANCH, src1=0)]
        cycles = run_block(pipe, insts)
        assert cycles <= 5

    def test_width_one_machine_serialises(self):
        machine = MachineConfig(issue_width=1)
        pipe = make_pipeline(machine)
        pipe.hierarchy.warm_inst(0x1000)
        pipe.hierarchy.warm_inst(0x1040)
        insts = independent_alus(15) + [Instruction(Op.BRANCH, src1=0)]
        cycles = run_block(pipe, insts)
        assert cycles >= 15


class TestDependences:
    def test_chain_serialises(self):
        """A dependence chain of IALU ops runs at one per cycle."""
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)
        pipe.hierarchy.warm_inst(0x1040)
        insts = [Instruction(Op.IALU, dst=1, src1=0)] + [
            Instruction(Op.IALU, dst=1, src1=1) for _ in range(14)
        ] + [Instruction(Op.BRANCH, src1=1)]
        cycles = run_block(pipe, insts)
        assert cycles >= 14

    def test_long_latency_dependence(self):
        """A consumer of an FDIV waits its full latency."""
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)
        insts = [
            Instruction(Op.FDIV, dst=40, src1=0, src2=0),
            Instruction(Op.FALU, dst=41, src1=40),
            Instruction(Op.BRANCH, src1=0),
        ]
        cycles = run_block(pipe, insts)
        assert cycles >= Op.FDIV and cycles >= 16

    def test_zero_register_creates_no_dependence(self):
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)
        insts = [
            Instruction(Op.FDIV, dst=40, src1=0, src2=0),
            Instruction(Op.IALU, dst=1, src1=0, src2=0),  # reads r0, not f40
            Instruction(Op.BRANCH, src1=0),
        ]
        cycles = run_block(pipe, insts)
        assert cycles <= 3


class TestFunctionalUnits:
    def test_divide_unit_unpipelined(self):
        """Back-to-back independent IDIVs still serialise on the unit."""
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)
        insts = [
            Instruction(Op.IDIV, dst=1, src1=0, src2=0),
            Instruction(Op.IDIV, dst=2, src1=0, src2=0),
            Instruction(Op.IDIV, dst=3, src1=0, src2=0),
            Instruction(Op.BRANCH, src1=0),
        ]
        # The third divide cannot *issue* before the first two have each
        # occupied the unpipelined unit for their full latency.
        cycles = run_block(pipe, insts)
        assert cycles >= 2 * 12

    def test_fp_pool_limit(self):
        """More than 2 independent FALU per cycle is impossible."""
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)
        pipe.hierarchy.warm_inst(0x1040)
        insts = [
            Instruction(Op.FALU, dst=32 + i, src1=0, src2=0) for i in range(8)
        ] + [Instruction(Op.BRANCH, src1=0)]
        # 8 FALU at 2 per cycle: the last one issues 3 cycles after the
        # first (issue pattern 2-2-2-2).
        cycles = run_block(pipe, insts)
        assert cycles >= 3

    def test_mem_port_limit(self):
        """At most 2 memory ops issue per cycle."""
        machine = DEFAULT_MACHINE
        pipe = make_pipeline(machine)
        pipe.hierarchy.warm_inst(0x1000)
        pats = [
            MemPattern(PatternKind.REUSE, base=0x100000 * (i + 1), span=64, stride=8)
            for i in range(6)
        ]
        for pat in pats:  # pre-warm so latency is uniform
            pipe.hierarchy.warm_data(pat.address(0))
        insts = [
            Instruction(Op.LOAD, dst=1 + i, src1=0, mem_index=i) for i in range(6)
        ] + [Instruction(Op.BRANCH, src1=0)]
        cycles = run_block(pipe, insts, mem_patterns=pats)
        assert cycles >= 3


class TestMemoryTiming:
    def test_l1_hit_fast_l2_miss_slow(self):
        machine = DEFAULT_MACHINE
        pat = MemPattern(PatternKind.REUSE, base=0x200000, span=64, stride=8)
        insts = [
            Instruction(Op.LOAD, dst=1, src1=0, mem_index=0),
            Instruction(Op.IALU, dst=2, src1=1),
            Instruction(Op.BRANCH, src1=2),
        ]
        cold = make_pipeline(machine)
        cold.hierarchy.warm_inst(0x1000)
        cold_cycles = run_block(cold, insts, mem_patterns=[pat])

        warm = make_pipeline(machine)
        warm.hierarchy.warm_inst(0x1000)
        warm.hierarchy.warm_data(pat.address(0))
        warm_cycles = run_block(warm, insts, mem_patterns=[pat])

        assert cold_cycles - warm_cycles >= machine.memory_latency - 5

    def test_mshr_backpressure(self):
        """With 1 MSHR, independent misses serialise; with 8 they overlap."""
        def build(n_mshrs):
            machine = MachineConfig(n_mshrs=n_mshrs)
            pipe = make_pipeline(machine)
            pipe.hierarchy.warm_inst(0x1000)
            pats = [
                MemPattern(PatternKind.REUSE, base=(1 + i) << 24, span=64)
                for i in range(4)
            ]
            insts = [
                Instruction(Op.LOAD, dst=1 + i, src1=0, mem_index=i)
                for i in range(4)
            ] + [Instruction(Op.BRANCH, src1=0)]
            return run_block(pipe, insts, mem_patterns=pats)

        serial = build(1)
        parallel = build(8)
        assert serial > parallel + 2 * DEFAULT_MACHINE.memory_latency

    def test_store_does_not_block_consumers(self):
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)
        pat = MemPattern(
            PatternKind.REUSE, base=0x300000, span=64, stride=8, is_write=True
        )
        insts = [
            Instruction(Op.STORE, src1=0, src2=0, mem_index=0),
            Instruction(Op.IALU, dst=1, src1=0),
            Instruction(Op.BRANCH, src1=1),
        ]
        cycles = run_block(pipe, insts, mem_patterns=[pat])
        assert cycles < DEFAULT_MACHINE.memory_latency


class TestBranchTiming:
    def test_mispredict_costs_penalty(self):
        machine = DEFAULT_MACHINE
        insts = [Instruction(Op.BRANCH, src1=0)]

        pipe = make_pipeline(machine)
        pipe.hierarchy.warm_inst(0x1000)
        # Train the predictor taken, then surprise it.
        block = BasicBlock(0, 0x1000, insts)
        for _ in range(8):
            pipe.execute_event(BlockEvent(block, True, 0))
        before = pipe.cycle
        pipe.execute_event(BlockEvent(block, False, 0))  # mispredict
        follow = independent_alus(3) + [Instruction(Op.BRANCH, src1=0)]
        block2 = BasicBlock(1, 0x1100, follow)
        pipe.hierarchy.warm_inst(0x1100)
        pipe.execute_event(BlockEvent(block2, True, 0))
        assert pipe.cycle - before >= machine.mispredict_penalty

    def test_icache_miss_stalls_fetch(self):
        pipe_cold = make_pipeline()
        insts = independent_alus(3) + [Instruction(Op.BRANCH, src1=0)]
        cold = run_block(pipe_cold, insts)

        pipe_warm = make_pipeline()
        pipe_warm.hierarchy.warm_inst(0x1000)
        warm = run_block(pipe_warm, insts)
        assert cold > warm


class TestWindowAccounting:
    def test_run_window_counts_ops(self):
        pipe = make_pipeline()
        insts = independent_alus(7) + [Instruction(Op.BRANCH, src1=0)]
        block = BasicBlock(0, 0x1000, insts)
        events = [BlockEvent(block, True, i) for i in range(10)]
        result = pipe.run_window(events)
        assert result.ops == 80
        assert result.cycles >= 20
        assert result.ipc == pytest.approx(80 / result.cycles)

    def test_reset_timing(self):
        pipe = make_pipeline()
        insts = independent_alus(3) + [Instruction(Op.BRANCH, src1=0)]
        run_block(pipe, insts)
        pipe.reset_timing()
        assert pipe.cycle == 0

    def test_cycles_monotonic_across_events(self):
        pipe = make_pipeline()
        insts = independent_alus(3) + [Instruction(Op.BRANCH, src1=0)]
        block = BasicBlock(0, 0x1000, insts)
        last = 0
        for i in range(20):
            pipe.execute_event(BlockEvent(block, True, i))
            assert pipe.cycle >= last
            last = pipe.cycle


class TestCrossBlockOccupancy:
    def test_mshr_file_saturation_stalls_until_drain(self):
        """A full MSHR file blocks further misses until an entry drains,
        and the lazily-drained heap never holds more live entries than
        the file has registers."""
        machine = MachineConfig(n_mshrs=2)
        pipe = make_pipeline(machine)
        pipe.hierarchy.warm_inst(0x1000)
        pipe.hierarchy.warm_inst(0x1040)
        pats = [
            MemPattern(PatternKind.REUSE, base=(1 + i) << 24, span=64)
            for i in range(8)
        ]
        insts = [
            Instruction(Op.LOAD, dst=1 + i, src1=0, mem_index=i)
            for i in range(8)
        ] + [Instruction(Op.BRANCH, src1=0)]
        cycles = run_block(pipe, insts, mem_patterns=pats)
        # 8 independent misses through 2 registers: issue must wait for
        # at least three full drains beyond the overlapped pair.
        assert cycles >= 3 * machine.memory_latency
        assert len(pipe._mshrs) <= machine.n_mshrs

    def test_divide_occupancy_spans_block_boundaries(self):
        """An IDIV's unpipelined occupancy carries into the next block:
        the unit's next-free cycle is scoreboard state, not block state."""
        pipe = make_pipeline()
        pipe.hierarchy.warm_inst(0x1000)
        insts = [
            Instruction(Op.IDIV, dst=1, src1=0, src2=0),
            Instruction(Op.BRANCH, src1=0),
        ]
        first = run_block(pipe, insts, bid=0)
        # The branch does not wait on the divide, so the first block ends
        # long before the unit frees up...
        assert first < 10
        # ...and each following block's divide stalls on the busy unit.
        second = run_block(pipe, insts, bid=1)
        third = run_block(pipe, insts, bid=2)
        assert second >= 10
        assert third >= 10

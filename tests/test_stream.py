"""Tests for the program stream: determinism, control flow, snapshots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ProgramStream, StreamExhausted, get_workload, Scale
from conftest import make_two_phase_program


class TestStreamBasics:
    def test_emits_until_script_done(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        events = list(stream)
        assert stream.exhausted
        total = sum(e.block.n_ops for e in events)
        assert total == stream.ops_emitted
        # Segments overshoot by at most one block each.
        assert two_phase_program.total_ops <= total
        assert total <= two_phase_program.total_ops + 4 * 24

    def test_deterministic_replay(self, two_phase_program):
        s1 = ProgramStream(two_phase_program)
        s2 = ProgramStream(two_phase_program)
        e1 = [(e.block.bid, e.taken, e.k) for e in s1]
        e2 = [(e.block.bid, e.taken, e.k) for e in s2]
        assert e1 == e2

    def test_execution_counts_increment(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        seen = {}
        for event in stream:
            expected = seen.get(event.block.bid, 0)
            assert event.k == expected
            seen[event.block.bid] = expected + 1

    def test_loop_branch_pattern(self, two_phase_program):
        """Within one entry visit the terminator is taken until the final
        iteration."""
        stream = ProgramStream(two_phase_program)
        events = [stream.next_event() for _ in range(120)]
        # First behaviour: 'fast' with ~50-iteration visits: expect a run
        # of takens then one not-taken at each visit boundary.
        takens = [e.taken for e in events]
        assert takens[0] is True
        assert False in takens  # an exit occurs within ~50 iterations
        first_exit = takens.index(False)
        assert 40 <= first_exit <= 60
        assert all(takens[:first_exit])

    def test_next_event_none_after_end(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        for _ in stream:
            pass
        assert stream.next_event() is None

    def test_current_behavior_name(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        assert stream.current_behavior_name == "fast"

    def test_take_ops(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        events = stream.take_ops(1000)
        got = sum(e.block.n_ops for e in events)
        assert got >= 1000
        assert got <= 1000 + 24

    def test_take_ops_raises_on_exhaustion(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        with pytest.raises(StreamExhausted):
            stream.take_ops(10_000_000)

    def test_take_ops_exhaustion_attaches_partial_batch(self, two_phase_program):
        """The events consumed before exhaustion are not silently lost:
        they ride along on the exception as ``partial``."""
        stream = ProgramStream(two_phase_program)
        with pytest.raises(StreamExhausted) as excinfo:
            stream.take_ops(10_000_000)
        partial = excinfo.value.partial
        assert partial, "the whole program should have been consumed"
        assert sum(e.block.n_ops for e in partial) == stream.ops_emitted
        # The partial batch is the full scalar event sequence.
        replay = list(ProgramStream(two_phase_program))
        assert list(partial) == replay

    def test_take_ops_zero(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        assert stream.take_ops(0) == []


class TestStreamBatched:
    def test_next_events_totals_and_counters(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        runs = stream.next_events(10_000)
        total = sum(r.ops for r in runs)
        assert total == stream.ops_emitted
        assert 10_000 <= total <= 10_000 + 24
        # Execution counters advanced arithmetically: k ranges abut.
        seen = {}
        for run in runs:
            assert run.k_start == seen.get(run.block.bid, 0)
            seen[run.block.bid] = run.k_start + run.n

    def test_loop_run_branch_pattern(self, two_phase_program):
        """A full entry visit is taken on every iteration except the last."""
        stream = ProgramStream(two_phase_program)
        run = stream.next_events(10_000)[0]
        assert run.ends_entry
        takens = [run.taken_at(i) for i in range(run.n)]
        assert takens == [True] * (run.n - 1) + [False]
        assert run.last_taken == run.n - 2

    def test_truncated_run_is_all_taken(self, two_phase_program):
        """A batch boundary mid-entry leaves the loop branch taken."""
        stream = ProgramStream(two_phase_program)
        first = stream.next_events(10_000)[0]
        fresh = ProgramStream(two_phase_program)
        cut = fresh.next_events((first.n - 1) * first.block.n_ops - 1)[0]
        assert not cut.ends_entry
        assert cut.n < first.n
        assert all(cut.taken_at(i) for i in range(cut.n))
        assert cut.last_taken == cut.n - 1

    def test_random_branch_runs_carry_draws(self):
        program = get_workload("197.parser", Scale.QUICK)
        stream = ProgramStream(program)
        runs = stream.next_events(50_000)
        random_runs = [r for r in runs if r.block.random_taken_prob is not None]
        assert random_runs, "parser should contain random branches"
        assert all(r.takens is not None and len(r.takens) == r.n for r in random_runs)
        loop_runs = [r for r in runs if r.block.random_taken_prob is None]
        assert all(r.takens is None for r in loop_runs)

    def test_nonpositive_budget_returns_empty(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        assert stream.next_events(0) == []
        assert stream.next_events(-5) == []
        assert stream.ops_emitted == 0

    def test_snapshot_restore_crosses_paths(self, two_phase_program):
        """A snapshot taken after batched advance resumes scalar, and
        vice versa — checkpoints are path-agnostic."""
        batched = ProgramStream(two_phase_program)
        batched.next_events(20_000)
        snap = batched.snapshot()
        scalar = ProgramStream(two_phase_program)
        scalar.restore(snap)
        tail_scalar = [(e.block.bid, e.taken, e.k) for e in scalar]
        resumed = ProgramStream(two_phase_program)
        resumed.restore(snap)
        tail_batched = [
            (e.block.bid, e.taken, e.k)
            for run in resumed.next_events(10**9)
            for e in run.events()
        ]
        assert tail_scalar == tail_batched


class TestStreamSnapshot:
    def test_snapshot_restore_resumes_identically(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        stream.take_ops(20_000)
        snap = stream.snapshot()
        tail1 = [(e.block.bid, e.taken, e.k) for e in stream]
        stream2 = ProgramStream(two_phase_program)
        stream2.restore(snap)
        tail2 = [(e.block.bid, e.taken, e.k) for e in stream2]
        assert tail1 == tail2

    @given(st.integers(min_value=1, max_value=120_000))
    @settings(max_examples=20, deadline=None)
    def test_snapshot_anywhere(self, cut):
        program = make_two_phase_program()
        stream = ProgramStream(program)
        try:
            stream.take_ops(cut)
        except StreamExhausted:
            return
        snap = stream.snapshot()
        tail1 = [(e.block.bid, e.taken) for e in stream]
        fresh = ProgramStream(program)
        fresh.restore(snap)
        tail2 = [(e.block.bid, e.taken) for e in fresh]
        assert tail1 == tail2

    def test_restore_rejects_wrong_program(self, two_phase_program, quick_gzip):
        s1 = ProgramStream(two_phase_program)
        s2 = ProgramStream(quick_gzip)
        with pytest.raises(Exception):
            s2.restore(s1.snapshot())

    def test_clone_fresh_starts_over(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        stream.take_ops(5000)
        clone = stream.clone_fresh()
        assert clone.ops_emitted == 0
        assert not clone.exhausted


class TestStreamOnWorkloads:
    def test_workload_stream_matches_nominal_length(self, quick_gzip):
        stream = ProgramStream(quick_gzip)
        for _ in stream:
            pass
        nominal = quick_gzip.total_ops
        assert nominal <= stream.ops_emitted <= nominal * 1.15

    def test_random_branch_blocks_vary(self):
        program = get_workload("197.parser", Scale.QUICK)
        stream = ProgramStream(program)
        outcomes_by_block = {}
        for event in stream:
            if event.block.random_taken_prob is not None:
                outcomes_by_block.setdefault(event.block.bid, set()).add(event.taken)
        assert outcomes_by_block, "parser should contain random branches"
        assert any(len(v) == 2 for v in outcomes_by_block.values())

"""Tests for hierarchical and variable-length phase analysis."""

import math

import numpy as np
import pytest

from repro import Scale, get_workload
from repro.errors import SamplingError
from repro.phase import hierarchical_phases, variable_length_intervals
from repro.sampling import collect_reference_trace

from conftest import make_two_phase_program


def unit(index: int, dim: int = 16) -> np.ndarray:
    vec = np.zeros(dim)
    vec[index] = 1.0
    return vec


def alternating_series(run_len=8, n_runs=6):
    """A B A B ... with run_len windows each."""
    bbvs = []
    for r in range(n_runs):
        bbvs.extend([unit(r % 2)] * run_len)
    ops = [100] * len(bbvs)
    return bbvs, ops


class TestVariableIntervals:
    def test_segments_at_behaviour_changes(self):
        bbvs, ops = alternating_series()
        intervals = variable_length_intervals(bbvs, ops, 0.05 * math.pi)
        assert len(intervals) == 6
        assert all(iv.n_windows == 8 for iv in intervals)

    def test_recurring_behaviour_same_phase_id(self):
        bbvs, ops = alternating_series()
        intervals = variable_length_intervals(bbvs, ops, 0.05 * math.pi)
        a_ids = {iv.phase_id for iv in intervals[0::2]}
        b_ids = {iv.phase_id for iv in intervals[1::2]}
        assert len(a_ids) == 1 and len(b_ids) == 1
        assert a_ids != b_ids

    def test_intervals_cover_everything(self):
        bbvs, ops = alternating_series()
        intervals = variable_length_intervals(bbvs, ops, 0.05 * math.pi)
        assert sum(iv.ops for iv in intervals) == sum(ops)
        assert intervals[0].start_window == 0
        assert intervals[-1].end_window == len(bbvs)
        for prev, cur in zip(intervals, intervals[1:]):
            assert prev.end_window == cur.start_window

    def test_loose_threshold_one_interval(self):
        bbvs, ops = alternating_series()
        intervals = variable_length_intervals(bbvs, ops, math.pi)
        assert len(intervals) == 1

    def test_fewer_intervals_than_fixed_at_same_threshold(self):
        """The point of variable-length intervals: a stable phase needs
        one interval regardless of its length."""
        bbvs, ops = alternating_series(run_len=20, n_runs=4)
        intervals = variable_length_intervals(bbvs, ops, 0.05 * math.pi)
        assert len(intervals) == 4  # 80 fixed windows -> 4 intervals

    def test_validation(self):
        with pytest.raises(SamplingError):
            variable_length_intervals([], [], 0.1)
        with pytest.raises(SamplingError):
            variable_length_intervals([unit(0)], [1, 2], 0.1)


class TestHierarchy:
    def test_phase_count_falls_with_factor(self):
        # Fine alternation nested inside a coarse alternation.
        bbvs = []
        for coarse in range(4):
            for i in range(16):
                base = 2 * (coarse % 2)
                bbvs.append(unit(base + i % 2))
        ops = [100] * len(bbvs)
        levels = hierarchical_phases(bbvs, ops, factors=(1, 4, 16))
        assert levels[1].n_phases >= levels[16].n_phases
        assert levels[16].n_phases == 2  # the two coarse behaviours

    def test_coherent_hierarchy_scores_high(self):
        bbvs, ops = alternating_series(run_len=16, n_runs=4)
        levels = hierarchical_phases(bbvs, ops, factors=(1, 8))
        # Runs are multiples of the factor: coarse periods are pure.
        assert levels[8].coherence == pytest.approx(1.0)

    def test_straddling_boundaries_lower_coherence(self):
        bbvs, ops = alternating_series(run_len=6, n_runs=8)  # 6 % 4 != 0
        levels = hierarchical_phases(bbvs, ops, factors=(1, 4))
        assert levels[4].coherence < 1.0

    def test_finest_level_coherence_is_one(self):
        bbvs, ops = alternating_series()
        levels = hierarchical_phases(bbvs, ops, factors=(1, 2))
        assert levels[1].coherence == 1.0

    def test_validation(self):
        bbvs, ops = alternating_series()
        with pytest.raises(SamplingError):
            hierarchical_phases(bbvs, ops, factors=(2, 4))
        with pytest.raises(SamplingError):
            hierarchical_phases(bbvs, ops, factors=())
        with pytest.raises(SamplingError):
            hierarchical_phases([], [], factors=(1,))


class TestOnWorkloads:
    def test_art_micro_phases_visible_at_fine_level(self):
        """179.art: the hierarchy explains the Fig.-11 pathology — many
        fine-level transitions melt into few coarse phases."""
        program = get_workload("179.art", Scale.QUICK)
        trace = collect_reference_trace(program, Scale.QUICK.trace_window)
        bbvs = list(trace.normalized_bbvs())
        ops = trace.ops.tolist()
        levels = hierarchical_phases(bbvs, ops, factors=(1, 8))
        assert levels[1].n_phases >= levels[8].n_phases

    def test_two_phase_program_variable_intervals(self):
        program = make_two_phase_program()
        trace = collect_reference_trace(program, 2_000)
        intervals = variable_length_intervals(
            list(trace.normalized_bbvs()), trace.ops.tolist(), 0.05 * math.pi
        )
        # Two behaviours, four segments: a handful of long intervals, far
        # fewer than the window count.
        assert len(intervals) < trace.n_windows / 4
        phase_ids = {iv.phase_id for iv in intervals}
        assert len(phase_ids) >= 2

"""Tests for the statistics module: CIs, estimators, error metrics,
distribution diagnostics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SamplingError
from repro.stats import (
    arithmetic_mean,
    bimodality_coefficient,
    error_table,
    geometric_mean,
    histogram,
    modality_peaks,
    normal_ci,
    percent_error,
    required_samples,
    stratified_ipc,
    stratified_ratio_ipc,
    student_t_ci,
    summarize,
    t_value,
    z_value,
)

# Reference critical values (two-sided) from standard tables.
Z_REFERENCE = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.997: 2.9677}
T_REFERENCE = {  # (confidence, dof) -> t
    (0.95, 5): 2.5706,
    (0.95, 10): 2.2281,
    (0.99, 5): 4.0321,
    (0.997, 2): 18.2163,  # ~3-sigma confidence with 2 dof (scipy t.ppf)
}


class TestCriticalValues:
    @pytest.mark.parametrize("conf,expected", sorted(Z_REFERENCE.items()))
    def test_z_values_match_tables(self, conf, expected):
        assert z_value(conf) == pytest.approx(expected, abs=2e-3)

    @pytest.mark.parametrize("key,expected", sorted(T_REFERENCE.items()))
    def test_t_values_match_tables(self, key, expected):
        conf, dof = key
        assert t_value(conf, dof) == pytest.approx(expected, rel=2e-3)

    def test_t_approaches_z_for_large_dof(self):
        assert t_value(0.95, 500) == pytest.approx(z_value(0.95), rel=1e-3)

    def test_t_exceeds_z_for_small_dof(self):
        assert t_value(0.95, 3) > z_value(0.95)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            z_value(1.0)
        with pytest.raises(ConfigurationError):
            z_value(0.0)
        with pytest.raises(ConfigurationError):
            t_value(0.95, 0)

    @given(st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=50, deadline=None)
    def test_z_monotonic_in_confidence(self, conf):
        assert z_value(conf + 0.0005) >= z_value(conf)


class TestConfidenceIntervals:
    def test_normal_ci_known_case(self):
        samples = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95]
        ci = normal_ci(samples, 0.95)
        arr = np.array(samples)
        expected = 1.96 * arr.std(ddof=1) / math.sqrt(len(samples))
        assert ci.mean == pytest.approx(arr.mean())
        assert ci.half_width == pytest.approx(expected, rel=1e-3)

    def test_single_sample_infinite_width(self):
        assert math.isinf(normal_ci([1.0]).half_width)
        assert math.isinf(student_t_ci([1.0]).half_width)

    def test_empty_samples(self):
        ci = normal_ci([])
        assert ci.n == 0
        assert math.isinf(ci.half_width)

    def test_t_wider_than_normal_small_n(self):
        samples = [1.0, 1.2, 0.8, 1.1]
        assert student_t_ci(samples, 0.99).half_width > normal_ci(
            samples, 0.99
        ).half_width

    def test_within_relative(self):
        ci = normal_ci([1.0, 1.001, 0.999, 1.0, 1.0005, 0.9995], 0.95)
        assert ci.within_relative(0.01)
        assert not ci.within_relative(1e-6)

    def test_bounds(self):
        ci = normal_ci([1.0, 2.0, 3.0], 0.95)
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)

    def test_zero_mean_relative_is_inf(self):
        ci = normal_ci([-1.0, 1.0], 0.95)
        assert math.isinf(ci.relative_half_width)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=4, max_size=100
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ci_contains_mean(self, samples):
        ci = normal_ci(samples, 0.95)
        assert ci.low <= ci.mean <= ci.high

    def test_coverage_simulation(self):
        """~95% of CIs over Gaussian samples must contain the true mean."""
        rng = np.random.default_rng(1)
        hits = 0
        trials = 300
        for _ in range(trials):
            samples = rng.normal(5.0, 1.0, size=30)
            ci = normal_ci(samples, 0.95)
            if ci.low <= 5.0 <= ci.high:
                hits += 1
        assert 0.90 <= hits / trials <= 0.99

    def test_required_samples(self):
        # cv=0.3, 3% at ~3 sigma: (2.9677 * 0.3 / 0.03)^2 ~ 881.
        n = required_samples(0.3, 0.997, 0.03)
        assert 850 <= n <= 920

    def test_required_samples_validation(self):
        with pytest.raises(ConfigurationError):
            required_samples(-1.0)
        with pytest.raises(ConfigurationError):
            required_samples(0.5, rel_error=0)


class TestSummaries:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.cv == pytest.approx(0.5)

    def test_summarize_empty(self):
        s = summarize([])
        assert s.n == 0 and s.mean == 0.0

    def test_cv_zero_mean(self):
        assert math.isinf(summarize([-1.0, 1.0]).cv)


class TestStratifiedEstimators:
    def test_weighted_mean(self):
        est = stratified_ipc({"a": 750, "b": 250}, {"a": [2.0], "b": [1.0]})
        assert est.ipc == pytest.approx(0.75 * 2.0 + 0.25 * 1.0)
        assert est.uncovered_weight == 0.0

    def test_uncovered_stratum_uses_covered_mean(self):
        est = stratified_ipc({"a": 500, "b": 500}, {"a": [2.0], "b": []})
        assert est.ipc == pytest.approx(2.0)
        assert est.uncovered_weight == pytest.approx(0.5)

    def test_no_samples_anywhere_raises(self):
        with pytest.raises(SamplingError):
            stratified_ipc({"a": 100}, {"a": []})

    def test_zero_total_ops_raises(self):
        with pytest.raises(SamplingError):
            stratified_ipc({}, {})

    def test_ratio_estimator_unbiased_for_mixed_samples(self):
        """The arithmetic-IPC estimator overestimates when samples span
        fast and slow micro-behaviour; the ratio estimator does not."""
        # One stratum: half its samples at IPC 2 (1000 ops/500 cyc), half
        # at IPC 0.1 (1000 ops/10000 cyc).  True IPC = 2000/10500 ~ 0.19.
        samples = [(1000, 500), (1000, 10_000)]
        est = stratified_ratio_ipc({"a": 10_000}, {"a": samples})
        assert est.ipc == pytest.approx(2000 / 10_500, rel=1e-6)
        naive = stratified_ipc({"a": 10_000}, {"a": [2.0, 0.1]})
        assert naive.ipc > 2 * est.ipc  # the bias the paper's art/mcf hit

    def test_ratio_multi_strata(self):
        est = stratified_ratio_ipc(
            {"a": 500, "b": 500},
            {"a": [(100, 50)], "b": [(100, 400)]},
        )
        # CPI: a=0.5, b=4.0 -> mean CPI 2.25 -> IPC 1/2.25.
        assert est.ipc == pytest.approx(1 / 2.25)

    def test_ratio_uncovered_uses_pooled_cpi(self):
        est = stratified_ratio_ipc(
            {"a": 500, "b": 500}, {"a": [(100, 200)], "b": []}
        )
        assert est.ipc == pytest.approx(0.5)
        assert est.uncovered_weight == pytest.approx(0.5)

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=1, max_value=10_000),
            min_size=1,
        ),
        st.floats(min_value=0.05, max_value=4.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_uniform_performance_recovers_exactly(self, ops, ipc):
        """If every stratum truly runs at the same IPC, both estimators
        return that IPC regardless of weights."""
        samples = {k: [ipc] for k in ops}
        ratio_samples = {k: [(1000, 1000 / ipc)] for k in ops}
        assert stratified_ipc(ops, samples).ipc == pytest.approx(ipc)
        assert stratified_ratio_ipc(ops, ratio_samples).ipc == pytest.approx(ipc)


class TestErrorMetrics:
    def test_percent_error(self):
        assert percent_error(1.1, 1.0) == pytest.approx(10.0)
        assert percent_error(0.9, 1.0) == pytest.approx(10.0)

    def test_percent_error_zero_truth(self):
        with pytest.raises(SamplingError):
            percent_error(1.0, 0.0)

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_floor(self):
        assert geometric_mean([0.0, 4.0]) > 0.0

    def test_empty_means_raise(self):
        with pytest.raises(SamplingError):
            arithmetic_mean([])
        with pytest.raises(SamplingError):
            geometric_mean([])

    def test_error_table(self):
        table = error_table({"x": 1.1, "y": 0.5}, {"x": 1.0, "y": 0.5})
        assert table["x"] == pytest.approx(10.0)
        assert table["y"] == 0.0
        assert "A-Mean" in table and "G-Mean" in table
        assert table["A-Mean"] == pytest.approx(5.0)

    def test_error_table_missing_truth(self):
        with pytest.raises(SamplingError):
            error_table({"x": 1.0}, {})

    def test_gmean_less_than_amean(self):
        vals = [1.0, 2.0, 30.0]
        assert geometric_mean(vals) < arithmetic_mean(vals)


class TestDistributions:
    def test_histogram_total(self):
        edges, counts = histogram([1, 2, 3, 4], bins=4)
        assert counts.sum() == 4
        assert len(edges) == 5

    def test_histogram_weights(self):
        edges, counts = histogram([0.0, 1.0], bins=2, weights=[10, 30])
        assert counts.sum() == 40

    def test_histogram_empty_raises(self):
        with pytest.raises(SamplingError):
            histogram([])

    def test_bimodality_gaussian_low(self):
        rng = np.random.default_rng(0)
        bc = bimodality_coefficient(rng.normal(size=5000))
        assert bc == pytest.approx(1 / 3, abs=0.05)

    def test_bimodality_two_modes_high(self):
        rng = np.random.default_rng(0)
        data = np.concatenate(
            [rng.normal(0, 0.1, 2500), rng.normal(3, 0.1, 2500)]
        )
        assert bimodality_coefficient(data) > 0.555

    def test_bimodality_needs_samples(self):
        with pytest.raises(SamplingError):
            bimodality_coefficient([1.0, 2.0])

    def test_bimodality_constant_zero(self):
        assert bimodality_coefficient([1.0] * 10) == 0.0

    def test_modality_peaks_bimodal(self):
        rng = np.random.default_rng(2)
        data = np.concatenate(
            [rng.normal(0.3, 0.05, 3000), rng.normal(1.2, 0.05, 3000)]
        )
        peaks = modality_peaks(data, bins=40)
        assert len(peaks) == 2
        assert peaks[0] == pytest.approx(0.3, abs=0.15)
        assert peaks[1] == pytest.approx(1.2, abs=0.15)

    def test_modality_peaks_unimodal(self):
        rng = np.random.default_rng(3)
        peaks = modality_peaks(rng.normal(1.0, 0.1, 5000), bins=30)
        assert len(peaks) == 1

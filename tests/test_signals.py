"""The phase-signal layer: MAV correctness, concatenation, sensitivity.

Three claims are pinned here:

* the MAV's closed-form batching (``pattern_addresses`` +
  ``record_batch``) is *bit-identical* to the scalar event loop, the
  same gate ``tests/test_batched_equivalence.py`` holds the BBV to;
* tracker snapshots use the compact buffer form and still restore the
  historical list payloads (checkpoint back-compat);
* the signals differ where they should: a phase change visible only in
  the memory stream (control-flow twin blocks) is invisible to the BBV
  classifier and detected by the MAV and the concatenated signal.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Behavior,
    BbvTracker,
    BlockBuilder,
    ConcatenatedSignal,
    MavTracker,
    Mode,
    PatternKind,
    Program,
    ProgramStream,
    Scale,
    Segment,
    SimulationEngine,
    get_workload,
    make_signal_tracker,
)
from repro.errors import ConfigurationError, ProgramError
from repro.phase import OnlinePhaseClassifier
from repro.program import ADVERSARIAL_NAMES
from repro.signals import PHASE_SIGNALS, pattern_addresses
from conftest import make_two_phase_program


# ----------------------------------------------------------------------
# pattern_addresses: the vectorised MemPattern.address


class TestPatternAddresses:
    @given(
        kind=st.sampled_from(list(PatternKind)),
        base=st.integers(min_value=0, max_value=1 << 40),
        span=st.integers(min_value=1, max_value=1 << 24),
        stride=st.integers(min_value=1, max_value=1 << 16),
        seed=st.integers(min_value=0, max_value=(1 << 16) - 1),
        ks=st.lists(
            st.integers(min_value=0, max_value=1 << 30),
            min_size=1,
            max_size=64,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_address(self, kind, base, span, stride, seed, ks):
        from repro.program.mem_patterns import MemPattern

        pattern = MemPattern(
            kind=kind, base=base, span=span, stride=stride, seed=seed
        )
        batched = pattern_addresses(
            pattern, np.array(ks, dtype=np.int64)
        )
        scalar = [pattern.address(k) for k in ks]
        assert batched.tolist() == scalar


# ----------------------------------------------------------------------
# MavTracker: construction, accumulation, compile/reset


class TestMavTracker:
    def _block(self, seed=11, n_patterns=2):
        b = BlockBuilder(seed=seed)
        pats = [
            b.pattern(PatternKind.REUSE, 8 * 1024, stride=64),
            b.pattern(PatternKind.RANDOM, 1 << 20),
        ][:n_patterns]
        return b.build(ops=16, mix="int", mem_patterns=pats)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            MavTracker(n_buckets=1)
        with pytest.raises(ConfigurationError):
            MavTracker(line_bits=13, page_bits=12)

    def test_record_counts_ops_and_accesses(self):
        tracker = MavTracker(n_buckets=8)
        block = self._block()
        for k in range(5):
            tracker.record(block, True, k=k)
        assert tracker.total_ops == 5 * block.n_ops
        assert tracker.total_accesses == 5 * len(block.mem_patterns)
        raw = tracker.peek_vector()
        assert raw.shape == (16,)
        # One line-count and one page-count per dynamic access.
        assert raw[:8].sum() == tracker.total_accesses
        assert raw[8:].sum() == tracker.total_accesses

    def test_take_vector_normalises_and_resets(self):
        tracker = MavTracker(n_buckets=8)
        tracker.record(self._block(), True, k=0)
        vec = tracker.take_vector(normalize=True)
        assert math.isclose(float(np.linalg.norm(vec)), 1.0)
        assert not tracker.peek_vector().any()
        # Empty period: the zero vector comes back unscaled.
        assert not tracker.take_vector(normalize=True).any()

    def test_blocks_without_memory_still_count_ops(self):
        b = BlockBuilder(seed=3)
        block = b.build(ops=10, mix="int_light")
        tracker = MavTracker()
        tracker.record(block, False, k=4)
        assert tracker.total_ops == block.n_ops
        assert tracker.total_accesses == 0
        assert not tracker.peek_vector().any()

    def test_snapshot_is_compact_and_round_trips(self):
        tracker = MavTracker(n_buckets=8)
        for k in range(9):
            tracker.record(self._block(), True, k=k)
        snap = tracker.snapshot()
        assert isinstance(snap["registers"], bytes)
        assert len(snap["registers"]) == 16 * 8  # raw float64 buffer
        other = MavTracker(n_buckets=8)
        other.restore(snap)
        assert np.array_equal(other.peek_vector(), tracker.peek_vector())
        assert other.total_ops == tracker.total_ops
        assert other.total_accesses == tracker.total_accesses

    def test_restore_accepts_legacy_list_payload(self):
        """Checkpoints written before the compact form stay restorable."""
        tracker = MavTracker(n_buckets=4)
        legacy = {
            "registers": [float(i) for i in range(8)],
            "total_ops": 123,
            "total_accesses": 7,
        }
        tracker.restore(legacy)
        assert tracker.peek_vector().tolist() == [float(i) for i in range(8)]
        assert tracker.total_ops == 123

    def test_restore_rejects_wrong_width_and_bad_payload(self):
        tracker = MavTracker(n_buckets=8)
        with pytest.raises(ConfigurationError):
            tracker.restore(
                {"registers": [0.0] * 4, "total_ops": 0, "total_accesses": 0}
            )
        with pytest.raises(ConfigurationError):
            tracker.restore(
                {"registers": 3.14, "total_ops": 0, "total_accesses": 0}
            )

    def test_bbv_snapshot_compact_with_legacy_restore(self):
        """The checkpoint-size fix: BBV registers serialise as one raw
        buffer (8 bytes/bucket), while pre-compact list payloads still
        restore — old fleet checkpoints stay valid."""
        b = BlockBuilder(seed=21)
        block = b.build(ops=12, mix="int")
        tracker = BbvTracker()
        tracker.record(block, taken=True)
        snap = tracker.snapshot()
        assert isinstance(snap["registers"], bytes)
        assert len(snap["registers"]) == tracker.n_buckets * 8
        legacy = dict(snap, registers=list(tracker.peek_vector()))
        other = BbvTracker()
        other.restore(legacy)
        assert np.array_equal(other.peek_vector(), tracker.peek_vector())


# ----------------------------------------------------------------------
# Scalar vs. batched bit-identity — the MAV's batching correctness gate.


def _programs():
    return {
        "two_phase": make_two_phase_program(),
        "adv.stride_flip": get_workload("adv.stride_flip", Scale.QUICK),
        "164.gzip": get_workload("164.gzip", Scale.QUICK),
    }


class TestMavBatchedEquivalence:
    @pytest.mark.parametrize(
        "name", ("two_phase", "adv.stride_flip", "164.gzip")
    )
    def test_full_stream_registers_bit_identical(self, name):
        program = _programs()[name]
        scalar, batched = MavTracker(), MavTracker()
        stream_a, stream_b = ProgramStream(program), ProgramStream(program)
        for event in stream_a:
            scalar.record(event.block, event.taken, k=event.k)
        batched.record_batch(stream_b.next_events(10**9))
        assert np.array_equal(scalar.peek_vector(), batched.peek_vector())
        assert scalar.total_ops == batched.total_ops
        assert scalar.total_accesses == batched.total_accesses

    @given(
        st.lists(
            st.integers(min_value=1, max_value=20_000),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_bit_identity_at_arbitrary_batch_boundaries(self, batches):
        """The hypothesis gate: any batch partition of the stream leaves
        the scalar and batched register files bit-identical."""
        program = make_two_phase_program()
        scalar, batched = MavTracker(), MavTracker()
        stream_a, stream_b = ProgramStream(program), ProgramStream(program)
        for max_ops in batches:
            got = 0
            while got < max_ops:
                event = stream_a.next_event()
                if event is None:
                    break
                scalar.record(event.block, event.taken, k=event.k)
                got += event.block.n_ops
            batched.record_batch(stream_b.next_events(max_ops))
            assert np.array_equal(
                scalar.peek_vector(), batched.peek_vector()
            )
            assert scalar.total_ops == batched.total_ops

    @pytest.mark.parametrize("signal", PHASE_SIGNALS)
    def test_engine_vector_sequence_identical(self, signal):
        """Period-boundary vectors are bit-identical between the scalar
        and batched engines, for every signal kind."""
        program = get_workload("adv.footprint_step", Scale.QUICK)
        engines = [
            SimulationEngine(
                program,
                signal_tracker=make_signal_tracker(signal),
                batched=batched,
            )
            for batched in (False, True)
        ]
        while not engines[0].exhausted:
            vecs = []
            for engine in engines:
                engine.run(Mode.FUNC_FAST, 8_000)
                vecs.append(
                    engine.signal_tracker.take_vector(normalize=True)
                )
            assert np.array_equal(vecs[0], vecs[1])
        assert engines[1].exhausted


# ----------------------------------------------------------------------
# ConcatenatedSignal


class TestConcatenatedSignal:
    def _concat(self):
        return ConcatenatedSignal([BbvTracker(), MavTracker(n_buckets=8)])

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            ConcatenatedSignal([])
        with pytest.raises(ConfigurationError):
            ConcatenatedSignal([BbvTracker()], weights=[1.0, 2.0])
        with pytest.raises(ConfigurationError):
            ConcatenatedSignal([BbvTracker()], weights=[0.0])

    def test_vector_concatenates_children(self):
        combined = self._concat()
        b = BlockBuilder(seed=9)
        block = b.build(
            ops=12,
            mix="int",
            mem_patterns=[b.pattern(PatternKind.REUSE, 4096, stride=64)],
        )
        for k in range(6):
            combined.record(block, True, k=k)
        assert combined.total_ops == 6 * block.n_ops
        vec = combined.take_vector(normalize=True)
        assert vec.shape == (32 + 16,)
        assert math.isclose(float(np.linalg.norm(vec)), 1.0)
        # Equal weights: each child's half carries equal L2 mass.
        assert math.isclose(
            float(np.linalg.norm(vec[:32])), float(np.linalg.norm(vec[32:]))
        )

    def test_snapshot_round_trips_and_rejects_mismatch(self):
        combined = self._concat()
        b = BlockBuilder(seed=9)
        block = b.build(
            ops=12,
            mix="int",
            mem_patterns=[b.pattern(PatternKind.RANDOM, 1 << 16)],
        )
        combined.record(block, True, k=3)
        snap = combined.snapshot()
        other = self._concat()
        other.restore(snap)
        assert np.array_equal(other.peek_vector(), combined.peek_vector())
        with pytest.raises(ConfigurationError):
            ConcatenatedSignal([MavTracker()]).restore(snap)


# ----------------------------------------------------------------------
# The factory


class TestMakeSignalTracker:
    def test_resolves_each_knob_value(self):
        assert isinstance(make_signal_tracker("bbv"), BbvTracker)
        assert isinstance(make_signal_tracker("mav"), MavTracker)
        assert isinstance(
            make_signal_tracker("concat"), ConcatenatedSignal
        )

    def test_wide_bbv_and_mav_width_knobs(self):
        wide = make_signal_tracker("bbv", wide_bbv_buckets=128)
        assert wide.peek_vector().shape == (128,)
        mav = make_signal_tracker("mav", mav_buckets=16)
        assert mav.peek_vector().shape == (32,)

    def test_unknown_signal_raises(self):
        with pytest.raises(ConfigurationError):
            make_signal_tracker("dbv")


# ----------------------------------------------------------------------
# Sensitivity: what each signal can and cannot see.


def _memory_only_program(ops_per_phase=30_000, seed=7):
    """Two phases running *byte-identical code* over different data.

    The hostile twin strides one L2 way through a 4 MB span, so every
    access conflict-misses, while the friendly original stays inside an
    8 KB reuse window — a large IPC and MAV difference with exactly zero
    control-flow difference.
    """
    b = BlockBuilder(seed=seed)
    friendly = b.build(
        ops=20,
        mix="int_light",
        dep_density=0.1,
        mem_patterns=[b.pattern(PatternKind.REUSE, 8 * 1024, stride=256)],
    )
    hostile = b.twin(
        friendly,
        [b.pattern(PatternKind.REUSE, 32 * 128 * 1024, stride=128 * 1024)],
    )
    behaviors = [
        Behavior("friendly", [(friendly, 25)]),
        Behavior("hostile", [(hostile, 25)]),
    ]
    script = [
        Segment("friendly", ops_per_phase),
        Segment("hostile", ops_per_phase),
        Segment("friendly", ops_per_phase),
        Segment("hostile", ops_per_phase),
    ]
    return Program(
        "memory_only", [friendly, hostile], behaviors, script, seed=seed
    )


def _phases_seen(signal, program, period=10_000, threshold_pi=0.05):
    tracker = make_signal_tracker(signal)
    engine = SimulationEngine(program, signal_tracker=tracker)
    classifier = OnlinePhaseClassifier(threshold_pi * math.pi)
    while not engine.exhausted:
        outcome = engine.run(Mode.FUNC_WARM, period)
        if outcome.ops == 0:
            break
        classifier.observe(tracker.take_vector(normalize=True), outcome.ops)
    return classifier.n_phases


class TestSignalSensitivity:
    def test_twin_blocks_require_matching_store_slots(self):
        b = BlockBuilder(seed=1)
        block = b.build(
            ops=12,
            mix="int",
            mem_patterns=[
                b.pattern(PatternKind.REUSE, 4096, stride=64, is_write=True)
            ],
        )
        with pytest.raises(ProgramError):
            b.twin(block, [b.pattern(PatternKind.REUSE, 4096, stride=64)])
        with pytest.raises(ProgramError):
            b.twin(block, [])

    def test_memory_only_change_invisible_to_bbv(self):
        """The BBV sees one phase: the twins share a branch stream."""
        assert _phases_seen("bbv", _memory_only_program()) == 1

    @pytest.mark.parametrize("signal", ("mav", "concat"))
    def test_memory_only_change_detected_by_memory_signals(self, signal):
        assert _phases_seen(signal, _memory_only_program()) >= 2

    def test_control_flow_change_visible_to_all_signals(self):
        """Sanity check the other direction: an ordinary control-flow
        phase change is visible to every signal (concat by BBV half)."""
        program = make_two_phase_program()
        for signal in PHASE_SIGNALS:
            assert _phases_seen(signal, program) >= 2

    @pytest.mark.parametrize("name", ADVERSARIAL_NAMES)
    def test_adversarial_workloads_are_bbv_blind(self, name):
        """The shipped adversarial workloads have the same property the
        inline twin program demonstrates."""
        program = get_workload(name, Scale.QUICK)
        assert _phases_seen("bbv", program) == 1
        assert _phases_seen("mav", program) >= 2

"""Tests for the simulation engine: modes, accounting, checkpoints."""

import pytest

from repro import (
    BbvTracker,
    ConfigurationError,
    Mode,
    SimulationEngine,
    SimulationError,
)
from repro.cpu import CheckpointStore
from repro.cpu.engine import ModeAccounting


class TestModes:
    def test_detail_produces_cycles(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        run = engine.run(Mode.DETAIL, 10_000)
        assert run.ops >= 10_000
        assert run.cycles > 0
        assert run.ipc > 0

    def test_functional_modes_produce_no_cycles(self, two_phase_program):
        for mode in (Mode.FUNC_WARM, Mode.FUNC_FAST):
            engine = SimulationEngine(two_phase_program)
            run = engine.run(mode, 10_000)
            assert run.ops >= 10_000
            assert run.cycles == 0
            assert run.ipc == 0.0

    def test_detail_warm_counts_as_detailed(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        engine.run(Mode.DETAIL_WARM, 5_000)
        engine.run(Mode.FUNC_WARM, 5_000)
        assert engine.accounting.detailed_ops >= 5_000
        assert engine.accounting.detailed_ops < 10_000

    def test_mode_is_detailed_property(self):
        assert Mode.DETAIL.is_detailed
        assert Mode.DETAIL_WARM.is_detailed
        assert not Mode.FUNC_WARM.is_detailed
        assert not Mode.FUNC_FAST.is_detailed

    def test_run_to_end_exhausts(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        result = engine.run_to_end(Mode.FUNC_FAST)
        assert engine.exhausted
        assert result.ops == engine.ops_completed

    def test_run_after_exhaustion_is_empty(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        engine.run_to_end(Mode.FUNC_FAST)
        run = engine.run(Mode.DETAIL, 1000)
        assert run.ops == 0
        assert run.exhausted

    def test_negative_ops_rejected(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        with pytest.raises(SimulationError):
            engine.run(Mode.DETAIL, -1)

    def test_unknown_predictor_rejected(self, two_phase_program):
        with pytest.raises(ConfigurationError):
            SimulationEngine(two_phase_program, predictor="oracle")

    def test_bimodal_predictor_selectable(self, two_phase_program):
        engine = SimulationEngine(two_phase_program, predictor="bimodal")
        engine.run(Mode.DETAIL, 2000)
        assert engine.predictor.stats.predictions > 0


class TestWarmingEquivalence:
    def test_functional_warming_matches_detail_cache_state(
        self, two_phase_program
    ):
        """FUNC_WARM must leave caches and predictor in exactly the state
        DETAIL would — that is what makes SMARTS-style sampling sound."""
        e1 = SimulationEngine(two_phase_program)
        e2 = SimulationEngine(two_phase_program)
        e1.run(Mode.DETAIL, 30_000)
        e2.run(Mode.FUNC_WARM, 30_000)
        assert e1.hierarchy.snapshot() == e2.hierarchy.snapshot()
        assert e1.predictor.snapshot() == e2.predictor.snapshot()

    def test_func_fast_touches_nothing(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        engine.run(Mode.FUNC_FAST, 30_000)
        assert engine.hierarchy.l1d.stats.accesses == 0
        assert engine.predictor.stats.predictions == 0

    def test_mixed_mode_ipc_close_to_pure_detail(self, two_phase_program):
        """Sampled detail windows after warming measure IPC close to the
        same windows inside a full-detail run."""
        full = SimulationEngine(two_phase_program)
        full_result = full.run_to_end(Mode.DETAIL)

        mixed = SimulationEngine(two_phase_program)
        detail_ops = 0
        detail_cycles = 0
        while not mixed.exhausted:
            mixed.run(Mode.FUNC_WARM, 3_000)
            run = mixed.run(Mode.DETAIL, 1_000)
            detail_ops += run.ops
            detail_cycles += run.cycles
        assert detail_cycles > 0
        sampled_ipc = detail_ops / detail_cycles
        assert sampled_ipc == pytest.approx(full_result.ipc, rel=0.25)


class TestBbvIntegration:
    def test_tracker_sees_all_modes(self, two_phase_program):
        tracker = BbvTracker()
        engine = SimulationEngine(two_phase_program, bbv_tracker=tracker)
        engine.run(Mode.FUNC_FAST, 5_000)
        engine.run(Mode.FUNC_WARM, 5_000)
        engine.run(Mode.DETAIL, 5_000)
        assert tracker.total_ops == engine.ops_completed

    def test_no_tracker_by_default(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        assert engine.bbv_tracker is None


class TestAccounting:
    def test_per_mode_ops(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        engine.run(Mode.DETAIL, 3_000)
        engine.run(Mode.FUNC_WARM, 6_000)
        acc = engine.accounting
        assert acc.ops[Mode.DETAIL] >= 3_000
        assert acc.ops[Mode.FUNC_WARM] >= 6_000
        assert acc.total_ops == engine.ops_completed

    def test_time_recorded(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        engine.run(Mode.DETAIL, 20_000)
        assert engine.accounting.seconds[Mode.DETAIL] > 0
        assert engine.accounting.rate(Mode.DETAIL) > 0

    def test_merge(self):
        a = ModeAccounting()
        b = ModeAccounting()
        a.ops[Mode.DETAIL] = 10
        b.ops[Mode.DETAIL] = 5
        b.seconds[Mode.DETAIL] = 1.0
        a.merge(b)
        assert a.ops[Mode.DETAIL] == 15
        assert a.seconds[Mode.DETAIL] == 1.0


class TestCheckpointing:
    def test_snapshot_restore_resumes_identically(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        engine.run(Mode.FUNC_WARM, 40_000)
        snap = engine.snapshot()
        r1 = engine.run(Mode.DETAIL, 5_000)
        engine.restore(snap)
        r2 = engine.run(Mode.DETAIL, 5_000)
        assert r1.ops == r2.ops
        assert r1.cycles == r2.cycles

    def test_snapshot_includes_tracker(self, two_phase_program):
        tracker = BbvTracker()
        engine = SimulationEngine(two_phase_program, bbv_tracker=tracker)
        engine.run(Mode.FUNC_FAST, 10_000)
        snap = engine.snapshot()
        assert "bbv" in snap
        vec1 = tracker.peek_vector().copy()
        engine.run(Mode.FUNC_FAST, 10_000)
        engine.restore(snap)
        assert (tracker.peek_vector() == vec1).all()

    def test_checkpoint_store_collect(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        store = CheckpointStore.collect(engine, interval_ops=30_000)
        assert len(store) >= 3
        assert store.offsets == sorted(store.offsets)

    def test_checkpoint_store_restore_nearest(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        store = CheckpointStore.collect(engine, interval_ops=30_000)
        target = store.offsets[2]
        cp = store.restore_nearest(engine, target + 10)
        assert cp.op_offset == target
        assert engine.ops_completed == target

    def test_checkpoint_store_rejects_unreachable(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        store = CheckpointStore()
        with pytest.raises(SimulationError):
            store.restore_nearest(engine, 100)

    def test_livepoint_acceleration(self, two_phase_program):
        """Checkpoints let samples be measured out of order with identical
        results (the TurboSMARTS/livepoint future-work feature)."""
        engine = SimulationEngine(two_phase_program)
        store = CheckpointStore.collect(engine, interval_ops=40_000)

        # Sequential reference: sample at each checkpoint offset.
        sequential = []
        for offset in store.offsets[1:3]:
            fresh = SimulationEngine(two_phase_program)
            store.restore_nearest(fresh, offset)
            sequential.append(fresh.run(Mode.DETAIL, 1_000).cycles)

        # Random order must reproduce the same measurements.
        reordered = []
        for offset in reversed(store.offsets[1:3]):
            fresh = SimulationEngine(two_phase_program)
            store.restore_nearest(fresh, offset)
            reordered.append(fresh.run(Mode.DETAIL, 1_000).cycles)
        assert sequential == list(reversed(reordered))


class TestBatchedDispatch:
    def test_auto_detect_uses_batched_path(self, two_phase_program):
        engine = SimulationEngine(two_phase_program)
        assert engine.batched is None
        tracker = BbvTracker()
        assert engine._batching(tracker)
        assert engine._batching(None)

    def test_batched_false_forces_scalar(self, two_phase_program):
        engine = SimulationEngine(two_phase_program, batched=False)
        assert not engine._batching(None)
        run = engine.run(Mode.FUNC_FAST, 5_000)
        assert run.ops >= 5_000

    def test_batched_true_requires_capable_stream(self, two_phase_program):
        from repro.program.trace_io import record_trace

        trace = record_trace(two_phase_program, max_ops=20_000)
        replay = trace.as_stream(two_phase_program)
        with pytest.raises(ConfigurationError):
            SimulationEngine(two_phase_program, stream=replay, batched=True)

    def test_trace_stream_falls_back_to_scalar(self, two_phase_program):
        """A replayed trace has no next_events; the engine silently uses
        the scalar loop and still matches the live-stream result."""
        from repro.program.trace_io import record_trace

        trace = record_trace(two_phase_program, max_ops=20_000)
        replay = trace.as_stream(two_phase_program)
        tracker = BbvTracker()
        engine = SimulationEngine(two_phase_program, stream=replay, bbv_tracker=tracker)
        assert not engine._batching(tracker)
        run = engine.run(Mode.FUNC_FAST, 10_000)
        assert run.ops >= 10_000

        live_tracker = BbvTracker()
        live = SimulationEngine(two_phase_program, bbv_tracker=live_tracker)
        live.run(Mode.FUNC_FAST, 10_000)
        assert tracker.peek_vector().tolist() == live_tracker.peek_vector().tolist()

    def test_batched_func_fast_touches_nothing(self, two_phase_program):
        engine = SimulationEngine(two_phase_program, batched=True)
        engine.run(Mode.FUNC_FAST, 30_000)
        assert engine.hierarchy.l1d.stats.accesses == 0
        assert engine.predictor.stats.predictions == 0

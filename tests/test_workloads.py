"""Tests for the SPEC2000-analogue workload suite and its calibration."""

import pytest

from repro import (
    ConfigurationError,
    Mode,
    Scale,
    SimulationEngine,
    WORKLOAD_NAMES,
    get_workload,
    paper_suite,
    wupwise_analogue,
)


class TestRegistry:
    def test_ten_paper_benchmarks(self):
        assert len(WORKLOAD_NAMES) == 10
        assert WORKLOAD_NAMES[0] == "164.gzip"
        assert WORKLOAD_NAMES[-1] == "300.twolf"

    def test_paper_suite_order(self):
        suite = paper_suite(Scale.QUICK)
        assert [p.name for p in suite] == list(WORKLOAD_NAMES)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("999.nope", Scale.QUICK)

    def test_wupwise_available(self):
        prog = get_workload("168.wupwise", Scale.QUICK)
        assert prog.name == "168.wupwise"
        assert wupwise_analogue(Scale.QUICK).name == "168.wupwise"

    def test_builders_are_deterministic(self):
        p1 = get_workload("164.gzip", Scale.QUICK)
        p2 = get_workload("164.gzip", Scale.QUICK)
        assert [b.address for b in p1.blocks] == [b.address for b in p2.blocks]
        assert [(s.behavior, s.ops) for s in p1.script] == [
            (s.behavior, s.ops) for s in p2.script
        ]

    def test_scale_controls_length(self):
        quick = get_workload("177.mesa", Scale.QUICK)
        assert quick.total_ops == pytest.approx(Scale.QUICK.benchmark_ops, rel=0.15)


class TestStructure:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_workload_builds(self, name):
        prog = get_workload(name, Scale.QUICK)
        assert prog.n_blocks >= 2
        assert len(prog.behaviors) >= 1
        assert prog.total_ops > 0

    def test_micro_phase_benchmarks_have_fine_entries(self):
        """179.art / 181.mcf must oscillate well below the BBV period
        (their Section-5 pathology)."""
        for name in ("179.art", "181.mcf"):
            prog = get_workload(name, Scale.SCALED)
            period = Scale.SCALED.pgss_best_period
            for behavior in prog.behaviors.values():
                cycle_ops = behavior.mean_ops_per_cycle_through()
                assert cycle_ops < period / 4, (name, behavior.name, cycle_ops)

    def test_twolf_has_spike_behaviors(self):
        prog = get_workload("300.twolf", Scale.QUICK)
        assert "spike_hi" in prog.behaviors
        assert "spike_lo" in prog.behaviors
        spike_ops = sum(
            s.ops for s in prog.script if s.behavior.startswith("spike")
        )
        assert spike_ops / prog.total_ops < 0.10

    def test_wupwise_two_behaviors(self):
        prog = get_workload("168.wupwise", Scale.QUICK)
        assert len(prog.behaviors) == 2


class TestCalibration:
    """Coarse IPC-character checks at QUICK scale (full calibration is a
    benchmark concern; these guard against gross regressions)."""

    def _ipc(self, name):
        engine = SimulationEngine(get_workload(name, Scale.QUICK))
        return engine.run_to_end(Mode.DETAIL, chunk_ops=100_000).ipc

    def test_art_and_mcf_very_low_ipc(self):
        assert self._ipc("179.art") < 0.35
        assert self._ipc("181.mcf") < 0.35

    def test_mesa_high_and_gzip_mid(self):
        mesa = self._ipc("177.mesa")
        mcf = self._ipc("181.mcf")
        assert mesa > 1.0
        assert mesa > 4 * mcf

    def test_suite_ipcs_span_a_wide_range(self):
        ipcs = [self._ipc(n) for n in ("164.gzip", "179.art", "253.perlbmk")]
        assert max(ipcs) / min(ipcs) > 4

"""Tests for two-phase stratified and ranked-set sampling."""

import math

import pytest

from repro import Scale
from repro.config import SampleBudget
from repro.errors import ConfigurationError, SamplingError
from repro.sampling import (
    FullDetail,
    RankedSetConfig,
    RankedSetSampling,
    TwoPhaseStratified,
    TwoPhaseStratifiedConfig,
)
from repro.sampling.session import SamplingSession, interval_sample_plan
from repro.cpu import Mode, SimulationEngine

from conftest import make_two_phase_program

#: make_two_phase_program's total dynamic length (4 x 40k segments).
PROGRAM_OPS = 160_000


@pytest.fixture(scope="module")
def program():
    return make_two_phase_program()


@pytest.fixture(scope="module")
def true_ipc():
    return FullDetail().run(make_two_phase_program()).ipc_estimate


class TestIntervalSamplePlan:
    def _run(self, targets, stagger):
        engine = SimulationEngine(make_two_phase_program())
        session = SamplingSession(engine)
        session.execute(
            interval_sample_plan(targets, 8_000, 500, 500, stagger=stagger)
        )
        return session.samples

    def test_samples_land_in_their_intervals(self):
        targets = [1, 4, 9, 15]
        samples = self._run(targets, stagger=True)
        assert [s.op_offset // 8_000 for s in samples] == targets

    def test_unstaggered_samples_sit_at_interval_starts(self):
        # Segments overshoot by up to a block, so positions sit just
        # past the 500-op warmup rather than exactly at it.
        samples = self._run([2, 5], stagger=False)
        assert all(500 <= s.op_offset % 8_000 < 1_000 for s in samples)

    def test_stagger_varies_in_interval_position(self):
        samples = self._run([1, 4, 9, 15], stagger=True)
        positions = {s.op_offset % 8_000 for s in samples}
        assert len(positions) > 1

    def test_duplicate_and_unsorted_targets_are_normalised(self):
        assert [
            s.op_offset // 8_000 for s in self._run([9, 1, 9, 4], stagger=False)
        ] == [1, 4, 9]


class TestStratifiedConfig:
    def test_from_scale_reads_budget(self):
        cfg = TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        budget = Scale.QUICK.sample_budget
        assert cfg.total_samples == budget.stage2_samples
        assert cfg.pilot_per_stratum == budget.pilot_per_stratum
        assert cfg.detail_ops == budget.detail_ops
        assert cfg.interval_ops == Scale.QUICK.pgss_best_period

    def test_from_scale_overrides(self):
        cfg = TwoPhaseStratifiedConfig.from_scale(Scale.QUICK, total_samples=7)
        assert cfg.total_samples == 7

    def test_label(self):
        assert TwoPhaseStratifiedConfig(8_000, 16).label == "8kx2p16"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoPhaseStratifiedConfig(1_000, 16, detail_ops=600, warmup_ops=600)
        with pytest.raises(ConfigurationError):
            TwoPhaseStratifiedConfig(8_000, 0)
        with pytest.raises(ConfigurationError):
            TwoPhaseStratifiedConfig(8_000, 16, pilot_per_stratum=0)
        with pytest.raises(ConfigurationError):
            TwoPhaseStratifiedConfig(8_000, 16, threshold_pi=0.0)


class TestStratified:
    def test_finds_the_two_phases(self, program):
        result = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        ).run(program)
        assert result.extras["n_strata"] == 2

    def test_accuracy(self, program, true_ipc):
        result = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        ).run(program)
        assert result.percent_error(true_ipc) < 15.0

    def test_ci_brackets_estimate(self, program):
        result = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        ).run(program)
        assert result.ci is not None
        assert result.ci.mean == pytest.approx(result.ipc_estimate, rel=0.10)
        assert math.isfinite(result.ci.half_width)

    def test_uses_less_detail_than_program(self, program):
        result = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        ).run(program)
        assert result.detailed_ops < PROGRAM_OPS / 3

    def test_deterministic(self, program):
        cfg = TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        a = TwoPhaseStratified(cfg).run(make_two_phase_program())
        b = TwoPhaseStratified(cfg).run(make_two_phase_program())
        assert a.ipc_estimate == b.ipc_estimate
        assert a.extras == b.extras

    def test_allocation_covers_every_stratum(self, program):
        result = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        ).run(program)
        assert all(
            n >= 1 for n in result.extras["samples_per_stratum"].values()
        )

    def test_accounting_spans_three_passes(self, program):
        result = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        ).run(program)
        # Stage 1 profiles in FUNC_FAST; measurement passes fast-forward
        # in FUNC_WARM; samples run DETAIL_WARM + DETAIL.
        assert result.accounting.ops[Mode.FUNC_FAST] > 0
        assert result.accounting.ops[Mode.FUNC_WARM] > 0
        assert result.accounting.detailed_ops == result.detailed_ops

    def test_extras_report_structure(self, program):
        result = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        ).run(program)
        cfg = TwoPhaseStratifiedConfig.from_scale(Scale.QUICK)
        assert result.extras["config"] == cfg.label
        assert result.extras["n_intervals"] == PROGRAM_OPS // cfg.interval_ops
        assert sum(result.extras["stratum_sizes"].values()) == result.extras[
            "n_intervals"
        ]


class TestRankedSetConfig:
    def test_from_scale_reads_budget(self):
        cfg = RankedSetConfig.from_scale(Scale.QUICK)
        budget = Scale.QUICK.sample_budget
        assert cfg.detail_ops == budget.detail_ops
        assert cfg.warmup_ops == budget.warmup_ops
        assert cfg.interval_ops == Scale.QUICK.pgss_best_period

    def test_label(self):
        assert RankedSetConfig(8_000).label == "8kx3r4"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RankedSetConfig(900, detail_ops=500, warmup_ops=500)
        with pytest.raises(ConfigurationError):
            RankedSetConfig(8_000, set_size=1)
        with pytest.raises(ConfigurationError):
            RankedSetConfig(8_000, n_subsamples=1)


class TestRankedSet:
    def test_every_rank_visited(self, program):
        result = RankedSetSampling(
            RankedSetConfig.from_scale(Scale.QUICK)
        ).run(program)
        counts = result.extras["rank_counts"]
        assert set(counts) == {0, 1, 2}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_one_sample_per_cycle(self, program):
        result = RankedSetSampling(
            RankedSetConfig.from_scale(Scale.QUICK)
        ).run(program)
        assert result.n_samples == result.extras["n_cycles"]

    def test_accuracy(self, program, true_ipc):
        result = RankedSetSampling(
            RankedSetConfig.from_scale(Scale.QUICK, set_size=2)
        ).run(program)
        assert result.percent_error(true_ipc) < 25.0

    def test_cheapest_of_the_family(self, program):
        cfg = RankedSetConfig.from_scale(Scale.QUICK)
        result = RankedSetSampling(cfg).run(program)
        per_sample = cfg.detail_ops + cfg.warmup_ops
        assert result.detailed_ops <= result.n_samples * per_sample + per_sample

    def test_deterministic(self, program):
        cfg = RankedSetConfig.from_scale(Scale.QUICK)
        a = RankedSetSampling(cfg).run(make_two_phase_program())
        b = RankedSetSampling(cfg).run(make_two_phase_program())
        assert a.ipc_estimate == b.ipc_estimate
        assert a.extras == b.extras

    def test_program_shorter_than_one_cycle_raises(self):
        cfg = RankedSetConfig.from_scale(Scale.QUICK, interval_ops=200_000)
        with pytest.raises(SamplingError):
            RankedSetSampling(cfg).run(make_two_phase_program())

    def test_ci_centred_on_estimate(self, program):
        result = RankedSetSampling(
            RankedSetConfig.from_scale(Scale.QUICK)
        ).run(program)
        assert result.ci is not None
        assert result.ci.mean == result.ipc_estimate


class TestBudgetKnobs:
    def test_sample_budget_carries_two_phase_knobs(self):
        budget = Scale.SCALED.sample_budget
        assert budget.pilot_per_stratum == 2
        assert budget.stage2_samples == 40

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            SampleBudget(1_000, 2_000, 0.03, 0.997, pilot_per_stratum=0)
        with pytest.raises(ConfigurationError):
            SampleBudget(1_000, 2_000, 0.03, 0.997, stage2_samples=0)


class TestFigureIntegration:
    def test_fig12_includes_new_techniques(self, tmp_path):
        from repro.experiments import fig12_technique_comparison as fig12
        from repro.experiments.runner import ExperimentContext

        ctx = ExperimentContext(
            Scale.QUICK, cache_dir=tmp_path, benchmarks=["164.gzip"]
        )
        result = fig12.run(ctx)
        for family in ("FullDetail", "Stratified", "RankedSet"):
            assert family in result
            assert "164.gzip" in result[family]["errors"]
        assert result["FullDetail"]["errors"]["164.gzip"] == pytest.approx(0.0)
        formatted = fig12.format_result(result)
        assert "Stratified" in formatted
        assert "RankedSet" in formatted

"""Tests for program inspection and the cold-sampling SMARTS variant."""

import pytest

from repro import Scale, get_workload
from repro.isa import Op
from repro.program import dynamic_profile, static_profile
from repro.sampling import Smarts, SmartsConfig, collect_reference_trace

from conftest import make_two_phase_program


class TestStaticProfile:
    def test_counts(self):
        program = make_two_phase_program()
        profile = static_profile(program)
        assert profile.n_blocks == 2
        assert profile.n_instructions == 24 + 12
        assert profile.n_behaviors == 2
        assert profile.n_segments == 4

    def test_op_mix_includes_branches(self):
        profile = static_profile(make_two_phase_program())
        assert profile.op_mix["BRANCH"] == 2
        assert profile.op_mix.get("LOAD", 0) >= 2

    def test_footprint_sums_pattern_spans(self):
        profile = static_profile(make_two_phase_program())
        assert profile.mem_footprint_bytes == 8 * 1024 + 16 * 1024 * 1024
        assert profile.pattern_mix == {"REUSE": 1, "CHASE": 1}

    def test_text_span_positive(self):
        profile = static_profile(make_two_phase_program())
        assert profile.text_span_bytes > 0

    def test_workload_profiles(self):
        for name in ("164.gzip", "181.mcf"):
            profile = static_profile(get_workload(name, Scale.QUICK))
            assert profile.n_blocks >= 2
            assert profile.mem_footprint_bytes > 0


class TestDynamicProfile:
    def test_totals_match_stream(self):
        program = make_two_phase_program()
        profile = dynamic_profile(program)
        assert profile.total_ops >= program.total_ops
        assert sum(profile.block_ops.values()) == profile.total_ops
        assert profile.mean_block_ops == pytest.approx(
            profile.total_ops / profile.total_events
        )

    def test_behavior_occupancy(self):
        profile = dynamic_profile(make_two_phase_program())
        assert set(profile.behavior_ops) == {"fast", "slow"}
        total = sum(profile.behavior_ops.values())
        assert profile.behavior_ops["fast"] == pytest.approx(total / 2)

    def test_taken_fraction_high_for_loops(self):
        profile = dynamic_profile(make_two_phase_program())
        # Loop-dominated programs take nearly every backward branch.
        assert profile.taken_fraction > 0.9


class TestColdSampling:
    """The functional-warming ablation (Conte et al. cold samples)."""

    def test_cold_samples_biased_slow(self):
        program = make_two_phase_program(ops_per_phase=60_000)
        trace = collect_reference_trace(program, 2_000)
        base = SmartsConfig(period_ops=6_000, detail_ops=500, warmup_ops=500)

        warm = Smarts(base).run(make_two_phase_program(ops_per_phase=60_000))
        cold_cfg = SmartsConfig(
            period_ops=6_000,
            detail_ops=500,
            warmup_ops=500,
            functional_warming=False,
        )
        cold = Smarts(cold_cfg).run(make_two_phase_program(ops_per_phase=60_000))

        # Cold samples see stale caches/predictors: estimated IPC is lower
        # and the error larger than with functional warming.
        assert cold.ipc_estimate < warm.ipc_estimate
        assert cold.percent_error(trace.true_ipc) > warm.percent_error(
            trace.true_ipc
        )

    def test_cold_config_flag_roundtrip(self):
        cfg = SmartsConfig(
            period_ops=10_000, detail_ops=500, warmup_ops=500,
            functional_warming=False,
        )
        assert not cfg.functional_warming
        assert SmartsConfig(period_ops=10_000).functional_warming

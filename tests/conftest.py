"""Shared fixtures for the test suite.

Everything runs at ``Scale.QUICK`` (or smaller ad-hoc programs) so the
whole suite stays fast; the benchmark harness exercises the scaled
operating point.
"""

from __future__ import annotations

import pytest

from repro import (
    Behavior,
    BlockBuilder,
    PatternKind,
    Program,
    Scale,
    Segment,
    get_workload,
)


@pytest.fixture(scope="session")
def quick_scale():
    """The miniature scale configuration."""
    return Scale.QUICK


@pytest.fixture()
def builder():
    """A fresh, seeded block builder."""
    return BlockBuilder(seed=1234)


def make_two_phase_program(
    ops_per_phase: int = 40_000, seed: int = 5
) -> Program:
    """A tiny two-behaviour program with well-separated IPC levels.

    Phase ``fast`` is compute-bound (L1-resident, shallow dependences);
    phase ``slow`` chases pointers through 16 MB.  Used all over the suite
    as a controllable ground truth.
    """
    b = BlockBuilder(seed=seed)
    fast_block = b.build(
        ops=24,
        mix="int_light",
        dep_density=0.1,
        mem_patterns=[b.pattern(PatternKind.REUSE, 8 * 1024, stride=8)],
    )
    slow_block = b.build(
        ops=12,
        mix="int",
        dep_density=0.4,
        mem_patterns=[b.pattern(PatternKind.CHASE, 16 * 1024 * 1024)],
    )
    behaviors = [
        Behavior("fast", [(fast_block, (50, 5))]),
        Behavior("slow", [(slow_block, (40, 4))]),
    ]
    script = [
        Segment("fast", ops_per_phase),
        Segment("slow", ops_per_phase),
        Segment("fast", ops_per_phase),
        Segment("slow", ops_per_phase),
    ]
    return Program("two_phase", [fast_block, slow_block], behaviors, script, seed=seed)


@pytest.fixture()
def two_phase_program():
    """The canonical two-phase test program."""
    return make_two_phase_program()


@pytest.fixture(scope="session")
def quick_gzip():
    """The 164.gzip analogue at QUICK scale (session-cached build)."""
    return get_workload("164.gzip", Scale.QUICK)

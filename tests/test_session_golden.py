"""Golden-equivalence suite for the sampling-session kernel.

The refactor that moved every technique onto
:mod:`repro.sampling.session` promised *byte-identical* results: the
exact sequence of engine mode runs — and therefore every op count,
sample offset, estimate bit and cache key — must match the pre-refactor
implementation.  ``tests/golden/*.json`` pins that pre-refactor output
(floats serialised via ``float.hex()``); this suite re-runs the full
technique matrix and compares.

Regenerate fixtures (only when an *intentional* behaviour change lands,
never to paper over a diff)::

    PYTHONPATH=src python tests/_golden.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.experiments.cache import CACHE_VERSION

from _golden import WORKLOADS, cache_keys, run_matrix, signal_matrix

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def matrix():
    return run_matrix()


class TestGoldenEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_results_byte_identical(self, matrix, workload):
        fixture = json.loads((GOLDEN_DIR / f"{workload}.json").read_text())
        got = matrix[workload]
        assert sorted(got) == sorted(fixture)
        for technique in fixture:
            assert got[technique] == fixture[technique], (
                f"{technique} on {workload} diverged from the pre-refactor "
                f"golden output"
            )

    def test_cache_version_unchanged(self):
        # The refactor is observationally invisible: cached results from
        # before it remain valid, so the version must not move.
        assert CACHE_VERSION == 7

    def test_cache_keys_byte_identical(self):
        fixture = json.loads((GOLDEN_DIR / "cache_keys.json").read_text())
        assert cache_keys() == fixture


class TestSignalGolden:
    """Pin PGSS under every phase signal on the adversarial workloads."""

    def test_signal_results_byte_identical(self):
        fixture = json.loads((GOLDEN_DIR / "signals.json").read_text())
        got = signal_matrix()
        assert sorted(got) == sorted(fixture)
        for workload in fixture:
            for signal in fixture[workload]:
                assert got[workload][signal] == fixture[workload][signal], (
                    f"PGSS/{signal} on {workload} diverged from the "
                    f"golden phase-signal output"
                )

"""Property-based tests on pipeline and engine invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DEFAULT_MACHINE, Mode, SimulationEngine
from repro.program import Behavior, BlockBuilder, PatternKind, Program, Segment

from conftest import make_two_phase_program


def build_random_program(seed: int, n_blocks: int, ops_budget: int) -> Program:
    """A random but valid program derived from a hypothesis seed."""
    import random

    rng = random.Random(seed)
    builder = BlockBuilder(seed=seed)
    blocks = []
    for _ in range(n_blocks):
        mix = rng.choice(list(BlockBuilder.MIXES))
        n_mem = rng.randint(0, 2)
        pats = []
        for _ in range(n_mem):
            kind = rng.choice(list(PatternKind))
            span = rng.choice([4096, 65536, 1 << 22])
            pats.append(builder.pattern(kind, span, stride=8))
        blocks.append(
            builder.build(
                rng.randint(n_mem + 4, 28),
                mix=mix,
                dep_density=rng.random() * 0.6,
                mem_patterns=pats,
            )
        )
    behaviors = [
        Behavior(f"b{i}", [(blk, (rng.randint(5, 60), 2))])
        for i, blk in enumerate(blocks)
    ]
    script = []
    remaining = ops_budget
    while remaining > 0:
        ops = min(rng.randint(2_000, 10_000), remaining)
        script.append(Segment(rng.choice(behaviors).name, max(ops, 1_000)))
        remaining -= ops
    return Program("random", blocks, behaviors, script, seed=seed)


class TestTimingInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_blocks=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_ipc_never_exceeds_width(self, seed, n_blocks):
        program = build_random_program(seed, n_blocks, 30_000)
        engine = SimulationEngine(program)
        result = engine.run_to_end(Mode.DETAIL)
        assert result.ipc <= DEFAULT_MACHINE.issue_width + 1e-9

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_cycles_at_least_ops_over_width(self, seed):
        program = build_random_program(seed, 3, 30_000)
        engine = SimulationEngine(program)
        result = engine.run_to_end(Mode.DETAIL)
        assert result.cycles >= result.ops / DEFAULT_MACHINE.issue_width - 1

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_detail_deterministic(self, seed):
        program1 = build_random_program(seed, 3, 20_000)
        program2 = build_random_program(seed, 3, 20_000)
        r1 = SimulationEngine(program1).run_to_end(Mode.DETAIL)
        r2 = SimulationEngine(program2).run_to_end(Mode.DETAIL)
        assert r1.ops == r2.ops
        assert r1.cycles == r2.cycles

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        split=st.integers(min_value=1_000, max_value=19_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_window_cycles_telescope(self, seed, split):
        """Splitting a run into two windows sums to the unsplit cycles."""
        whole = SimulationEngine(build_random_program(seed, 3, 20_000))
        total = whole.run_to_end(Mode.DETAIL)

        split_engine = SimulationEngine(build_random_program(seed, 3, 20_000))
        first = split_engine.run(Mode.DETAIL, split)
        rest = split_engine.run_to_end(Mode.DETAIL)
        assert first.ops + rest.ops == total.ops
        assert first.cycles + rest.cycles == total.cycles


class TestWarmingInvariants:
    @given(prefix=st.integers(min_value=2_000, max_value=100_000))
    @settings(max_examples=10, deadline=None)
    def test_any_prefix_warming_equivalence(self, prefix):
        """FUNC_WARM and DETAIL leave identical cache/predictor state after
        any prefix length."""
        p1 = make_two_phase_program()
        p2 = make_two_phase_program()
        e1 = SimulationEngine(p1)
        e2 = SimulationEngine(p2)
        e1.run(Mode.DETAIL, prefix)
        e2.run(Mode.FUNC_WARM, prefix)
        assert e1.hierarchy.snapshot() == e2.hierarchy.snapshot()
        assert e1.predictor.snapshot() == e2.predictor.snapshot()

    @given(
        chunks=st.lists(
            st.integers(min_value=500, max_value=20_000), min_size=1, max_size=8
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_chunked_warming_equals_single_pass(self, chunks):
        p1 = make_two_phase_program()
        p2 = make_two_phase_program()
        e1 = SimulationEngine(p1)
        e2 = SimulationEngine(p2)
        for chunk in chunks:
            e1.run(Mode.FUNC_WARM, chunk)
        e2.run(Mode.FUNC_WARM, e1.ops_completed and sum(chunks))
        # Ops consumed may differ by block boundaries; compare at equal
        # offsets only when they agree.
        if e1.ops_completed == e2.ops_completed:
            assert e1.hierarchy.snapshot() == e2.hierarchy.snapshot()

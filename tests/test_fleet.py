"""Tests for the distributed experiment fleet (`repro.fleet`).

Covers the filesystem job queue (claim semantics, priorities, leases,
retries, cancellation, sweeping), the worker loop, the spec JSON round
trip, the `ExperimentService` facade on both backends, the
fleet-vs-serial byte-identity guarantee, worker death with
checkpointed resume, and the `jobs`/`worker` CLI wiring.
"""

import json
import threading
import time

import pytest

from repro.cli import build_parser, main
from repro.config import Scale
from repro.errors import FleetError
from repro.experiments import ExperimentContext, ResultCache, trace_cell
from repro.experiments.parallel import _context_spec
from repro.fleet import (
    JobHandle,
    JobQueue,
    LocalService,
    QueueService,
    Worker,
    spec_from_doc,
    spec_to_doc,
)

BENCHMARKS = ["164.gzip", "300.twolf"]


def make_ctx(cache_dir):
    return ExperimentContext(
        Scale.QUICK, cache_dir=cache_dir, benchmarks=BENCHMARKS
    )


def make_queue(tmp_path, **kwargs):
    return JobQueue(tmp_path / "queue", **kwargs)


def spec_doc(cache_dir):
    return spec_to_doc(_context_spec(make_ctx(cache_dir)))


def submit_traces(queue, cache_dir, benchmarks=BENCHMARKS, **kwargs):
    cells = [trace_cell(b) for b in benchmarks]
    return queue.submit(cells, spec_doc(cache_dir), **kwargs)


class TestSpecRoundTrip:
    def test_doc_survives_json_and_rebuilds_equal_configs(self, tmp_path):
        ctx = make_ctx(tmp_path / "cache")
        doc = json.loads(json.dumps(spec_to_doc(_context_spec(ctx))))
        spec = spec_from_doc(doc)
        assert spec["scale"] == ctx.scale
        assert spec["machine"] == ctx.machine
        assert spec["benchmarks"] == BENCHMARKS
        assert str(ctx.cache.directory) == spec["cache_dir"]


class TestJobQueue:
    def test_submit_and_claim(self, tmp_path):
        queue = make_queue(tmp_path)
        job = submit_traces(queue, tmp_path / "cache")
        assert queue.jobs() == [job]
        task = queue.claim_next("w1")
        assert task is not None
        assert task.job_id == job
        assert task.cell.benchmark == BENCHMARKS[0]
        assert task.attempts == 1

    def test_empty_submit_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(FleetError):
            queue.submit([], spec_doc(tmp_path / "cache"))

    def test_duplicate_job_id_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        submit_traces(queue, tmp_path / "cache", job_id="jobx")
        with pytest.raises(FleetError):
            submit_traces(queue, tmp_path / "cache", job_id="jobx")

    def test_claimed_task_is_not_reclaimable(self, tmp_path):
        queue = make_queue(tmp_path)
        submit_traces(queue, tmp_path / "cache", benchmarks=["164.gzip"])
        assert queue.claim_next("w1") is not None
        assert queue.claim_next("w2") is None

    def test_priority_orders_claims(self, tmp_path):
        queue = make_queue(tmp_path)
        submit_traces(
            queue, tmp_path / "cache", benchmarks=["164.gzip"], priority=10
        )
        submit_traces(
            queue, tmp_path / "cache", benchmarks=["300.twolf"], priority=90
        )
        first = queue.claim_next("w")
        second = queue.claim_next("w")
        assert first.cell.benchmark == "300.twolf"
        assert second.cell.benchmark == "164.gzip"

    def test_bad_priority_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(FleetError):
            submit_traces(queue, tmp_path / "cache", priority=100)

    def test_complete_retires_task(self, tmp_path):
        queue = make_queue(tmp_path)
        job = submit_traces(queue, tmp_path / "cache", benchmarks=["164.gzip"])
        task = queue.claim_next("w1")
        task.complete({"seconds": 0.5})
        state = queue.status(job)
        assert state.state == "done"
        assert state.counts["ok"] == 1
        assert queue.drained()
        [outcome] = queue.outcomes(job)
        assert outcome["status"] == "ok"
        assert outcome["worker"] == "w1"

    def test_fail_within_budget_requeues_with_attempt_charged(self, tmp_path):
        queue = make_queue(tmp_path)
        job = submit_traces(
            queue, tmp_path / "cache", benchmarks=["164.gzip"], retries=1
        )
        task = queue.claim_next("w1")
        task.fail({"error": "boom"})
        assert queue.status(job).counts["pending"] == 1
        retry = queue.claim_next("w2")
        assert retry.attempts == 2
        retry.fail({"error": "boom again"})
        state = queue.status(job)
        assert state.state == "failed"
        assert "boom again" in list(state.failures.values())[0]

    def test_expired_lease_is_reaped_and_task_requeued(self, tmp_path):
        queue = make_queue(tmp_path, lease_s=0.05)
        job = submit_traces(
            queue, tmp_path / "cache", benchmarks=["164.gzip"], retries=1
        )
        task = queue.claim_next("w1")
        assert task is not None
        time.sleep(0.08)  # let w1's lease expire without heartbeats
        successor = queue.claim_next("w2")
        assert successor is not None
        assert successor.attempts == 2
        assert successor.worker == "w2"
        assert queue.status(job).counts["running"] == 1

    def test_expired_lease_out_of_budget_finalises_failed(self, tmp_path):
        queue = make_queue(tmp_path, lease_s=0.05)
        job = submit_traces(
            queue, tmp_path / "cache", benchmarks=["164.gzip"], retries=0
        )
        queue.claim_next("w1")
        time.sleep(0.08)
        assert queue.claim_next("w2") is None
        state = queue.status(job)
        assert state.state == "failed"
        assert "lease expired" in list(state.failures.values())[0]

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = make_queue(tmp_path, lease_s=0.1)
        submit_traces(queue, tmp_path / "cache", benchmarks=["164.gzip"])
        task = queue.claim_next("w1")
        for _ in range(3):
            time.sleep(0.05)
            task.heartbeat()
        assert queue.claim_next("w2") is None  # lease still live

    def test_cancel_retires_pending_tasks(self, tmp_path):
        queue = make_queue(tmp_path)
        job = submit_traces(queue, tmp_path / "cache")
        assert queue.cancel(job) is True
        assert queue.cancel(job) is False
        assert queue.claim_next("w1") is None
        state = queue.status(job)
        assert state.state == "cancelled"
        assert state.counts["cancelled"] == 2

    def test_cancel_unknown_job_raises(self, tmp_path):
        with pytest.raises(FleetError):
            make_queue(tmp_path).cancel("nope")

    def test_status_unknown_job_raises(self, tmp_path):
        with pytest.raises(FleetError):
            make_queue(tmp_path).status("nope")


class TestQueueSweep:
    def test_sweep_reaps_stale_lease_and_counts_requeue(self, tmp_path):
        queue = make_queue(tmp_path, lease_s=0.05)
        submit_traces(
            queue, tmp_path / "cache", benchmarks=["164.gzip"], retries=1
        )
        queue.claim_next("w1")
        time.sleep(0.08)
        report = queue.sweep()
        assert report.stale_leases == 1
        assert report.requeued == 1
        assert report.failed == 0
        assert queue.pending_tasks() == 1

    def test_sweep_finalises_out_of_budget_lease(self, tmp_path):
        queue = make_queue(tmp_path, lease_s=0.05)
        job = submit_traces(
            queue, tmp_path / "cache", benchmarks=["164.gzip"], retries=0
        )
        queue.claim_next("w1")
        time.sleep(0.08)
        report = queue.sweep()
        assert report.stale_leases == 1
        assert report.failed == 1
        assert queue.status(job).state == "failed"

    def test_sweep_removes_tmp_litter_and_orphan_checkpoints(self, tmp_path):
        queue = make_queue(tmp_path)
        (queue.root / "tasks" / "stray.json.123.abc.tmp").write_text("x")
        orphan = queue.root / "checkpoints" / "00.dead.00000"
        orphan.mkdir(parents=True)
        (orphan / "trace.ckpt").write_bytes(b"x")
        report = queue.sweep()
        assert report.orphan_files == 1
        assert report.orphan_checkpoints == 1
        assert not orphan.exists()

    def test_sweep_keeps_live_lease(self, tmp_path):
        queue = make_queue(tmp_path, lease_s=60.0)
        submit_traces(queue, tmp_path / "cache", benchmarks=["164.gzip"])
        queue.claim_next("w1")
        report = queue.sweep()
        assert report.stale_leases == 0
        assert queue.active_claims() == 1


class TestWorker:
    def test_drain_executes_all_cells_and_publishes_to_cache(self, tmp_path):
        queue = make_queue(tmp_path)
        cache_dir = tmp_path / "cache"
        job = submit_traces(queue, cache_dir)
        worker = Worker(queue, worker_id="w1", drain=True, poll_s=0.01)
        assert worker.run() == 2
        state = queue.status(job)
        assert state.state == "done"
        # Results live in the shared cache, not the queue.
        assert len(list(cache_dir.glob("*.npz"))) == 2
        # Finished tasks leave no claims, tasks, or checkpoints behind.
        assert queue.drained()
        assert list((queue.root / "checkpoints").iterdir()) == []

    def test_worker_writes_per_task_logs(self, tmp_path):
        queue = make_queue(tmp_path)
        job = submit_traces(queue, tmp_path / "cache")
        Worker(queue, worker_id="w1", drain=True, poll_s=0.01).run()
        manifest = queue.manifest(job)
        state = queue.status(job)
        assert len(state.logs) == len(manifest["tasks"])
        for name in manifest["tasks"]:
            log = queue.log_path(name)
            assert log.exists()
            text = log.read_text()
            assert "claim cell=" in text and "worker=w1" in text
            assert "finish cell=" in text and "status=ok" in text
            # The done-record carries the log path for post-mortems.
            done = json.loads(
                (queue.root / "done" / f"{name}.json").read_text()
            )
            assert done["log"] == str(log)
        assert set(state.logs.values()) == {
            str(queue.log_path(name)) for name in manifest["tasks"]
        }

    def test_max_cells_bounds_the_loop(self, tmp_path):
        queue = make_queue(tmp_path)
        submit_traces(queue, tmp_path / "cache")
        worker = Worker(queue, drain=True, max_cells=1, poll_s=0.01)
        assert worker.run() == 1
        assert queue.pending_tasks() == 1

    def test_two_workers_split_the_job(self, tmp_path):
        queue = make_queue(tmp_path)
        job = submit_traces(queue, tmp_path / "cache")
        workers = [
            Worker(queue, worker_id=f"w{i}", drain=True, poll_s=0.01)
            for i in range(2)
        ]
        threads = [threading.Thread(target=w.run) for w in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert queue.status(job).state == "done"
        assert sum(w.executed for w in workers) == 2

    def test_fleet_cache_bytes_match_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        fleet_dir = tmp_path / "fleet"
        serial_ctx = make_ctx(serial_dir)
        for name in BENCHMARKS:
            serial_ctx.trace(name)
        queue = make_queue(tmp_path)
        submit_traces(queue, fleet_dir)
        Worker(queue, drain=True, poll_s=0.01).run()
        serial_files = sorted(p.name for p in serial_dir.glob("*.npz"))
        fleet_files = sorted(p.name for p in fleet_dir.glob("*.npz"))
        assert serial_files == fleet_files and serial_files
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                fleet_dir / name
            ).read_bytes()

    def test_dead_worker_leaves_checkpoint_successor_resumes(
        self, tmp_path, monkeypatch
    ):
        from repro.sampling import full as full_mod

        queue = make_queue(tmp_path, lease_s=0.05)
        cache_dir = tmp_path / "cache"
        job = submit_traces(
            queue, cache_dir, benchmarks=["164.gzip"], retries=1
        )

        original = full_mod.collect_reference_trace
        calls = {"n": 0}

        def dies_after_first_checkpoint(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                kwargs = dict(kwargs)
                real_ckpt = kwargs.get("checkpoint")

                class Dying(type(real_ckpt)):
                    def save(self, *a, **kw):
                        super().save(*a, **kw)
                        raise KeyboardInterrupt("simulated kill -9")

                kwargs["checkpoint"] = Dying(real_ckpt.path)
                return original(*args, **kwargs)
            return original(*args, **kwargs)

        monkeypatch.setattr(
            full_mod, "collect_reference_trace", dies_after_first_checkpoint
        )
        # The ExperimentContext.trace closure imported the symbol at module
        # load; patch it where it is looked up.
        from repro.experiments import runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "collect_reference_trace", dies_after_first_checkpoint
        )

        w1 = Worker(
            queue, worker_id="w1", drain=True, poll_s=0.01,
            checkpoint_windows=8,
        )
        with pytest.raises(KeyboardInterrupt):
            w1.run()
        # w1 "died" mid-cell: its checkpoint survives, its lease expires.
        task_ckpts = list((queue.root / "checkpoints").glob("*/*.ckpt"))
        assert len(task_ckpts) == 1
        time.sleep(0.08)

        w2 = Worker(
            queue, worker_id="w2", drain=True, poll_s=0.01,
            checkpoint_windows=8,
        )
        assert w2.run() == 1
        assert queue.status(job).state == "done"
        [outcome] = queue.outcomes(job)
        assert outcome["attempts"] == 2 and outcome["worker"] == "w2"

        # The resumed result is byte-identical to a serial computation.
        serial_dir = tmp_path / "serial"
        ExperimentContext(
            Scale.QUICK, cache_dir=serial_dir, benchmarks=["164.gzip"]
        ).trace("164.gzip")
        [serial_npz] = sorted(serial_dir.glob("*.npz"))
        fleet_npz = cache_dir / serial_npz.name
        assert fleet_npz.read_bytes() == serial_npz.read_bytes()


class TestLocalService:
    def test_submit_wait_fetch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        service = LocalService(make_ctx(tmp_path / "cache"))
        handle = service.submit(figures="2")
        assert service.status(handle).state == "pending"
        state = service.wait(handle)
        assert state.state == "done"
        text = service.fetch(handle)
        assert "Figure 2" in text
        assert "Figure 3" not in text

    def test_fetch_before_done_raises(self, tmp_path):
        service = LocalService(make_ctx(tmp_path / "cache"))
        handle = service.submit(figures="2")
        with pytest.raises(FleetError):
            service.fetch(handle)

    def test_cancel_pending_job(self, tmp_path):
        service = LocalService(make_ctx(tmp_path / "cache"))
        handle = service.submit(figures="2")
        assert service.cancel(handle) is True
        assert service.status(handle).state == "cancelled"
        assert service.cancel(handle) is False

    def test_unknown_handle_raises(self, tmp_path):
        service = LocalService(make_ctx(tmp_path / "cache"))
        with pytest.raises(FleetError):
            service.status(JobHandle("deadbeef"))

    def test_unknown_figure_rejected(self, tmp_path):
        from repro.errors import OrchestrationError

        service = LocalService(make_ctx(tmp_path / "cache"))
        with pytest.raises(OrchestrationError):
            service.submit(figures="99")


class TestQueueService:
    def test_submit_worker_fetch_round_trip(self, tmp_path):
        ctx = make_ctx(tmp_path / "cache")
        service = QueueService(ctx, tmp_path / "queue")
        handle = service.submit(figures="2")
        assert service.status(handle).state == "pending"
        Worker(service.queue, drain=True, poll_s=0.01).run()
        state = service.wait(handle, timeout_s=1.0)
        assert state.state == "done"
        text = service.fetch(handle)
        assert "Figure 2" in text

    def test_fetch_from_fresh_process_via_manifest(self, tmp_path):
        ctx = make_ctx(tmp_path / "cache")
        submitter = QueueService(ctx, tmp_path / "queue")
        handle = submitter.submit(figures="2")
        Worker(submitter.queue, drain=True, poll_s=0.01).run()
        # A different process only knows the queue dir and the job id.
        fetcher = QueueService.from_queue(tmp_path / "queue", handle.job_id)
        assert fetcher.ctx.scale == ctx.scale
        assert fetcher.ctx.benchmarks == ctx.benchmarks
        text = fetcher.fetch(handle.job_id)
        assert "Figure 2" in text

    def test_cancel_through_service(self, tmp_path):
        service = QueueService(make_ctx(tmp_path / "cache"), tmp_path / "queue")
        handle = service.submit(figures="2")
        assert service.cancel(handle) is True
        assert service.wait(handle, timeout_s=1.0).state == "cancelled"

    def test_wait_timeout_returns_unfinished_state(self, tmp_path):
        service = QueueService(
            make_ctx(tmp_path / "cache"), tmp_path / "queue", poll_s=0.01
        )
        handle = service.submit(figures="2")
        state = service.wait(handle, timeout_s=0.05)
        assert state.state == "pending"


class TestFleetCli:
    def test_parser_jobs_submit(self):
        args = build_parser().parse_args(
            ["jobs", "submit", "--queue", "q", "--figures", "2,12"]
        )
        assert args.command == "jobs"
        assert args.jobs_command == "submit"
        assert args.figures == "2,12"
        assert args.priority == 50

    def test_parser_worker(self):
        args = build_parser().parse_args(
            ["worker", "--queue", "q", "--drain", "--max-cells", "3"]
        )
        assert args.command == "worker"
        assert args.drain and args.max_cells == 3

    def test_parser_jobs_requires_queue(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs", "submit"])

    def test_parser_run_all_queue_flag(self):
        args = build_parser().parse_args(["run-all", "--queue", "q"])
        assert args.queue == "q"

    def test_cli_submit_worker_status_fetch(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        queue = str(tmp_path / "queue")
        assert main(
            ["--scale", "quick", "jobs", "submit", "--queue", queue,
             "--figures", "2"]
        ) == 0
        job = capsys.readouterr().out.strip().splitlines()[0]

        assert main(
            ["--scale", "quick", "worker", "--queue", queue, "--drain",
             "--quiet"]
        ) == 0
        capsys.readouterr()

        assert main(["jobs", "status", "--queue", queue, job]) == 0
        status_out = capsys.readouterr().out
        assert "done" in status_out
        assert "logs:" in status_out and "task log(s)" in status_out

        assert main(["jobs", "fetch", "--queue", queue, job]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_cli_fetch_unfinished_job_fails(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        queue = str(tmp_path / "queue")
        main(["--scale", "quick", "jobs", "submit", "--queue", queue,
              "--figures", "2"])
        job = capsys.readouterr().out.strip().splitlines()[0]
        assert main(["jobs", "fetch", "--queue", queue, job]) == 2
        assert "not done" in capsys.readouterr().err

    def test_cli_cancel(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        queue = str(tmp_path / "queue")
        main(["--scale", "quick", "jobs", "submit", "--queue", queue,
              "--figures", "2"])
        job = capsys.readouterr().out.strip().splitlines()[0]
        assert main(["jobs", "cancel", "--queue", queue, job]) == 0
        assert "cancelled" in capsys.readouterr().out

    def test_cli_clear_cache_sweeps_queue(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        queue_dir = tmp_path / "queue"
        queue = JobQueue(queue_dir, lease_s=0.05)
        submit_traces(queue, tmp_path / "cache", benchmarks=["164.gzip"])
        queue.claim_next("w1")
        time.sleep(0.08)
        assert main(["clear-cache", "--queue", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 stale leases reclaimed" in out

    def test_cli_clear_cache_sweep_only_keeps_entries(
        self, tmp_path, capsys, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        cache = ResultCache(cache_dir)
        cache.json({"kind": "x"}, lambda: {"v": 1})
        (cache_dir / "dead.json.tmp").write_text("x")
        assert main(["clear-cache", "--sweep"]) == 0
        out = capsys.readouterr().out
        assert "1 tmp files removed" in out
        assert len(list(cache_dir.glob("*.json"))) == 1

"""Tests for the ISA model: opcode classes, latencies, instruction encoding."""

import pytest

from repro.errors import ProgramError
from repro.isa import (
    FU_CLASS,
    FU_LIMITS,
    Instruction,
    N_REGS,
    OP_LATENCY,
    Op,
    is_branch_op,
    is_mem_op,
)
from repro.isa.instructions import FuClass


class TestOpcodes:
    def test_every_op_has_latency(self):
        for op in Op:
            assert OP_LATENCY[op] >= 1

    def test_every_op_has_fu_class(self):
        for op in Op:
            assert FU_CLASS[op] in FuClass

    def test_divides_are_slowest(self):
        assert OP_LATENCY[Op.IDIV] > OP_LATENCY[Op.IMUL] > OP_LATENCY[Op.IALU]
        assert OP_LATENCY[Op.FDIV] > OP_LATENCY[Op.FMUL] > OP_LATENCY[Op.FALU]

    def test_mem_op_predicate(self):
        assert is_mem_op(Op.LOAD) and is_mem_op(Op.STORE)
        assert not is_mem_op(Op.IALU)
        assert not is_mem_op(Op.BRANCH)

    def test_branch_predicate(self):
        assert is_branch_op(Op.BRANCH)
        assert not is_branch_op(Op.LOAD)

    def test_fu_limits_fit_issue_width(self):
        assert all(1 <= limit <= 4 for limit in FU_LIMITS.values())
        assert FU_LIMITS[FuClass.COMPLEX] == 1  # unpipelined divide unit


class TestInstruction:
    def test_alu_instruction(self):
        inst = Instruction(Op.IALU, dst=3, src1=1, src2=2)
        assert inst.latency == OP_LATENCY[Op.IALU]

    def test_load_requires_mem_index(self):
        with pytest.raises(ProgramError):
            Instruction(Op.LOAD, dst=3, src1=1)

    def test_non_mem_rejects_mem_index(self):
        with pytest.raises(ProgramError):
            Instruction(Op.IALU, dst=3, src1=1, mem_index=0)

    def test_store_writes_no_register(self):
        with pytest.raises(ProgramError):
            Instruction(Op.STORE, dst=3, src1=1, src2=2, mem_index=0)

    def test_register_range_checked(self):
        with pytest.raises(ProgramError):
            Instruction(Op.IALU, dst=N_REGS, src1=0)
        with pytest.raises(ProgramError):
            Instruction(Op.IALU, dst=1, src1=-3)

    def test_valid_fp_registers(self):
        inst = Instruction(Op.FMUL, dst=N_REGS - 1, src1=32, src2=40)
        assert inst.dst == N_REGS - 1

    def test_frozen(self):
        inst = Instruction(Op.IALU, dst=1, src1=2)
        with pytest.raises(Exception):
            inst.dst = 5

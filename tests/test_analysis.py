"""Tests for the simlint static-analysis subsystem (`repro.analysis`).

Every rule gets a positive fixture (minimal bad snippet that must fire)
and a negative fixture (nearby good snippet that must stay silent),
plus suppression handling, reporter schema stability, the CLI contract,
and — the point of the whole exercise — a sweep over ``src/repro``
asserting the real tree is clean.
"""

import ast
import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    Severity,
    default_rules,
    lint_paths,
    lint_source,
    max_severity,
    render_json,
    render_text,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.core import JSON_SCHEMA_VERSION, PARSE_RULE_ID
from repro.analysis.determinism import (
    HostTimingRule,
    LegacyNumpyRandomRule,
    ModuleLevelRandomRule,
    SetOrderEscapeRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.analysis.hygiene import (
    EngineModeEscapeRule,
    FigureEntrypointRule,
    ForeignFrozenMutationRule,
    MissingAllRule,
    MutableDefaultRule,
    NonReproRaiseRule,
)
from repro.analysis.leakage import (
    ExperimentImportRule,
    OracleCallRule,
    StreamLookaheadRule,
)
from repro.analysis.units import UnitMixRule

SRC_REPRO = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Path prefix that puts a fixture inside the online (sampling) zone.
ONLINE = "repro/sampling/technique.py"
#: Path prefix for ordinary framework code.
PLAIN = "repro/cpu/mod.py"


def findings_for(rule_cls, source, path=PLAIN):
    """Run one rule over a dedented snippet; return its findings."""
    return lint_source(textwrap.dedent(source), path, [rule_cls()])


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestDeterminismRules:
    def test_det001_fires_on_unseeded_rng(self):
        src = """
            import random
            import numpy as np
            a = random.Random()
            b = np.random.default_rng()
            random.seed()
        """
        assert rule_ids(findings_for(UnseededRngRule, src)) == [
            "DET001",
            "DET001",
            "DET001",
        ]

    def test_det001_silent_on_seeded_rng(self):
        src = """
            import random
            import numpy as np
            a = random.Random(42)
            b = np.random.default_rng(7)
            c = random.Random(seed ^ 0x5EED)
        """
        assert findings_for(UnseededRngRule, src) == []

    def test_det002_fires_on_module_level_random(self):
        src = """
            import random
            x = random.randint(0, 5)
            random.shuffle(order)
        """
        assert rule_ids(findings_for(ModuleLevelRandomRule, src)) == [
            "DET002",
            "DET002",
        ]

    def test_det002_silent_on_instance_methods(self):
        src = """
            import random
            rng = random.Random(3)
            x = rng.randint(0, 5)
            rng.shuffle(order)
        """
        assert findings_for(ModuleLevelRandomRule, src) == []

    def test_det003_fires_on_legacy_numpy_api(self):
        src = """
            import numpy as np
            np.random.seed(1)
            x = np.random.rand(4)
        """
        assert rule_ids(findings_for(LegacyNumpyRandomRule, src)) == [
            "DET003",
            "DET003",
        ]

    def test_det003_silent_on_generator_api(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.normal(size=4)
        """
        assert findings_for(LegacyNumpyRandomRule, src) == []

    def test_det004_fires_on_wall_clock(self):
        src = """
            import time
            from datetime import datetime
            t0 = time.time()
            stamp = datetime.now()
        """
        assert rule_ids(findings_for(WallClockRule, src)) == [
            "DET004",
            "DET004",
        ]

    def test_det004_silent_on_monotonic_timing(self):
        src = """
            import time
            t0 = time.perf_counter()
        """
        assert findings_for(WallClockRule, src) == []

    def test_det005_warns_on_host_timing(self):
        src = """
            import time
            t0 = time.perf_counter()
        """
        found = findings_for(HostTimingRule, src)
        assert rule_ids(found) == ["DET005"]
        assert found[0].severity == Severity.WARNING

    def test_det005_silent_on_simulated_time(self):
        src = """
            cycles = engine.run(mode, budget)
        """
        assert findings_for(HostTimingRule, src) == []

    def test_det006_fires_on_set_iteration(self):
        src = """
            for x in {"a", "b"}:
                use(x)
            order = list(set(names))
            pairs = [f(x) for x in set(names)]
        """
        assert rule_ids(findings_for(SetOrderEscapeRule, src)) == [
            "DET006",
            "DET006",
            "DET006",
        ]

    def test_det006_silent_on_sorted_sets(self):
        src = """
            for x in sorted(set(names)):
                use(x)
            for y in [1, 2]:
                use(y)
        """
        assert findings_for(SetOrderEscapeRule, src) == []


class TestLeakageRules:
    def test_lea001_fires_on_experiment_imports(self):
        src = """
            import repro.experiments
            from repro.experiments import runner
            from ..experiments import cache
            from .. import experiments
        """
        assert rule_ids(findings_for(ExperimentImportRule, src, ONLINE)) == [
            "LEA001",
            "LEA001",
            "LEA001",
            "LEA001",
        ]

    def test_lea001_silent_outside_online_zone(self):
        src = """
            from repro.experiments import runner
        """
        assert findings_for(ExperimentImportRule, src, PLAIN) == []

    def test_lea001_silent_on_peer_imports(self):
        src = """
            from .base import SamplingTechnique
            from ..stats import ci_halfwidth
        """
        assert findings_for(ExperimentImportRule, src, ONLINE) == []

    def test_lea002_fires_on_oracle_access(self):
        src = """
            trace = collect_reference_trace(program, window)
            ipc = trace.true_ipc
        """
        assert rule_ids(findings_for(OracleCallRule, src, ONLINE)) == [
            "LEA002",
            "LEA002",
        ]

    def test_lea002_exempts_the_oracle_module_itself(self):
        src = """
            trace = collect_reference_trace(program, window)
        """
        path = "repro/sampling/full.py"
        assert findings_for(OracleCallRule, src, path) == []
        assert findings_for(OracleCallRule, src, PLAIN) == []

    def test_lea003_fires_on_stream_lookahead(self):
        src = """
            import itertools
            ahead, behind = itertools.tee(stream)
            future = list(stream)
        """
        assert rule_ids(findings_for(StreamLookaheadRule, src, ONLINE)) == [
            "LEA003",
            "LEA003",
        ]

    def test_lea003_silent_on_ordinary_lists(self):
        src = """
            samples = list(sample_ids)
            history = list(self._window)
        """
        assert findings_for(StreamLookaheadRule, src, ONLINE) == []


class TestHygieneRules:
    def test_hyg001_fires_on_builtin_raise(self):
        src = """
            def f(x):
                raise ValueError("bad x")
        """
        assert rule_ids(findings_for(NonReproRaiseRule, src)) == ["HYG001"]

    def test_hyg001_silent_on_repro_errors_and_stubs(self):
        src = """
            def f(x):
                raise SamplingError("bad x")

            def g(self):
                raise NotImplementedError

            def __next__(self):
                raise StopIteration
        """
        assert findings_for(NonReproRaiseRule, src) == []

    def test_hyg001_flags_stop_iteration_outside_next(self):
        src = """
            def pump(self):
                raise StopIteration
        """
        assert rule_ids(findings_for(NonReproRaiseRule, src)) == ["HYG001"]

    def test_hyg002_fires_on_mutable_defaults(self):
        src = """
            def f(xs=[], *, table={}):
                return xs, table
        """
        assert rule_ids(findings_for(MutableDefaultRule, src)) == [
            "HYG002",
            "HYG002",
        ]

    def test_hyg002_silent_on_immutable_defaults(self):
        src = """
            def f(xs=None, pair=(), name="x"):
                return xs, pair, name
        """
        assert findings_for(MutableDefaultRule, src) == []

    def test_hyg003_warns_on_missing_all(self):
        src = """
            '''A public module.'''

            def estimate(x):
                return x
        """
        found = findings_for(MissingAllRule, src)
        assert rule_ids(found) == ["HYG003"]
        assert found[0].severity == Severity.WARNING

    def test_hyg003_silent_with_all_or_private(self):
        src = """
            '''A public module.'''

            __all__ = ["estimate"]

            def estimate(x):
                return x
        """
        assert findings_for(MissingAllRule, src) == []
        private_src = """
            def _helper(x):
                return x
        """
        assert findings_for(MissingAllRule, private_src) == []
        assert findings_for(MissingAllRule, src.replace("__all__", "other"),
                            "repro/cpu/_internal.py") == []

    def test_hyg004_fires_on_foreign_frozen_mutation(self):
        src = """
            object.__setattr__(result, "_cache", value)
        """
        assert rule_ids(findings_for(ForeignFrozenMutationRule, src)) == [
            "HYG004"
        ]

    def test_hyg004_silent_on_self_mutation(self):
        src = """
            def __post_init__(self):
                object.__setattr__(self, "_cache", value)
        """
        assert findings_for(ForeignFrozenMutationRule, src) == []

    def test_hyg005_fires_on_literal_mode_scheduling(self):
        src = """
            def collect(engine):
                engine.run(Mode.DETAIL, 1_000)
                engine.run_to_end(cpu.Mode.FUNC_FAST)
        """
        assert rule_ids(findings_for(EngineModeEscapeRule, src)) == [
            "HYG005",
            "HYG005",
        ]

    def test_hyg005_silent_on_mode_variables_and_other_calls(self):
        src = """
            def drive(engine, mode):
                engine.run(mode, 1_000)
                engine.run_to_end(mode)
                technique.run(program)
                session.run_segment(segment)
        """
        assert findings_for(EngineModeEscapeRule, src) == []

    def test_hyg005_exempts_the_session_kernel(self):
        src = """
            def run_segment(self, segment):
                return self.engine.run(Mode.DETAIL, 100)
        """
        assert findings_for(
            EngineModeEscapeRule, src, "repro/sampling/session.py"
        ) == []
        assert rule_ids(
            findings_for(EngineModeEscapeRule, src, "repro/sampling/smarts.py")
        ) == ["HYG005"]

    def test_hyg006_fires_on_direct_figure_run_calls(self):
        src = """
            from repro.experiments import fig11_pgss_sweep
            from repro.experiments import fig12_technique_comparison as cmp12
            from repro.experiments.tradeoff import run as run_tradeoff

            def reproduce(ctx):
                a = fig11_pgss_sweep.run(ctx)
                b = cmp12.run(ctx)
                c = run_tradeoff(ctx)
                return a, b, c
        """
        assert rule_ids(findings_for(FigureEntrypointRule, src)) == [
            "HYG006",
            "HYG006",
            "HYG006",
        ]

    def test_hyg006_silent_on_non_figure_run_calls(self):
        src = """
            from repro.sampling.stratified import TwoPhaseStratified

            def drive(ctx, technique, program, session):
                technique.run(program)
                session.run(plan)
                TwoPhaseStratified(cfg).run(program)
        """
        assert findings_for(FigureEntrypointRule, src) == []

    def test_hyg006_exempts_the_service_packages(self):
        src = """
            from repro.experiments import fig11_pgss_sweep

            def assemble(ctx):
                return fig11_pgss_sweep.run(ctx)
        """
        assert findings_for(
            FigureEntrypointRule, src, "repro/experiments/report.py"
        ) == []
        assert findings_for(
            FigureEntrypointRule, src, "repro/fleet/service.py"
        ) == []
        assert rule_ids(
            findings_for(FigureEntrypointRule, src, "repro/cpu/mod.py")
        ) == ["HYG006"]


class TestUnitsRule:
    def test_uni001_fires_on_additive_mixing(self):
        src = """
            total = warm_ops + drain_cycles
            budget_ops -= stall_cycles
            if sample_ops > total_cycles:
                pass
        """
        assert rule_ids(findings_for(UnitMixRule, src)) == [
            "UNI001",
            "UNI001",
            "UNI001",
        ]

    def test_uni001_silent_on_conversions_and_same_family(self):
        src = """
            ipc = retired_ops / total_cycles
            cpi = total_cycles / retired_ops
            total_ops = warm_ops + sampled_ops
            span_cycles = warm_cycles + drain_cycles
            scaled = total_ops * 2
        """
        assert findings_for(UnitMixRule, src) == []


class TestEngine:
    def test_parse_error_becomes_finding(self):
        found = lint_source("def broken(:\n", "repro/cpu/bad.py",
                            default_rules())
        assert rule_ids(found) == [PARSE_RULE_ID]
        assert found[0].severity == Severity.ERROR

    def test_suppression_silences_named_rule(self):
        src = "t0 = time.time()  # simlint: disable=DET004\n"
        assert lint_source(src, PLAIN, [WallClockRule()]) == []

    def test_suppression_without_ids_silences_everything(self):
        src = "t0 = time.time()  # simlint: disable\n"
        assert lint_source(src, PLAIN, default_rules()) == []

    def test_suppression_is_line_scoped_and_rule_scoped(self):
        src = (
            "t0 = time.time()  # simlint: disable=DET001\n"
            "t1 = time.time()\n"
        )
        found = lint_source(src, PLAIN, [WallClockRule()])
        assert [(f.rule_id, f.line) for f in found] == [
            ("DET004", 1),
            ("DET004", 2),
        ]

    def test_at_least_eight_distinct_rules(self):
        ids = [rule.rule_id for rule in default_rules()]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 8
        assert ids == sorted(ids)

    def test_findings_sorted_and_stable(self):
        src = """
            import time
            b = time.time()
            a = random.Random()
        """
        found = findings_for(UnseededRngRule, src)
        found += lint_source(textwrap.dedent(src), PLAIN, [WallClockRule()])
        merged = lint_source(
            textwrap.dedent(src), PLAIN, [WallClockRule(), UnseededRngRule()]
        )
        assert [f.sort_key() for f in merged] == sorted(
            f.sort_key() for f in found
        )


class TestReporters:
    SRC = """
        import time
        t0 = time.time()
        t1 = time.perf_counter()
    """

    def _findings(self):
        return lint_source(
            textwrap.dedent(self.SRC),
            PLAIN,
            [WallClockRule(), HostTimingRule()],
        )

    def test_text_report_format(self):
        text = render_text(self._findings())
        assert "repro/cpu/mod.py:3:6: DET004 error:" in text
        assert "repro/cpu/mod.py:4:6: DET005 warning:" in text
        assert "2 finding(s): 1 error(s), 1 warning(s)" in text

    def test_json_schema_stability(self):
        document = json.loads(render_json(self._findings()))
        assert sorted(document) == ["findings", "summary", "tool", "version"]
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["tool"] == "pgss-lint"
        assert document["summary"] == {
            "total": 2,
            "errors": 1,
            "warnings": 1,
            "max_severity": 2,
        }
        for finding in document["findings"]:
            assert sorted(finding) == [
                "col",
                "end_line",
                "line",
                "message",
                "path",
                "rule",
                "severity",
            ]
            assert finding["end_line"] >= finding["line"]
        assert document["findings"][0]["rule"] == "DET004"
        assert document["findings"][0]["severity"] == "error"

    def test_json_findings_sorted_and_deterministic(self):
        found = self._findings()
        assert render_json(found) == render_json(list(reversed(found)))
        document = json.loads(render_json(found))
        keys = [
            (f["path"], f["line"], f["col"], f["rule"])
            for f in document["findings"]
        ]
        assert keys == sorted(keys)

    def test_json_stats_block(self):
        stats = {"modules_total": 3, "modules_extracted": 1}
        document = json.loads(render_json(self._findings(), stats=stats))
        assert sorted(document) == [
            "analysis",
            "findings",
            "summary",
            "tool",
            "version",
        ]
        assert document["analysis"] == stats

    def test_max_severity_levels(self):
        found = self._findings()
        assert max_severity(found) == 2
        assert max_severity([f for f in found if f.rule_id == "DET005"]) == 1
        assert max_severity([]) == 0


class TestCli:
    def _write(self, tmp_path, name, body):
        path = tmp_path / name
        path.write_text(textwrap.dedent(body))
        return str(path)

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "UNI001" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "clean.py",
            """
            '''Clean module.'''

            __all__ = ["f"]

            def f(x):
                return x
            """,
        )
        assert lint_main([path]) == 0
        assert capsys.readouterr().out == ""

    def test_error_file_exits_two(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "dirty.py",
            """
            '''Dirty module.'''

            __all__ = []
            import time
            t0 = time.time()
            """,
        )
        assert lint_main([path]) == 2
        assert "DET004" in capsys.readouterr().out

    def test_warning_only_exits_one(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "warn.py",
            """
            '''Warning module.'''

            __all__ = []
            import time
            t0 = time.perf_counter()
            """,
        )
        assert lint_main([path]) == 1
        assert "DET005" in capsys.readouterr().out

    def test_select_and_ignore(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "mixed.py",
            """
            '''Mixed module.'''

            __all__ = []
            import time
            t0 = time.time()
            """,
        )
        assert lint_main([path, "--select", "DET005"]) == 0
        capsys.readouterr()
        assert lint_main([path, "--ignore", "DET004"]) == 0

    def test_json_output(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "json_mod.py",
            """
            '''JSON module.'''

            __all__ = []
            import time
            t0 = time.time()
            """,
        )
        assert lint_main([path, "--format", "json"]) == 2
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == 1


class TestRealTree:
    def test_src_repro_is_clean(self):
        """The linter's reason to exist: the shipped tree has no findings."""
        findings = lint_paths([str(SRC_REPRO)], default_rules())
        assert findings == [], render_text(findings)

    def test_typing_gate_packages_fully_annotated(self):
        """AST-level stand-in for mypy's disallow_untyped_defs gate."""
        missing = []
        gated = [SRC_REPRO / "events.py"]
        for pkg in (
            "analysis",
            "bbv",
            "clustering",
            "cpu",
            "experiments",
            "phase",
            "program",
            "sampling",
            "signals",
            "stats",
        ):
            gated.extend(sorted((SRC_REPRO / pkg).rglob("*.py")))
        for path in gated:
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                args = node.args
                unannotated = [
                    a.arg
                    for a in (
                        args.posonlyargs + args.args + args.kwonlyargs
                    )
                    if a.annotation is None
                    and a.arg not in ("self", "cls")
                ]
                if node.returns is None and node.name != "__init__":
                    unannotated.append("return")
                if unannotated:
                    missing.append(
                        f"{path.name}:{node.lineno} {node.name} "
                        f"{unannotated}"
                    )
        assert not missing, missing

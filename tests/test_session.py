"""Unit tests for the sampling-session kernel and event bus."""

import pytest

from repro import EstimateError, ReproError, Scale, SimulationEngine
from repro.cpu import Mode
from repro.events import (
    EstimateUpdated,
    EventBus,
    PhaseChange,
    SampleTaken,
    SegmentEnd,
    SegmentStart,
    SessionEvent,
)
from repro.sampling import (
    PAUSE,
    ModeSegment,
    SamplingResult,
    SamplingSession,
    SamplingTechnique,
    SegmentRole,
    SessionDriver,
    periodic_plan,
    run_to_end_plan,
)

from conftest import make_two_phase_program


class TestEventBus:
    def test_subscribe_and_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SampleTaken, seen.append)
        event = SampleTaken(index=0, op_offset=10, ops=5, cycles=4)
        bus.emit(event)
        assert seen == [event]

    def test_handlers_only_see_their_type(self):
        bus = EventBus()
        samples, segments = [], []
        bus.subscribe(SampleTaken, samples.append)
        bus.subscribe(SegmentStart, segments.append)
        bus.emit(SampleTaken(index=0, op_offset=0, ops=1, cycles=1))
        assert len(samples) == 1 and len(segments) == 0

    def test_base_class_subscription_sees_subclasses(self):
        bus = EventBus()
        everything = []
        bus.subscribe(SessionEvent, everything.append)
        bus.emit(SampleTaken(index=0, op_offset=0, ops=1, cycles=1))
        bus.emit(PhaseChange(phase_id=1, previous_phase_id=0, created=False,
                             distance=0.5, n_observations=3))
        assert len(everything) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SampleTaken, seen.append)
        bus.unsubscribe(SampleTaken, seen.append)
        bus.emit(SampleTaken(index=0, op_offset=0, ops=1, cycles=1))
        assert seen == []

    def test_sample_ipc_property(self):
        assert SampleTaken(index=0, op_offset=0, ops=8, cycles=4).ipc == 2.0


class TestSamplingSession:
    def _engine(self):
        return SimulationEngine(make_two_phase_program())

    def test_measured_segment_records_sample(self):
        session = SamplingSession(self._engine())
        outcome = session.run_segment(
            ModeSegment(Mode.DETAIL, 500, role=SegmentRole.SAMPLE, measure=True)
        )
        assert outcome.sample is not None
        assert session.n_samples == 1
        assert session.samples[0].op_offset == 0
        assert outcome.sample.ops >= 500

    def test_unmeasured_segment_records_nothing(self):
        session = SamplingSession(self._engine())
        outcome = session.run_segment(ModeSegment(Mode.FUNC_FAST, 1_000))
        assert outcome.sample is None
        assert session.n_samples == 0
        assert outcome.end_offset >= 1_000

    def test_segment_events_emitted_in_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(SegmentStart, lambda e: order.append("start"))
        bus.subscribe(SegmentEnd, lambda e: order.append("end"))
        bus.subscribe(SampleTaken, lambda e: order.append("sample"))
        session = SamplingSession(self._engine(), bus=bus)
        session.run_segment(ModeSegment(Mode.DETAIL, 500, measure=True))
        assert order == ["start", "end", "sample"]

    def test_offsets_are_program_global(self):
        session = SamplingSession(self._engine())
        session.run_segment(ModeSegment(Mode.FUNC_FAST, 2_000))
        outcome = session.run_segment(
            ModeSegment(Mode.DETAIL, 500, measure=True)
        )
        assert outcome.start_offset >= 2_000
        assert outcome.sample.op_offset == outcome.start_offset


class TestSessionDriver:
    def test_plan_without_pauses_completes_in_one_step(self):
        engine = SimulationEngine(make_two_phase_program())
        session = SamplingSession(engine)
        driver = session.driver(run_to_end_plan(Mode.FUNC_FAST, 10_000))
        assert driver.step() is False
        assert driver.done
        assert engine.exhausted

    def test_pause_yields_control_between_iterations(self):
        engine = SimulationEngine(make_two_phase_program())
        session = SamplingSession(engine)

        def plan():
            for _ in range(3):
                yield ModeSegment(Mode.FUNC_FAST, 1_000)
                yield PAUSE

        driver = SessionDriver(session, plan())
        steps = 0
        while driver.step():
            steps += 1
        assert steps == 3

    def test_outcome_is_sent_back_into_the_plan(self):
        engine = SimulationEngine(make_two_phase_program())
        session = SamplingSession(engine)
        got = []

        def plan():
            outcome = yield ModeSegment(Mode.FUNC_FAST, 1_000)
            got.append(outcome)

        session.execute(plan())
        assert got[0].run.ops >= 1_000
        assert got[0].start_offset == 0

    def test_step_after_done_returns_false(self):
        engine = SimulationEngine(make_two_phase_program())
        session = SamplingSession(engine)
        driver = session.driver(run_to_end_plan(Mode.FUNC_FAST))
        driver.run()
        assert driver.step() is False

    def test_periodic_plan_shape(self):
        engine = SimulationEngine(make_two_phase_program())
        session = SamplingSession(engine)
        session.execute(periodic_plan(Mode.FUNC_WARM, 7_000, 500, 500))
        assert session.n_samples > 5
        offsets = [s.op_offset for s in session.samples]
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(abs(g - 8_000) < 600 for g in gaps)


class TestPercentError:
    def test_zero_true_ipc_raises_estimate_error(self):
        result = SamplingResult(
            technique="x", program="p", ipc_estimate=1.0,
            detailed_ops=0, total_ops=0,
        )
        with pytest.raises(EstimateError):
            result.percent_error(0.0)

    def test_estimate_error_is_value_error_and_repro_error(self):
        result = SamplingResult(
            technique="x", program="p", ipc_estimate=1.0,
            detailed_ops=0, total_ops=0,
        )
        with pytest.raises(ValueError):
            result.percent_error(0.0)
        with pytest.raises(ReproError):
            result.percent_error(0.0)

    def test_nonzero_reference_still_works(self):
        result = SamplingResult(
            technique="x", program="p", ipc_estimate=1.1,
            detailed_ops=0, total_ops=0,
        )
        assert result.percent_error(1.0) == pytest.approx(10.0)


class TestAbstractTechnique:
    def test_cannot_instantiate_without_run(self):
        class Incomplete(SamplingTechnique):
            name = "incomplete"

        with pytest.raises(TypeError):
            Incomplete()

    def test_subclass_with_run_instantiates(self):
        class Complete(SamplingTechnique):
            name = "complete"

            def run(self, program, **kwargs):
                return SamplingResult(
                    technique=self.name, program=program.name,
                    ipc_estimate=0.0, detailed_ops=0, total_ops=0,
                )

        assert Complete().name == "complete"


class TestTechniqueEvents:
    def test_pgss_emits_phase_and_sample_events(self):
        from repro.sampling import Pgss, PgssConfig

        bus = EventBus()
        samples, phases, estimates = [], [], []
        bus.subscribe(SampleTaken, samples.append)
        bus.subscribe(PhaseChange, phases.append)
        bus.subscribe(EstimateUpdated, estimates.append)
        cfg = PgssConfig.from_scale(Scale.QUICK)
        result = Pgss(cfg).run(make_two_phase_program(), bus=bus)
        assert len(samples) == result.n_samples
        assert [s.op_offset for s in samples] == sorted(
            s.op_offset for s in samples
        )
        assert len(phases) >= result.extras["n_phases"]
        assert estimates and estimates[-1].final
        assert estimates[-1].ipc == result.ipc_estimate

    def test_smarts_sample_events_match_result(self):
        from repro.sampling import Smarts, SmartsConfig

        bus = EventBus()
        samples = []
        bus.subscribe(SampleTaken, samples.append)
        cfg = SmartsConfig.from_scale(Scale.QUICK)
        result = Smarts(cfg).run(make_two_phase_program(), bus=bus)
        assert len(samples) == result.n_samples


class TestAdaptiveSelectorEvents:
    def test_select_emits_threshold_selected(self):
        import numpy as np

        from repro.events import ThresholdSelected
        from repro.phase import AdaptiveThresholdSelector

        rng = np.random.default_rng(3)
        bbvs = []
        for i in range(12):
            v = np.zeros(8)
            v[i % 2] = 1.0
            v += rng.normal(0, 0.01, 8)
            bbvs.append(v / np.linalg.norm(v))
        chosen = []
        bus = EventBus()
        bus.subscribe(ThresholdSelected, chosen.append)
        selector = AdaptiveThresholdSelector(bus=bus)
        threshold = selector.select(bbvs)
        assert len(chosen) == 1
        assert chosen[0].threshold == threshold

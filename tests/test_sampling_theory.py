"""Tests for the stratified-sampling theory helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimateError, SamplingError
from repro.stats.sampling_theory import (
    neyman_allocation,
    pool_singleton_strata,
    population_variance,
    required_samples_comparison,
    stratification_gain,
    stratified_mean_ci,
    within_stratum_variance,
)


def bimodal_population(n=1000, lo=0.2, hi=2.0, seed=0):
    rng = np.random.default_rng(seed)
    half = n // 2
    values = np.concatenate(
        [rng.normal(lo, 0.02, half), rng.normal(hi, 0.02, n - half)]
    )
    labels = [0] * half + [1] * (n - half)
    return values.tolist(), labels


class TestVariances:
    def test_population_variance(self):
        assert population_variance([1.0, 3.0]) == pytest.approx(1.0)

    def test_within_stratum_variance_pooled(self):
        values = [1.0, 1.0, 3.0, 3.0]
        labels = [0, 0, 1, 1]
        assert within_stratum_variance(values, labels) == 0.0

    def test_within_less_than_population_for_separated_strata(self):
        values, labels = bimodal_population()
        assert within_stratum_variance(values, labels) < 0.05
        assert population_variance(values) > 0.5

    def test_single_stratum_equals_population(self):
        values = [1.0, 2.0, 5.0, 0.5]
        assert within_stratum_variance(values, [0] * 4) == pytest.approx(
            population_variance(values)
        )

    def test_validation(self):
        with pytest.raises(SamplingError):
            population_variance([])
        with pytest.raises(SamplingError):
            within_stratum_variance([1.0], [0, 1])


class TestGain:
    def test_bimodal_gain_large(self):
        values, labels = bimodal_population()
        assert stratification_gain(values, labels) > 40.0

    def test_useless_labels_gain_one(self):
        rng = np.random.default_rng(1)
        values = rng.normal(1.0, 0.3, 500).tolist()
        labels = (np.arange(500) % 2).tolist()  # arbitrary split
        assert stratification_gain(values, labels) == pytest.approx(1.0, rel=0.1)

    def test_constant_strata_infinite(self):
        assert stratification_gain([1.0, 1.0, 2.0, 2.0], [0, 0, 1, 1]) == float(
            "inf"
        )

    @given(
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=8, max_size=60)
    )
    @settings(max_examples=50, deadline=None)
    def test_gain_at_least_for_any_labelling(self, values):
        """Within-stratum variance never exceeds population variance by
        much... in fact proportional-allocation pooled variance is always
        <= population variance (law of total variance)."""
        labels = [i % 3 for i in range(len(values))]
        pop = population_variance(values)
        within = within_stratum_variance(values, labels)
        assert within <= pop + 1e-9


class TestPoolSingletonStrata:
    def test_no_singletons_is_identity(self):
        labels = [0, 0, 1, 1]
        assert pool_singleton_strata([1.0, 1.1, 3.0, 3.1], labels) == labels

    def test_singleton_merges_into_nearest_mean(self):
        # Value 2.9 (label 2) is nearest stratum 1's mean of 3.05.
        pooled = pool_singleton_strata(
            [1.0, 1.1, 3.0, 3.1, 2.9], [0, 0, 1, 1, 2]
        )
        assert pooled == [0, 0, 1, 1, 1]

    def test_all_singletons_pool_to_multi_member_strata(self):
        pooled = pool_singleton_strata([1.0, 2.0, 3.0, 4.0], [0, 1, 2, 3])
        counts = {label: pooled.count(label) for label in set(pooled)}
        assert all(count >= 2 for count in counts.values())

    def test_population_of_one_raises(self):
        with pytest.raises(EstimateError):
            pool_singleton_strata([1.0], [0])

    def test_all_singletons_gain_no_longer_infinite(self):
        # Pre-fix, labelling every value uniquely faked a perfect
        # stratification (within-variance 0, gain inf).
        gain = stratification_gain([1.0, 2.0, 3.0, 4.0], [0, 1, 2, 3])
        assert np.isfinite(gain)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=2, max_size=40),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_pooled_labels_never_leave_singletons(self, values, n_strata):
        labels = [i % n_strata for i in range(len(values))]
        pooled = pool_singleton_strata(values, labels)
        counts = {label: pooled.count(label) for label in set(pooled)}
        assert len(pooled) == len(values)
        assert all(count >= 2 for count in counts.values())


class TestNeymanAllocation:
    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=12),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_sums_to_budget_with_stratum_minimum(self, sizes, data):
        if not any(sizes):
            sizes = sizes + [1]
        stds = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0),
                min_size=len(sizes),
                max_size=len(sizes),
            )
        )
        nonempty = sum(1 for s in sizes if s > 0)
        budget = data.draw(st.integers(min_value=nonempty, max_value=nonempty + 200))
        alloc = neyman_allocation(sizes, stds, budget)
        assert sum(alloc) == budget
        for size, n in zip(sizes, alloc):
            if size > 0:
                assert n >= 1
            else:
                assert n == 0

    def test_equal_stds_proportional(self):
        alloc = neyman_allocation([100, 200, 300], [1.0, 1.0, 1.0], 60)
        assert alloc == [10, 20, 30]

    def test_zero_stds_fall_back_to_proportional(self):
        # Singleton pilots produce std 0.0 everywhere; the budget must
        # still be divided (by size), never by zero.
        alloc = neyman_allocation([100, 300], [0.0, 0.0], 8)
        assert alloc == [2, 6]
        assert all(np.isfinite(alloc))

    def test_high_variance_stratum_dominates(self):
        alloc = neyman_allocation([100, 100], [0.1, 10.0], 20)
        assert alloc[1] > alloc[0]
        assert alloc[0] >= 1

    def test_budget_below_strata_count_rejected(self):
        with pytest.raises(SamplingError):
            neyman_allocation([10, 10, 10], [1.0, 1.0, 1.0], 2)

    def test_validation(self):
        with pytest.raises(SamplingError):
            neyman_allocation([10], [1.0, 2.0], 5)
        with pytest.raises(SamplingError):
            neyman_allocation([-1], [1.0], 5)
        with pytest.raises(SamplingError):
            neyman_allocation([10], [float("nan")], 5)
        with pytest.raises(SamplingError):
            neyman_allocation([0, 0], [1.0, 1.0], 5)


class TestStratifiedMeanCi:
    def test_point_estimate_is_ops_weighted(self):
        ci = stratified_mean_ci(
            {0: 300, 1: 100}, {0: [1.0, 1.0], 1: [2.0, 2.0]}
        )
        assert ci.mean == pytest.approx(0.75 * 1.0 + 0.25 * 2.0)

    def test_singleton_stratum_borrows_pooled_variance(self):
        ci = stratified_mean_ci(
            {0: 100, 1: 100}, {0: [1.0, 1.2, 0.8], 1: [2.0]}
        )
        assert np.isfinite(ci.half_width)
        assert ci.half_width > 0.0
        assert ci.n == 4

    def test_all_singletons_infinite_half_width(self):
        ci = stratified_mean_ci({0: 100, 1: 100}, {0: [1.0], 1: [2.0]})
        assert ci.half_width == float("inf")
        assert not np.isnan(ci.mean)

    def test_uncovered_strata_ignored(self):
        ci = stratified_mean_ci({0: 100, 1: 900}, {0: [1.0, 1.1], 1: []})
        assert ci.mean == pytest.approx(1.05)

    def test_no_samples_rejected(self):
        with pytest.raises(SamplingError):
            stratified_mean_ci({0: 100}, {0: []})


class TestRequiredSamplesComparison:
    def test_bimodal_comparison(self):
        values, labels = bimodal_population()
        result = required_samples_comparison(values, labels)
        assert result["stratified"] < result["unstratified"]
        assert result["gain"] > 40.0

    def test_zero_mean_rejected(self):
        with pytest.raises(SamplingError):
            required_samples_comparison([-1.0, 1.0], [0, 1])

    def test_keys(self):
        values, labels = bimodal_population(n=100)
        result = required_samples_comparison(values, labels)
        assert set(result) == {"unstratified", "stratified", "gain"}

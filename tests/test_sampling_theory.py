"""Tests for the stratified-sampling theory helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.stats.sampling_theory import (
    population_variance,
    required_samples_comparison,
    stratification_gain,
    within_stratum_variance,
)


def bimodal_population(n=1000, lo=0.2, hi=2.0, seed=0):
    rng = np.random.default_rng(seed)
    half = n // 2
    values = np.concatenate(
        [rng.normal(lo, 0.02, half), rng.normal(hi, 0.02, n - half)]
    )
    labels = [0] * half + [1] * (n - half)
    return values.tolist(), labels


class TestVariances:
    def test_population_variance(self):
        assert population_variance([1.0, 3.0]) == pytest.approx(1.0)

    def test_within_stratum_variance_pooled(self):
        values = [1.0, 1.0, 3.0, 3.0]
        labels = [0, 0, 1, 1]
        assert within_stratum_variance(values, labels) == 0.0

    def test_within_less_than_population_for_separated_strata(self):
        values, labels = bimodal_population()
        assert within_stratum_variance(values, labels) < 0.05
        assert population_variance(values) > 0.5

    def test_single_stratum_equals_population(self):
        values = [1.0, 2.0, 5.0, 0.5]
        assert within_stratum_variance(values, [0] * 4) == pytest.approx(
            population_variance(values)
        )

    def test_validation(self):
        with pytest.raises(SamplingError):
            population_variance([])
        with pytest.raises(SamplingError):
            within_stratum_variance([1.0], [0, 1])


class TestGain:
    def test_bimodal_gain_large(self):
        values, labels = bimodal_population()
        assert stratification_gain(values, labels) > 40.0

    def test_useless_labels_gain_one(self):
        rng = np.random.default_rng(1)
        values = rng.normal(1.0, 0.3, 500).tolist()
        labels = (np.arange(500) % 2).tolist()  # arbitrary split
        assert stratification_gain(values, labels) == pytest.approx(1.0, rel=0.1)

    def test_constant_strata_infinite(self):
        assert stratification_gain([1.0, 1.0, 2.0, 2.0], [0, 0, 1, 1]) == float(
            "inf"
        )

    @given(
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=8, max_size=60)
    )
    @settings(max_examples=50, deadline=None)
    def test_gain_at_least_for_any_labelling(self, values):
        """Within-stratum variance never exceeds population variance by
        much... in fact proportional-allocation pooled variance is always
        <= population variance (law of total variance)."""
        labels = [i % 3 for i in range(len(values))]
        pop = population_variance(values)
        within = within_stratum_variance(values, labels)
        assert within <= pop + 1e-9


class TestRequiredSamplesComparison:
    def test_bimodal_comparison(self):
        values, labels = bimodal_population()
        result = required_samples_comparison(values, labels)
        assert result["stratified"] < result["unstratified"]
        assert result["gain"] > 40.0

    def test_zero_mean_rejected(self):
        with pytest.raises(SamplingError):
            required_samples_comparison([-1.0, 1.0], [0, 1])

    def test_keys(self):
        values, labels = bimodal_population(n=100)
        result = required_samples_comparison(values, labels)
        assert set(result) == {"unstratified", "stratified", "gain"}

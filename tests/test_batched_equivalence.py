"""Scalar vs. batched engine equivalence — the batching correctness gate.

The batched fast-forward layer (``ProgramStream.next_events`` +
``BbvTracker.record_batch`` + the engine's batched dispatch) claims to be
*bit-identical* to the scalar event loop: same stream state (including RNG
draw order), same BBV register file, same machine state, same op
accounting.  Every sampling technique rests on that claim, so it is
checked here three ways:

* stream level: run expansion reproduces the scalar event sequence and
  lands in an equal ``snapshot()`` at arbitrary batch boundaries;
* engine level (hypothesis): interleaved ``run()`` calls of random modes
  and lengths, with and without a tracker, keep a scalar and a batched
  engine in equal snapshot states after every call;
* technique level: PGSS end-to-end produces an identical
  ``SamplingResult`` on three workloads either way.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BbvTracker,
    Mode,
    ProgramStream,
    Scale,
    SimulationEngine,
    get_workload,
)
from repro.sampling.pgss import Pgss, PgssConfig
from conftest import make_two_phase_program

WORKLOADS = ("164.gzip", "197.parser", "256.bzip2")


def _workload(name):
    if name == "two_phase":
        return make_two_phase_program()
    return get_workload(name, Scale.QUICK)


class TestStreamEquivalence:
    @pytest.mark.parametrize("name", ("two_phase",) + WORKLOADS)
    def test_run_expansion_matches_scalar_events(self, name):
        program = _workload(name)
        scalar = ProgramStream(program)
        batched = ProgramStream(program)
        expanded = [
            (e.block.bid, e.taken, e.k)
            for run in batched.next_events(10**9)
            for e in run.events()
        ]
        events = [(e.block.bid, e.taken, e.k) for e in scalar]
        assert expanded == events
        assert scalar.snapshot() == batched.snapshot()

    @given(st.lists(st.integers(min_value=1, max_value=25_000), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_snapshot_equal_at_arbitrary_batch_boundaries(self, batches):
        program = make_two_phase_program()
        scalar = ProgramStream(program)
        batched = ProgramStream(program)
        for max_ops in batches:
            # Scalar reference: the engine's while-loop contract.
            got = 0
            while got < max_ops:
                event = scalar.next_event()
                if event is None:
                    break
                got += event.block.n_ops
            runs = batched.next_events(max_ops)
            assert sum(r.ops for r in runs) == got
            assert scalar.snapshot() == batched.snapshot()

    def test_next_events_empty_after_exhaustion(self, two_phase_program):
        stream = ProgramStream(two_phase_program)
        stream.next_events(10**9)
        assert stream.exhausted
        assert stream.next_events(1_000) == []
        assert stream.next_events(0) == []

    def test_runs_collapse_loop_iterations(self, two_phase_program):
        """The whole point: far fewer runs than dynamic blocks."""
        stream = ProgramStream(two_phase_program)
        runs = stream.next_events(50_000)
        n_events = sum(r.n for r in runs)
        assert n_events > 10 * len(runs)


class TestEngineEquivalence:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_interleaved_modes_keep_snapshots_equal(self, seed, with_tracker):
        """Satellite invariant: any interleaving of run() calls leaves the
        scalar and batched engines in identical snapshot states."""
        program = make_two_phase_program()
        rng = random.Random(seed)
        t1 = BbvTracker() if with_tracker else None
        t2 = BbvTracker() if with_tracker else None
        scalar = SimulationEngine(program, bbv_tracker=t1, batched=False)
        batched = SimulationEngine(program, bbv_tracker=t2, batched=True)
        modes = list(Mode)
        for _ in range(12):
            mode = rng.choice(modes)
            n_ops = rng.randint(1, 25_000)
            r1 = scalar.run(mode, n_ops)
            r2 = batched.run(mode, n_ops)
            assert (r1.ops, r1.cycles, r1.exhausted) == (r2.ops, r2.cycles, r2.exhausted)
            assert scalar.snapshot() == batched.snapshot()
        assert scalar.accounting.ops == batched.accounting.ops

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [Mode.DETAIL, Mode.DETAIL_WARM, Mode.FUNC_WARM]
                ),
                st.integers(min_value=1, max_value=30_000),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_detail_windows_byte_identical_on_real_workload(self, windows):
        """The batched detailed pipeline's claim, checked the hard way:
        for arbitrary window interleavings on a real workload, every
        window's cycle count AND all cache/predictor state AND all
        statistics counters match the scalar loop exactly."""
        program = _workload("164.gzip")
        scalar = SimulationEngine(program, batched=False)
        batched = SimulationEngine(program, batched=True)
        for mode, n_ops in windows:
            r1 = scalar.run(mode, n_ops)
            r2 = batched.run(mode, n_ops)
            assert (r1.ops, r1.cycles, r1.exhausted) == (
                r2.ops,
                r2.cycles,
                r2.exhausted,
            )
            h1, h2 = scalar.hierarchy, batched.hierarchy
            assert h1.snapshot() == h2.snapshot()
            assert h1.stats_summary() == h2.stats_summary()
            assert h1.memory_accesses == h2.memory_accesses
            for c1, c2 in zip((h1.l1i, h1.l1d, h1.l2), (h2.l1i, h2.l1d, h2.l2)):
                assert c1.stats.writebacks == c2.stats.writebacks
            assert scalar.predictor.snapshot() == batched.predictor.snapshot()
            s1, s2 = scalar.predictor.stats, batched.predictor.stats
            assert (s1.predictions, s1.mispredictions) == (
                s2.predictions,
                s2.mispredictions,
            )

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_bbv_vector_sequence_identical(self, name):
        """Period-boundary BBV vectors are bit-identical on real workloads."""
        program = _workload(name)
        engines = [
            SimulationEngine(program, bbv_tracker=BbvTracker(), batched=batched)
            for batched in (False, True)
        ]
        period = 8_000
        while not engines[0].exhausted:
            vecs = []
            for engine in engines:
                engine.run(Mode.FUNC_FAST, period)
                vecs.append(engine.bbv_tracker.take_vector(normalize=True))
            assert (vecs[0] == vecs[1]).all()
        assert engines[1].exhausted

    def test_func_warm_batched_matches_detail_state(self, two_phase_program):
        """Batched FUNC_WARM still leaves caches/predictor exactly as
        DETAIL would — the SMARTS soundness requirement."""
        detail = SimulationEngine(two_phase_program)
        warm = SimulationEngine(two_phase_program, batched=True)
        detail.run(Mode.DETAIL, 30_000)
        warm.run(Mode.FUNC_WARM, 30_000)
        assert detail.hierarchy.snapshot() == warm.hierarchy.snapshot()
        assert detail.predictor.snapshot() == warm.predictor.snapshot()


class TestPgssEquivalence:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_pgss_end_to_end_identical(self, name):
        """PGSS produces an identical SamplingResult either way."""
        program = _workload(name)
        cfg = PgssConfig.from_scale(Scale.QUICK)
        pgss = Pgss(cfg)
        results = []
        for batched in (False, True):
            engine = SimulationEngine(
                program,
                machine=pgss.machine,
                bbv_tracker=pgss._make_tracker(),
                batched=batched,
            )
            controller = pgss.make_controller(engine)
            while controller.step():
                pass
            results.append((controller.result(), controller.sample_offsets))
        (scalar, scalar_offsets), (batched, batched_offsets) = results
        assert scalar.ipc_estimate == batched.ipc_estimate
        assert scalar.detailed_ops == batched.detailed_ops
        assert scalar.total_ops == batched.total_ops
        assert scalar.n_samples == batched.n_samples
        assert scalar.accounting.ops == batched.accounting.ops
        assert scalar_offsets == batched_offsets

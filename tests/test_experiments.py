"""Tests for the experiment harness: cache, context, and figure modules.

Figure modules run at QUICK scale on a two-benchmark subset so the suite
stays fast; the full ten-benchmark reproduction lives in ``benchmarks/``.
"""

import json

import numpy as np
import pytest

from repro.config import Scale
from repro.experiments import ExperimentContext, ResultCache
from repro.experiments import (
    fig01_timeline as fig01,
    fig02_sampling_granularity as fig02,
    fig03_ipc_distribution as fig03,
    fig07_change_distribution as fig07,
    fig08_detection_rate as fig08,
    fig09_false_positives as fig09,
    fig10_twolf_threshold as fig10,
    fig11_pgss_sweep as fig11,
    fig13_simulation_time as fig13,
)
from repro.sampling import Smarts, SmartsConfig


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path)


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    """Shared QUICK-scale context over a small benchmark subset."""
    return ExperimentContext(
        Scale.QUICK,
        cache_dir=tmp_path_factory.mktemp("expcache"),
        benchmarks=["164.gzip", "300.twolf"],
    )


class TestResultCache:
    def test_json_roundtrip(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"x": 42}

        first = cache.json({"k": 1}, compute)
        second = cache.json({"k": 1}, compute)
        assert first == second == {"x": 42}
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_different_payloads_different_entries(self, cache):
        a = cache.json({"k": 1}, lambda: {"v": "a"})
        b = cache.json({"k": 2}, lambda: {"v": "b"})
        assert a != b

    def test_key_is_stable_under_ordering(self, cache):
        assert cache.key({"a": 1, "b": 2}) == cache.key({"b": 2, "a": 1})

    def test_clear(self, cache):
        cache.json({"k": 1}, lambda: {})
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_files_are_valid_json(self, cache):
        cache.json({"k": 1}, lambda: {"deep": {"x": [1, 2]}})
        files = list(cache.directory.glob("*.json"))
        assert len(files) == 1
        with files[0].open() as fh:
            assert json.load(fh) == {"deep": {"x": [1, 2]}}


class TestExperimentContext:
    def test_trace_cached_on_disk(self, ctx):
        t1 = ctx.trace("164.gzip")
        t2 = ctx.trace("164.gzip")
        assert t1.true_ipc == t2.true_ipc
        assert any(ctx.cache.directory.glob("*.npz"))

    def test_true_ipc_positive(self, ctx):
        assert ctx.true_ipc("164.gzip") > 0

    def test_run_cached_roundtrip(self, ctx):
        tech = Smarts(SmartsConfig.from_scale(ctx.scale))
        r1 = ctx.run_cached("164.gzip", tech, {"v": 1})
        r2 = ctx.run_cached("164.gzip", tech, {"v": 1})
        assert r1 == r2
        assert r1["technique"] == "SMARTS"
        assert r1["ipc_estimate"] > 0

    def test_program_fresh_instances(self, ctx):
        assert ctx.program("164.gzip") is not ctx.program("164.gzip")


class TestAnalysisFigures:
    def test_fig01_timelines(self, ctx):
        result = fig01.run(ctx, benchmark="164.gzip")
        assert result["n_smarts"] > result["n_pgss"] > 0
        assert len(result["phase_line"]) == fig01.TIMELINE_COLS
        text = fig01.format_result(result)
        assert "SMARTS" in text and "PGSS" in text and "legend" in text

    def test_fig02_dispersion_shrinks_with_period(self, ctx):
        result = fig02.run(ctx)
        stds = [s["std"] for s in result["series"]]
        assert stds[0] > stds[-1]
        assert fig02.format_result(result).startswith("Figure 2")

    def test_fig03_polymodal(self, ctx):
        result = fig03.run(ctx)
        assert len(result["modes"]) >= 2
        assert "Figure 3" in fig03.format_result(result)

    def test_fig07_regions_partition(self, ctx):
        result = fig07.run(ctx)
        total = sum(result["regions"].values())
        assert total == result["n_pairs"]
        percent = np.array(result["percent"])
        assert percent.sum() == pytest.approx(100.0, abs=1.0)
        fig07.format_result(result)

    def test_fig08_curves_monotone_decreasing(self, ctx):
        result = fig08.run(ctx)
        for series in result["curves"].values():
            assert series[0] == 1.0  # threshold 0 catches everything
            assert series[-1] <= series[0]
        assert 0 <= result["knee_pi"] <= 0.5
        fig08.format_result(result)

    def test_fig08_higher_sigma_easier_to_catch(self, ctx):
        result = fig08.run(ctx)
        mid = len(result["thresholds_pi"]) // 3
        assert (
            result["curves"]["0.5"][mid] >= result["curves"]["0.1"][mid] - 1e-9
        )

    def test_fig09_false_positives_fall_with_threshold(self, ctx):
        result = fig09.run(ctx)
        for series in result["curves"].values():
            assert series[-1] <= series[0] + 1e-9
        fig09.format_result(result)

    def test_fig10_phase_count_falls(self, ctx):
        result = fig10.run(ctx)
        phases = [e["n_phases"] for e in result["sweep"]]
        assert phases[0] >= phases[-1]
        assert phases[-1] >= 1
        intervals = [e["mean_interval_ops"] for e in result["sweep"]]
        assert intervals[-1] >= intervals[0]
        fig10.format_result(result)


class TestSweepFigures:
    def test_fig11_single_run(self, ctx):
        res = fig11.run_single(ctx, "164.gzip", 4_000, 0.05)
        assert res["error_pct"] >= 0
        assert res["detailed_ops"] > 0

    def test_fig11_grid_shape(self, ctx):
        result = fig11.run(ctx)
        expected = len(ctx.scale.pgss_periods) * len(ctx.scale.thresholds)
        assert len(result["grid"]) == expected
        assert set(result["per_benchmark_best"]) == set(ctx.benchmarks)
        best = result["best_overall"]
        assert best["period"] in ctx.scale.pgss_periods
        fig11.format_result(result)

    def test_fig11_best_per_benchmark_beats_overall(self, ctx):
        result = fig11.run(ctx)
        for benchmark in ctx.benchmarks:
            per = result["per_benchmark_best"][benchmark]["error_pct"]
            overall_entry = next(
                g
                for g in result["grid"]
                if g["period"] == result["best_overall"]["period"]
                and g["threshold_pi"] == result["best_overall"]["threshold_pi"]
            )
            assert per <= overall_entry["errors"][benchmark] + 1e-9

    def test_fig13_rates_ordering(self, ctx):
        rates = fig13.measure_rates(ctx)
        assert rates["func_fast"] > rates["func_warm"] > 0
        assert rates["detail"] > 0
        # BBV overhead must be small on the detailed modes (paper: ~1%).
        assert rates["detail+bbv"] > 0.7 * rates["detail"]

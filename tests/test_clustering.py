"""Tests for k-means, BIC model selection, and random projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import bic_score, choose_k, kmeans, random_projection
from repro.errors import ClusteringError


def two_blobs(n=60, sep=10.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.3, size=(n // 2, 4))
    b = rng.normal(sep, 0.3, size=(n // 2, 4))
    return np.vstack([a, b])


class TestKMeans:
    def test_recovers_two_blobs(self):
        data = two_blobs()
        result = kmeans(data, 2, seed=1)
        labels = result.labels
        # All first-half points together, all second-half together.
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[-1]

    def test_centroids_near_blob_means(self):
        data = two_blobs()
        result = kmeans(data, 2, seed=1)
        centroid_means = sorted(result.centroids.mean(axis=1))
        assert centroid_means[0] == pytest.approx(0.0, abs=0.3)
        assert centroid_means[1] == pytest.approx(10.0, abs=0.3)

    def test_k_equals_one(self):
        data = two_blobs()
        result = kmeans(data, 1)
        assert (result.labels == 0).all()
        assert result.centroids[0] == pytest.approx(data.mean(axis=0))

    def test_k_equals_n(self):
        data = np.arange(10, dtype=float).reshape(5, 2)
        result = kmeans(data, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)
        assert sorted(result.labels) == [0, 1, 2, 3, 4]

    def test_inertia_non_increasing_in_k(self):
        data = two_blobs(n=80)
        inertias = [kmeans(data, k, n_restarts=5, seed=3).inertia for k in (1, 2, 4, 8)]
        for a, b in zip(inertias, inertias[1:]):
            assert b <= a + 1e-9

    def test_deterministic_for_seed(self):
        data = two_blobs()
        r1 = kmeans(data, 3, seed=42)
        r2 = kmeans(data, 3, seed=42)
        assert (r1.labels == r2.labels).all()
        assert r1.inertia == r2.inertia

    def test_representative_indices_closest_to_centroid(self):
        data = two_blobs()
        result = kmeans(data, 2, seed=1)
        reps = result.representative_indices()
        for c in range(2):
            rep = reps[c]
            assert result.labels[rep] == c
            members = np.where(result.labels == c)[0]
            d_rep = np.sum((data[rep] - result.centroids[c]) ** 2)
            for m in members:
                d_m = np.sum((data[m] - result.centroids[c]) ** 2)
                assert d_rep <= d_m + 1e-9

    def test_cluster_sizes_sum_to_n(self):
        data = two_blobs()
        result = kmeans(data, 3, seed=2)
        assert result.cluster_sizes().sum() == len(data)

    def test_invalid_k(self):
        data = two_blobs()
        with pytest.raises(ClusteringError):
            kmeans(data, 0)
        with pytest.raises(ClusteringError):
            kmeans(data, len(data) + 1)

    def test_empty_input(self):
        with pytest.raises(ClusteringError):
            kmeans(np.empty((0, 3)), 1)

    def test_identical_points(self):
        data = np.ones((20, 4))
        result = kmeans(data, 3, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=10, max_value=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_labels_always_valid(self, k, n):
        rng = np.random.default_rng(n * 7 + k)
        data = rng.normal(size=(n, 3))
        result = kmeans(data, min(k, n), n_restarts=2, seed=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.k
        assert result.labels.shape == (n,)


class TestBic:
    def test_bic_prefers_true_k(self):
        data = two_blobs(n=80, sep=12.0)
        k, scores = choose_k(data, max_k=6, seed=1)
        assert k == 2
        assert scores[2] >= scores[1]

    def test_bic_score_higher_for_better_fit(self):
        data = two_blobs(n=80, sep=12.0)
        r1 = kmeans(data, 1, seed=0)
        r2 = kmeans(data, 2, seed=0)
        assert bic_score(data, r2) > bic_score(data, r1)

    def test_bic_requires_enough_points(self):
        data = np.ones((3, 2))
        result = kmeans(data, 3, seed=0)
        with pytest.raises(ClusteringError):
            bic_score(data, result)

    def test_choose_k_requires_points(self):
        with pytest.raises(ClusteringError):
            choose_k(np.ones((2, 2)))


class TestProjection:
    def test_shape(self):
        data = np.random.default_rng(0).normal(size=(50, 64))
        out = random_projection(data, target_dim=15, seed=1)
        assert out.shape == (50, 15)

    def test_identity_when_same_dim(self):
        data = np.random.default_rng(0).normal(size=(10, 8))
        out = random_projection(data, target_dim=8)
        assert (out == data).all()

    def test_preserves_relative_distances(self):
        """JL property: far pairs stay far relative to near pairs."""
        rng = np.random.default_rng(4)
        base = rng.normal(size=(1, 256))
        near = base + rng.normal(0, 0.01, size=(1, 256))
        far = base + rng.normal(0, 10.0, size=(1, 256))
        data = np.vstack([base, near, far])
        out = random_projection(data, target_dim=16, seed=2)
        d_near = np.linalg.norm(out[0] - out[1])
        d_far = np.linalg.norm(out[0] - out[2])
        assert d_far > 5 * d_near

    def test_invalid_target(self):
        data = np.ones((5, 4))
        with pytest.raises(ClusteringError):
            random_projection(data, target_dim=0)
        with pytest.raises(ClusteringError):
            random_projection(data, target_dim=5)

    def test_deterministic(self):
        data = np.random.default_rng(0).normal(size=(5, 16))
        a = random_projection(data, target_dim=4, seed=9)
        b = random_projection(data, target_dim=4, seed=9)
        assert (a == b).all()

"""Tests for phase profiles, the online classifier, threshold analysis,
and the adaptive threshold selector."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SamplingError
from repro.phase import (
    AdaptiveThresholdSelector,
    OnlinePhaseClassifier,
    PhaseProfile,
    consecutive_changes,
    detection_rate,
    false_positive_rate,
    phase_statistics,
    region_counts,
)


def unit(index: int, dim: int = 32) -> np.ndarray:
    vec = np.zeros(dim)
    vec[index] = 1.0
    return vec


def blend(i: int, j: int, w: float, dim: int = 32) -> np.ndarray:
    vec = np.zeros(dim)
    vec[i] = math.cos(w)
    vec[j] = math.sin(w)
    return vec


class TestPhaseProfile:
    def test_representative_is_unit_norm(self):
        p = PhaseProfile(0, unit(3))
        p.add_bbv(unit(4), 100)
        assert np.linalg.norm(p.representative) == pytest.approx(1.0)

    def test_representative_averages_members(self):
        p = PhaseProfile(0, unit(0))
        p.add_bbv(unit(1), 100)
        rep = p.representative
        assert rep[0] == pytest.approx(rep[1])

    def test_ops_attribution(self):
        p = PhaseProfile(0, unit(0))
        p.add_bbv(unit(0), 100)
        p.add_ops(50)
        assert p.ops == 150

    def test_sample_recording(self):
        p = PhaseProfile(0, unit(0))
        p.add_sample(1.5, op_offset=1000, ops=1000, cycles=667)
        assert p.n_samples == 1
        assert p.last_sample_op == 1000
        assert p.mean_ipc == pytest.approx(1.5)
        assert p.ratio_ipc == pytest.approx(1000 / 667)

    def test_sample_without_counts_uses_pseudo(self):
        p = PhaseProfile(0, unit(0))
        p.add_sample(2.0, op_offset=10)
        assert p.ratio_ipc == pytest.approx(2.0)

    def test_within_bounds_needs_min_samples(self):
        p = PhaseProfile(0, unit(0))
        p.add_sample(1.0, 0)
        p.add_sample(1.0, 1)
        assert not p.within_bounds(min_samples=3)

    def test_within_bounds_tight_samples(self):
        p = PhaseProfile(0, unit(0))
        for i in range(5):
            p.add_sample(1.0 + 1e-6 * i, i)
        assert p.within_bounds(rel_error=0.03, min_samples=3)

    def test_within_bounds_noisy_samples(self):
        p = PhaseProfile(0, unit(0))
        for i, ipc in enumerate([0.5, 2.0, 0.7, 1.8]):
            p.add_sample(ipc, i)
        assert not p.within_bounds(rel_error=0.03, min_samples=3)


class TestClassifier:
    def test_first_observation_creates_phase_zero(self):
        c = OnlinePhaseClassifier(0.05 * math.pi)
        d = c.observe(unit(0), 100)
        assert d.phase_id == 0 and d.created
        assert c.n_phases == 1

    def test_similar_vector_stays_in_phase(self):
        c = OnlinePhaseClassifier(0.1 * math.pi)
        c.observe(unit(0), 100)
        d = c.observe(blend(0, 1, 0.05), 100)
        assert d.phase_id == 0
        assert not d.changed and not d.created

    def test_orthogonal_vector_creates_new_phase(self):
        c = OnlinePhaseClassifier(0.1 * math.pi)
        c.observe(unit(0), 100)
        d = c.observe(unit(1), 100)
        assert d.phase_id == 1 and d.created and d.changed

    def test_returning_to_known_phase_matches_not_creates(self):
        c = OnlinePhaseClassifier(0.1 * math.pi)
        c.observe(unit(0), 100)
        c.observe(unit(1), 100)
        d = c.observe(unit(0), 100)
        assert d.phase_id == 0
        assert d.changed and not d.created
        assert c.n_phases == 2

    def test_compares_last_bbv_first(self):
        """A drifting sequence where each step is under threshold stays in
        one phase even when the total drift exceeds it (the last-BBV rule
        from Fig. 5)."""
        c = OnlinePhaseClassifier(0.12 * math.pi)
        for step in range(8):
            d = c.observe(blend(0, 1, step * 0.1), 100)
        assert c.n_phases == 1
        assert d.phase_id == 0

    def test_change_counting(self):
        c = OnlinePhaseClassifier(0.05 * math.pi)
        for vec in (unit(0), unit(1), unit(0), unit(1)):
            c.observe(vec, 10)
        assert c.n_changes == 3
        assert c.n_observations == 4

    def test_ops_per_phase(self):
        c = OnlinePhaseClassifier(0.05 * math.pi)
        c.observe(unit(0), 100)
        c.observe(unit(0), 50)
        c.observe(unit(1), 25)
        assert c.ops_per_phase() == {0: 150, 1: 25}

    def test_zero_threshold_every_period_new_phase(self):
        c = OnlinePhaseClassifier(0.0)
        c.observe(unit(0), 10)
        d = c.observe(unit(0), 10)
        # distance 0 is not < 0, so even identical vectors split.
        assert d.phase_id == 1

    def test_huge_threshold_single_phase(self):
        c = OnlinePhaseClassifier(math.pi)
        for vec in (unit(0), unit(1), unit(2)):
            c.observe(vec, 10)
        assert c.n_phases == 1

    def test_manhattan_metric(self):
        c = OnlinePhaseClassifier(0.5, metric="manhattan")
        c.observe(unit(0), 10)
        d = c.observe(unit(1), 10)
        assert d.created

    def test_rejects_bad_metric(self):
        with pytest.raises(ConfigurationError):
            OnlinePhaseClassifier(0.1, metric="hamming")

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigurationError):
            OnlinePhaseClassifier(-0.1)

    def test_angle_threshold_cannot_exceed_pi(self):
        with pytest.raises(ConfigurationError):
            OnlinePhaseClassifier(4.0, metric="angle")

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_phase_count_bounded_by_distinct_vectors(self, sequence):
        c = OnlinePhaseClassifier(0.05 * math.pi)
        for idx in sequence:
            c.observe(unit(idx), 10)
        assert c.n_phases <= len(set(sequence))
        total = sum(c.ops_per_phase().values())
        assert total == 10 * len(sequence)


class TestThresholdAnalysis:
    def _pairs(self):
        bbvs = [unit(0), unit(0), unit(1), unit(1), unit(0)]
        ipcs = [1.0, 1.0, 2.0, 2.0, 1.0]
        return consecutive_changes(bbvs, ipcs)

    def test_consecutive_changes_length(self):
        assert len(self._pairs()) == 4

    def test_changes_normalised_by_sigma(self):
        pairs = self._pairs()
        sigma = np.std([1.0, 1.0, 2.0, 2.0, 1.0])
        assert pairs[1].ipc_sigma == pytest.approx(1.0 / sigma)
        assert pairs[0].ipc_sigma == 0.0

    def test_region_counts_sum(self):
        pairs = self._pairs()
        counts = region_counts(pairs, 0.05 * math.pi, 0.3)
        assert sum(counts.values()) == len(pairs)

    def test_perfect_detection_here(self):
        pairs = self._pairs()
        # Orthogonal BBV flips accompany every IPC change.
        assert detection_rate(pairs, 0.05 * math.pi, 0.3) == 1.0
        assert false_positive_rate(pairs, 0.05 * math.pi, 0.3) == 0.0

    def test_blind_threshold_misses_everything(self):
        pairs = self._pairs()
        assert detection_rate(pairs, math.pi, 0.3) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SamplingError):
            consecutive_changes([unit(0)], [1.0, 2.0])

    def test_constant_ipc_no_significant_changes(self):
        bbvs = [unit(0), unit(1), unit(0)]
        pairs = consecutive_changes(bbvs, [1.0, 1.0, 1.0])
        assert detection_rate(pairs, 0.05 * math.pi, 0.3) == 1.0  # vacuous
        assert false_positive_rate(pairs, 0.05 * math.pi, 0.3) == 1.0

    def test_phase_statistics_basic(self):
        bbvs = [unit(0)] * 5 + [unit(1)] * 5
        ipcs = [1.0] * 5 + [2.0] * 5
        ops = [100] * 10
        stats = phase_statistics(bbvs, ipcs, ops, 0.05 * math.pi)
        assert stats.n_phases == 2
        assert stats.n_changes == 1
        assert stats.mean_interval_ops == pytest.approx(500)

    def test_phase_statistics_variation_rises_with_threshold(self):
        rng = np.random.default_rng(0)
        bbvs, ipcs = [], []
        for i in range(60):
            which = (i // 5) % 2
            vec = unit(which) + rng.normal(0, 0.02, 32)
            bbvs.append(np.abs(vec))
            ipcs.append(1.0 + which + rng.normal(0, 0.02))
        ops = [100] * 60
        tight = phase_statistics(bbvs, ipcs, ops, 0.05 * math.pi)
        loose = phase_statistics(bbvs, ipcs, ops, 0.9 * math.pi)
        assert loose.n_phases <= tight.n_phases
        assert loose.ipc_variation >= tight.ipc_variation

    def test_phase_statistics_validates_lengths(self):
        with pytest.raises(SamplingError):
            phase_statistics([unit(0)], [1.0, 2.0], [10], 0.1)


class TestAdaptiveSelector:
    def _bbvs_two_phase(self, n=40):
        return [unit(0) if (i // 10) % 2 == 0 else unit(1) for i in range(n)]

    def test_selects_a_candidate(self):
        selector = AdaptiveThresholdSelector()
        choice = selector.select(self._bbvs_two_phase())
        assert choice in selector.candidates

    def test_prefers_tight_usable_threshold(self):
        selector = AdaptiveThresholdSelector()
        choice = selector.select(self._bbvs_two_phase())
        assert choice == 0.05  # clean two-phase stream: tightest works

    def test_churny_stream_picks_looser(self):
        rng = np.random.default_rng(5)
        # Heavy per-period noise: tight thresholds see phase churn.
        bbvs = [np.abs(unit(0) + rng.normal(0, 0.4, 32)) for _ in range(60)]
        selector = AdaptiveThresholdSelector()
        choice = selector.select(bbvs)
        assert choice > 0.05

    def test_evaluate_rows(self):
        selector = AdaptiveThresholdSelector(candidates=(0.05, 0.25))
        rows = selector.evaluate(self._bbvs_two_phase())
        assert len(rows) == 2
        assert {r["threshold"] for r in rows} == {0.05, 0.25}

    def test_needs_enough_periods(self):
        with pytest.raises(ConfigurationError):
            AdaptiveThresholdSelector().select([unit(0)] * 3)

    def test_rejects_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            AdaptiveThresholdSelector(candidates=())

    def test_rejects_out_of_range_candidates(self):
        with pytest.raises(ConfigurationError):
            AdaptiveThresholdSelector(candidates=(0.0,))

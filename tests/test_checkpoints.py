"""Checkpoint persistence and resumable reference-trace collection.

Covers the :class:`CheckpointStore` edge cases (empty store, exact-offset
hit, offset before the first checkpoint), the on-disk
:class:`CheckpointFile` (round trip, corruption, idempotent clear), and
the property the fleet depends on: a trace collection killed mid-cell and
resumed from its checkpoint is byte-identical to an uninterrupted run.
"""

import pickle

import numpy as np
import pytest

from repro.config import Scale
from repro.cpu import Mode, SimulationEngine
from repro.cpu.checkpoints import CheckpointFile, CheckpointStore
from repro.errors import SimulationError
from repro.program import get_workload
from repro.sampling.full import collect_reference_trace

BENCH = "164.gzip"


def make_engine():
    return SimulationEngine(get_workload(BENCH, Scale.QUICK))


class TestCheckpointStoreEdges:
    def test_empty_store_raises(self):
        engine = make_engine()
        with pytest.raises(SimulationError):
            CheckpointStore().restore_nearest(engine, 1_000_000)

    def test_offset_before_first_checkpoint_raises(self):
        engine = make_engine()
        engine.run(Mode.FUNC_FAST, 50_000)
        store = CheckpointStore()
        first = store.add(engine)
        assert first.op_offset > 0
        fresh = make_engine()
        with pytest.raises(SimulationError):
            store.restore_nearest(fresh, first.op_offset - 1)

    def test_exact_offset_hit(self):
        engine = make_engine()
        store = CheckpointStore.collect(engine, interval_ops=40_000)
        target = store.offsets[1]
        fresh = make_engine()
        used = store.restore_nearest(fresh, target)
        assert used.op_offset == target
        assert fresh.ops_completed == target

    def test_between_offsets_picks_floor(self):
        engine = make_engine()
        store = CheckpointStore.collect(engine, interval_ops=40_000)
        lo, hi = store.offsets[1], store.offsets[2]
        fresh = make_engine()
        used = store.restore_nearest(fresh, (lo + hi) // 2)
        assert used.op_offset == lo


class TestCheckpointFile:
    def test_load_absent_returns_none(self, tmp_path):
        assert CheckpointFile(tmp_path / "missing.ckpt").load() is None

    def test_round_trip(self, tmp_path):
        ck = CheckpointFile(tmp_path / "cell.ckpt")
        ck.save(1234, {"stream": "s"}, extras={"ops": [1, 2]})
        payload = ck.load()
        assert payload["op_offset"] == 1234
        assert payload["state"] == {"stream": "s"}
        assert payload["extras"] == {"ops": [1, 2]}

    def test_save_replaces_prior(self, tmp_path):
        ck = CheckpointFile(tmp_path / "cell.ckpt")
        ck.save(1, {"a": 1})
        ck.save(2, {"a": 2})
        assert ck.load()["op_offset"] == 2

    def test_corrupt_file_is_cleared_and_treated_as_absent(self, tmp_path):
        path = tmp_path / "cell.ckpt"
        path.write_bytes(b"not a pickle at all")
        ck = CheckpointFile(path)
        assert ck.load() is None
        assert not path.exists()

    def test_wrong_shape_payload_is_cleared(self, tmp_path):
        path = tmp_path / "cell.ckpt"
        path.write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert CheckpointFile(path).load() is None
        assert not path.exists()

    def test_clear_is_idempotent(self, tmp_path):
        ck = CheckpointFile(tmp_path / "cell.ckpt")
        ck.clear()
        ck.save(1, {})
        ck.clear()
        ck.clear()
        assert ck.load() is None

    def test_no_tmp_litter_after_save(self, tmp_path):
        ck = CheckpointFile(tmp_path / "cell.ckpt")
        ck.save(7, {"x": 1})
        assert [p.name for p in tmp_path.glob("*.tmp")] == []


class _DyingCheckpoint(CheckpointFile):
    """Checkpoint file whose writer is 'killed' after *allowed* saves."""

    def __init__(self, path, allowed):
        super().__init__(path)
        self.allowed = allowed
        self.saves = 0

    def save(self, op_offset, state, extras=None):
        super().save(op_offset, state, extras)
        self.saves += 1
        if self.saves >= self.allowed:
            raise KeyboardInterrupt("simulated worker death")


class TestResumableTrace:
    WINDOW = 5_000

    def reference(self):
        return collect_reference_trace(
            get_workload(BENCH, Scale.QUICK), self.WINDOW
        )

    def test_kill_then_resume_is_byte_identical(self, tmp_path):
        path = tmp_path / "trace.ckpt"
        dying = _DyingCheckpoint(path, allowed=2)
        with pytest.raises(KeyboardInterrupt):
            collect_reference_trace(
                get_workload(BENCH, Scale.QUICK),
                self.WINDOW,
                checkpoint=dying,
                checkpoint_windows=8,
            )
        # The dead worker left a mid-cell snapshot behind.
        saved = CheckpointFile(path).load()
        assert saved is not None
        assert 0 < saved["op_offset"] < self.reference().total_ops
        assert len(saved["extras"]["ops"]) == 16

        resumed = collect_reference_trace(
            get_workload(BENCH, Scale.QUICK),
            self.WINDOW,
            checkpoint=CheckpointFile(path),
            checkpoint_windows=8,
        )
        uninterrupted = self.reference()
        assert np.array_equal(resumed.ops, uninterrupted.ops)
        assert np.array_equal(resumed.cycles, uninterrupted.cycles)
        assert np.array_equal(resumed.bbvs, uninterrupted.bbvs)
        # Completion clears the checkpoint.
        assert not path.exists()

    def test_uninterrupted_checkpointed_run_matches_plain(self, tmp_path):
        path = tmp_path / "trace.ckpt"
        checkpointed = collect_reference_trace(
            get_workload(BENCH, Scale.QUICK),
            self.WINDOW,
            checkpoint=CheckpointFile(path),
            checkpoint_windows=4,
        )
        plain = self.reference()
        assert np.array_equal(checkpointed.ops, plain.ops)
        assert np.array_equal(checkpointed.cycles, plain.cycles)
        assert np.array_equal(checkpointed.bbvs, plain.bbvs)
        assert not path.exists()

    def test_zero_checkpoint_windows_disables_saving(self, tmp_path):
        path = tmp_path / "trace.ckpt"
        collect_reference_trace(
            get_workload(BENCH, Scale.QUICK),
            self.WINDOW,
            checkpoint=CheckpointFile(path),
            checkpoint_windows=0,
        )
        assert not path.exists()

"""Focused tests for the functional-warming executor."""

import pytest

from repro import DEFAULT_MACHINE
from repro.branch import GsharePredictor
from repro.cpu.functional import FunctionalWarmer
from repro.isa import Instruction, Op
from repro.memory import CacheHierarchy
from repro.program import MemPattern, PatternKind
from repro.program.block import BasicBlock
from repro.program.stream import BlockEvent


@pytest.fixture()
def warmer():
    hierarchy = CacheHierarchy(DEFAULT_MACHINE)
    predictor = GsharePredictor(12)
    return FunctionalWarmer(hierarchy, predictor)


def make_event(taken=True, k=0, with_load=True):
    pats = []
    insts = []
    if with_load:
        pats = [MemPattern(PatternKind.STREAM, base=0x400000, span=1 << 16, stride=64)]
        insts.append(Instruction(Op.LOAD, dst=1, src1=0, mem_index=0))
    insts.append(Instruction(Op.IALU, dst=2, src1=1))
    insts.append(Instruction(Op.BRANCH, src1=2))
    block = BasicBlock(0, 0x2000, insts, pats)
    return BlockEvent(block, taken, k)


class TestFunctionalWarmer:
    def test_warms_icache(self, warmer):
        warmer.execute_event(make_event())
        assert warmer.hierarchy.l1i.contains(0x2000)

    def test_warms_dcache_with_pattern_address(self, warmer):
        event = make_event(k=3)
        warmer.execute_event(event)
        addr = event.block.mem_patterns[0].address(3)
        assert warmer.hierarchy.l1d.contains(addr)

    def test_updates_predictor(self, warmer):
        warmer.execute_event(make_event(taken=True))
        assert warmer.predictor.stats.predictions == 1

    def test_execution_count_advances_addresses(self, warmer):
        e0 = make_event(k=0)
        e1 = make_event(k=1)
        a0 = e0.block.mem_patterns[0].address(0)
        a1 = e1.block.mem_patterns[0].address(1)
        assert a0 != a1
        warmer.execute_event(e0)
        warmer.execute_event(e1)
        assert warmer.hierarchy.l1d.contains(a0)
        assert warmer.hierarchy.l1d.contains(a1)

    def test_store_pattern_marks_write(self, warmer):
        pats = [
            MemPattern(
                PatternKind.REUSE, base=0x500000, span=64, stride=8, is_write=True
            )
        ]
        insts = [
            Instruction(Op.STORE, src1=1, src2=2, mem_index=0),
            Instruction(Op.BRANCH, src1=1),
        ]
        block = BasicBlock(0, 0x3000, insts, pats)
        warmer.execute_event(BlockEvent(block, True, 0))
        # Evicting the line must produce a writeback (it is dirty).
        stats = warmer.hierarchy.l1d.stats
        assert stats.accesses == 1

    def test_no_timing_state(self, warmer):
        """Warming must not require or mutate any pipeline object."""
        for k in range(50):
            warmer.execute_event(make_event(k=k))
        # Only caches and predictor were touched; nothing else to assert —
        # the absence of a pipeline dependency is the contract.
        assert warmer.hierarchy.l1d.stats.accesses == 50

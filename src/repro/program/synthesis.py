"""Random synthetic-program generation for fuzzing and studies.

The ten calibrated workloads model specific benchmarks; this module
generates *arbitrary* valid programs from a seed — the generator behind
the property-based tests, exposed publicly so users can fuzz their own
sampling configurations or produce workload populations for Monte-Carlo
studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from .behavior import Behavior
from .block import BlockBuilder
from .mem_patterns import PatternKind
from .program import Program, Segment

__all__ = ["SynthesisSpec", "synthesize_program"]


@dataclass(frozen=True)
class SynthesisSpec:
    """Knobs for random program generation.

    Attributes:
        total_ops: nominal dynamic length.
        n_behaviors: distinct behaviours (phases) to generate.
        blocks_per_behavior: loop bodies per behaviour.
        min_segment_ops / max_segment_ops: phase-script segment bounds.
        mem_probability: chance each block gets memory instructions.
        micro_phase_probability: chance a behaviour alternates two blocks
            at fine grain (art/mcf-style micro-phases).
        branchy_probability: chance a block's terminator is data-dependent.
    """

    total_ops: int = 200_000
    n_behaviors: int = 3
    blocks_per_behavior: int = 2
    min_segment_ops: int = 5_000
    max_segment_ops: int = 40_000
    mem_probability: float = 0.7
    micro_phase_probability: float = 0.3
    branchy_probability: float = 0.2

    def __post_init__(self) -> None:
        if self.total_ops <= 0 or self.n_behaviors < 1:
            raise ConfigurationError("total_ops and n_behaviors must be positive")
        if self.blocks_per_behavior < 1:
            raise ConfigurationError("blocks_per_behavior must be at least 1")
        if not 0 < self.min_segment_ops <= self.max_segment_ops:
            raise ConfigurationError("segment bounds must satisfy 0 < min <= max")


_SPANS = (4 * 1024, 64 * 1024, 512 * 1024, 4 * 1024 * 1024, 16 * 1024 * 1024)


def synthesize_program(
    seed: int, spec: Optional[SynthesisSpec] = None, name: Optional[str] = None
) -> Program:
    """Generate a random, valid, deterministic program from *seed*."""
    spec = spec or SynthesisSpec()
    rng = random.Random(seed)
    builder = BlockBuilder(seed=seed ^ 0xABCDEF)

    blocks = []
    behaviors = []
    for b in range(spec.n_behaviors):
        entries = []
        for _ in range(spec.blocks_per_behavior):
            pats = []
            if rng.random() < spec.mem_probability:
                for _ in range(rng.randint(1, 2)):
                    kind = rng.choice(list(PatternKind))
                    span = rng.choice(_SPANS)
                    pats.append(
                        builder.pattern(
                            kind,
                            span,
                            stride=rng.choice((8, 64)),
                            is_write=rng.random() < 0.2,
                        )
                    )
            taken_prob = (
                rng.uniform(0.25, 0.75)
                if rng.random() < spec.branchy_probability
                else None
            )
            block = builder.build(
                ops=rng.randint(len(pats) + 6, 30),
                mix=rng.choice(list(BlockBuilder.MIXES)),
                dep_density=rng.uniform(0.05, 0.55),
                mem_patterns=pats,
                random_taken_prob=taken_prob,
            )
            blocks.append(block)
            if rng.random() < spec.micro_phase_probability and entries:
                # Fine-grained alternation: small iteration counts.
                entries.append((block, (rng.randint(8, 30), 2)))
            else:
                entries.append((block, (rng.randint(20, 120), 5)))
        behaviors.append(Behavior(f"b{b}", entries))

    script = []
    acc = 0
    while acc < spec.total_ops:
        ops = rng.randint(spec.min_segment_ops, spec.max_segment_ops)
        script.append(Segment(rng.choice(behaviors).name, ops))
        acc += ops

    return Program(
        name or f"synth.{seed}",
        blocks,
        behaviors,
        script,
        seed=seed,
    )

"""The program stream: a resumable walk of a program's phase script.

Every simulation mode consumes the same stream of :class:`BlockEvent`
records — one per dynamic basic-block execution.  The stream is an explicit
state machine (not a generator) so it can be snapshotted and restored,
which is what makes checkpoints/livepoints (paper Section 6) possible and
lets SimPoint's two passes see byte-identical traces.

The per-block execution counter carried in each event doubles as the *k*
input to the block's memory-address generators, so machine-independent
program state is fully captured by (script position, counters, RNG state).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, NamedTuple, Optional

from ..errors import ProgramError, StreamExhausted
from .block import BasicBlock
from .program import Program

__all__ = ["BlockEvent", "ProgramStream"]


class BlockEvent(NamedTuple):
    """One dynamic basic-block execution.

    Attributes:
        block: the static block executed.
        taken: outcome of the terminating branch.
        k: this block's execution count *before* this event (the input to
            its memory-address generators).
    """

    block: BasicBlock
    taken: bool
    k: int


class ProgramStream:
    """Iterator over a program's dynamic basic-block executions.

    Args:
        program: the program to walk.

    The stream ends when the phase script is exhausted; :attr:`ops_emitted`
    then equals the program's nominal length give or take the final block.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self._rng = random.Random(program.seed)
        self._exec_counts: List[int] = [0] * program.n_blocks
        self._seg_index = 0
        self._seg_ops_left = program.script[0].ops if program.script else 0
        self._behavior = program.behavior_of_segment(0)
        self._entry_index = 0
        self._iters_left = self._behavior.resolve_iters(0, self._rng)
        self.ops_emitted = 0
        self._done = False

    def next_event(self) -> Optional[BlockEvent]:
        """Return the next event, or ``None`` when the script is finished."""
        if self._done:
            return None

        behavior = self._behavior
        block = behavior.entry_block(self._entry_index)
        last_iteration = self._iters_left <= 1

        if block.random_taken_prob is not None:
            taken = self._rng.random() < block.random_taken_prob
        else:
            # Loop-style control: backward branch taken until the last
            # iteration of this entry.
            taken = not last_iteration

        k = self._exec_counts[block.bid]
        self._exec_counts[block.bid] = k + 1
        self.ops_emitted += block.n_ops
        self._seg_ops_left -= block.n_ops

        # Advance loop position.
        if last_iteration:
            self._entry_index += 1
            if self._entry_index >= behavior.n_entries():
                self._entry_index = 0
            self._iters_left = behavior.resolve_iters(self._entry_index, self._rng)
        else:
            self._iters_left -= 1

        # Advance the phase script when the segment budget expires.
        if self._seg_ops_left <= 0:
            self._seg_index += 1
            if self._seg_index >= len(self.program.script):
                self._done = True
            else:
                segment = self.program.script[self._seg_index]
                self._seg_ops_left = segment.ops
                self._behavior = self.program.behaviors[segment.behavior]
                self._entry_index = 0
                self._iters_left = self._behavior.resolve_iters(0, self._rng)

        return BlockEvent(block, taken, k)

    def __iter__(self) -> Iterator[BlockEvent]:
        return self

    def __next__(self) -> BlockEvent:
        event = self.next_event()
        if event is None:
            raise StopIteration
        return event

    @property
    def exhausted(self) -> bool:
        """True once the phase script has been fully walked."""
        return self._done

    @property
    def current_behavior_name(self) -> str:
        """Name of the behaviour the next event will come from."""
        return self._behavior.name

    def take_ops(self, n_ops: int) -> List[BlockEvent]:
        """Consume events totalling at least *n_ops* operations.

        Raises:
            StreamExhausted: if the stream ends before *n_ops* ops are
                available.
        """
        if n_ops <= 0:
            return []
        out: List[BlockEvent] = []
        got = 0
        while got < n_ops:
            event = self.next_event()
            if event is None:
                raise StreamExhausted(
                    f"needed {n_ops} ops, stream ended after {got}"
                )
            out.append(event)
            got += event.block.n_ops
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Capture the complete stream state for checkpointing."""
        return {
            "rng": self._rng.getstate(),
            "exec_counts": list(self._exec_counts),
            "seg_index": self._seg_index,
            "seg_ops_left": self._seg_ops_left,
            "entry_index": self._entry_index,
            "iters_left": self._iters_left,
            "ops_emitted": self.ops_emitted,
            "done": self._done,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        if len(state["exec_counts"]) != self.program.n_blocks:
            raise ProgramError("snapshot does not match this program")
        self._rng.setstate(state["rng"])
        self._exec_counts = list(state["exec_counts"])
        self._seg_index = state["seg_index"]
        self._seg_ops_left = state["seg_ops_left"]
        self._entry_index = state["entry_index"]
        self._iters_left = state["iters_left"]
        self.ops_emitted = state["ops_emitted"]
        self._done = state["done"]
        if not self._done:
            segment = self.program.script[self._seg_index]
            self._behavior = self.program.behaviors[segment.behavior]

    def clone_fresh(self) -> "ProgramStream":
        """A new stream positioned at the start of the same program."""
        return ProgramStream(self.program)

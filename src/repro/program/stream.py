"""The program stream: a resumable walk of a program's phase script.

Every simulation mode consumes the same stream of :class:`BlockEvent`
records — one per dynamic basic-block execution.  The stream is an explicit
state machine (not a generator) so it can be snapshotted and restored,
which is what makes checkpoints/livepoints (paper Section 6) possible and
lets SimPoint's two passes see byte-identical traces.

The per-block execution counter carried in each event doubles as the *k*
input to the block's memory-address generators, so machine-independent
program state is fully captured by (script position, counters, RNG state).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..errors import ProgramError, StreamExhausted
from .block import BasicBlock
from .program import Program

__all__ = ["BlockEvent", "BlockRun", "ProgramStream"]


class BlockEvent(NamedTuple):
    """One dynamic basic-block execution.

    Attributes:
        block: the static block executed.
        taken: outcome of the terminating branch.
        k: this block's execution count *before* this event (the input to
            its memory-address generators).
    """

    block: BasicBlock
    taken: bool
    k: int


class BlockRun(NamedTuple):
    """A run-length record: *n* back-to-back executions of one block.

    Produced by :meth:`ProgramStream.next_events`.  A run never spans an
    entry boundary, so the branch-outcome pattern is fully determined by
    two fields: for loop-controlled blocks (``random_taken_prob is None``)
    every outcome is taken except, when *ends_entry* is true, the final
    one; for random-branch blocks the per-event draws are carried in
    *takens* verbatim, in RNG order.

    Attributes:
        block: the static block executed *n* times.
        n: number of consecutive executions (>= 1).
        k_start: the block's execution count before the first execution;
            event ``i`` of the run has ``k = k_start + i``.
        ends_entry: True when the run's last event is the final iteration
            of its behaviour entry (the loop exit).
        takens: per-event branch outcomes for random-branch blocks;
            ``None`` for loop-controlled blocks.
    """

    block: BasicBlock
    n: int
    k_start: int
    ends_entry: bool
    takens: Optional[Tuple[bool, ...]] = None

    @property
    def ops(self) -> int:
        """Total operations in the run."""
        return self.n * self.block.n_ops

    @property
    def last_taken(self) -> int:
        """Index of the run's last taken outcome, or -1 if none is taken."""
        if self.takens is not None:
            for i in range(self.n - 1, -1, -1):
                if self.takens[i]:
                    return i
            return -1
        return self.n - 2 if self.ends_entry else self.n - 1

    def taken_at(self, i: int) -> bool:
        """Branch outcome of event *i* (0-based) of the run."""
        if self.takens is not None:
            return self.takens[i]
        return i < self.n - 1 or not self.ends_entry

    def events(self) -> Iterator[BlockEvent]:
        """Expand the run back into its scalar :class:`BlockEvent` form."""
        block = self.block
        k_start = self.k_start
        for i in range(self.n):
            yield BlockEvent(block, self.taken_at(i), k_start + i)


class ProgramStream:
    """Iterator over a program's dynamic basic-block executions.

    Args:
        program: the program to walk.

    The stream ends when the phase script is exhausted; :attr:`ops_emitted`
    then equals the program's nominal length give or take the final block.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self._rng = random.Random(program.seed)
        self._exec_counts: List[int] = [0] * program.n_blocks
        self._seg_index = 0
        self._seg_ops_left = program.script[0].ops if program.script else 0
        self._behavior = program.behavior_of_segment(0)
        self._entry_index = 0
        self._iters_left = self._behavior.resolve_iters(0, self._rng)
        self.ops_emitted = 0
        self._done = False

    def next_event(self) -> Optional[BlockEvent]:
        """Return the next event, or ``None`` when the script is finished."""
        if self._done:
            return None

        behavior = self._behavior
        block = behavior.entry_block(self._entry_index)
        last_iteration = self._iters_left <= 1

        if block.random_taken_prob is not None:
            taken = self._rng.random() < block.random_taken_prob
        else:
            # Loop-style control: backward branch taken until the last
            # iteration of this entry.
            taken = not last_iteration

        k = self._exec_counts[block.bid]
        self._exec_counts[block.bid] = k + 1
        self.ops_emitted += block.n_ops
        self._seg_ops_left -= block.n_ops

        # Advance loop position.
        if last_iteration:
            self._entry_index += 1
            if self._entry_index >= behavior.n_entries():
                self._entry_index = 0
            self._iters_left = behavior.resolve_iters(self._entry_index, self._rng)
        else:
            self._iters_left -= 1

        # Advance the phase script when the segment budget expires.
        if self._seg_ops_left <= 0:
            self._advance_segment()

        return BlockEvent(block, taken, k)

    def _advance_segment(self) -> None:
        """Move to the next phase-script segment (or finish the stream)."""
        self._seg_index += 1
        if self._seg_index >= len(self.program.script):
            self._done = True
        else:
            segment = self.program.script[self._seg_index]
            self._seg_ops_left = segment.ops
            self._behavior = self.program.behaviors[segment.behavior]
            self._entry_index = 0
            self._iters_left = self._behavior.resolve_iters(0, self._rng)

    def next_events(self, max_ops: int) -> List[BlockRun]:
        """Advance the stream by at least *max_ops* ops in closed form.

        The batched equivalent of calling :meth:`next_event` until the op
        budget is crossed: deterministic loop iterations collapse into
        :class:`BlockRun` run-length records with the execution counters,
        op counts and segment budget updated arithmetically, while
        random-branch blocks draw from the RNG once per event in exactly
        the scalar order.  The stream therefore lands in a byte-identical
        state (:meth:`snapshot` compares equal) to a scalar walk over the
        same budget, and expanding the runs with :meth:`BlockRun.events`
        reproduces the scalar event sequence exactly.

        Stops early (returning fewer ops) when the script ends.  Returns
        an empty list if *max_ops* is not positive or the stream is
        already exhausted.
        """
        runs: List[BlockRun] = []
        if max_ops <= 0 or self._done:
            return runs
        goal = self.ops_emitted + max_ops
        rng = self._rng
        exec_counts = self._exec_counts
        while not self._done and self.ops_emitted < goal:
            behavior = self._behavior
            block = behavior.entry_block(self._entry_index)
            n_ops = block.n_ops
            iters = self._iters_left
            # The scalar loop checks its budgets *after* each event, so
            # both the batch goal and the segment budget are crossed by
            # the event that reaches them: ceil-divide the remainders.
            by_budget = -((self.ops_emitted - goal) // n_ops)
            by_segment = -(-self._seg_ops_left // n_ops)
            n = min(iters, by_budget, by_segment)
            ends_entry = n == iters

            takens: Optional[Tuple[bool, ...]] = None
            prob = block.random_taken_prob
            if prob is not None:
                # One draw per event, in the scalar order (no other draw
                # can interleave before the entry boundary).
                takens = tuple(rng.random() < prob for _ in range(n))

            k_start = exec_counts[block.bid]
            exec_counts[block.bid] = k_start + n
            total = n * n_ops
            self.ops_emitted += total
            self._seg_ops_left -= total
            runs.append(BlockRun(block, n, k_start, ends_entry, takens))

            if ends_entry:
                # Scalar order: the entry advance resolves the next
                # entry's iteration count *before* any segment switch.
                self._entry_index += 1
                if self._entry_index >= behavior.n_entries():
                    self._entry_index = 0
                self._iters_left = behavior.resolve_iters(self._entry_index, rng)
            else:
                self._iters_left = iters - n
            if self._seg_ops_left <= 0:
                self._advance_segment()
        return runs

    def __iter__(self) -> Iterator[BlockEvent]:
        return self

    def __next__(self) -> BlockEvent:
        event = self.next_event()
        if event is None:
            raise StopIteration
        return event

    @property
    def exhausted(self) -> bool:
        """True once the phase script has been fully walked."""
        return self._done

    @property
    def current_behavior_name(self) -> str:
        """Name of the behaviour the next event will come from."""
        return self._behavior.name

    def take_ops(self, n_ops: int) -> List[BlockEvent]:
        """Consume events totalling at least *n_ops* operations.

        Raises:
            StreamExhausted: if the stream ends before *n_ops* ops are
                available.  The events consumed up to that point have
                already been taken off the stream; they are attached to
                the exception as ``partial`` so callers can still use
                (or account for) them.
        """
        if n_ops <= 0:
            return []
        out: List[BlockEvent] = []
        got = 0
        while got < n_ops:
            event = self.next_event()
            if event is None:
                raise StreamExhausted(
                    f"needed {n_ops} ops, stream ended after {got}",
                    partial=out,
                )
            out.append(event)
            got += event.block.n_ops
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Capture the complete stream state for checkpointing."""
        return {
            "rng": self._rng.getstate(),
            "exec_counts": list(self._exec_counts),
            "seg_index": self._seg_index,
            "seg_ops_left": self._seg_ops_left,
            "entry_index": self._entry_index,
            "iters_left": self._iters_left,
            "ops_emitted": self.ops_emitted,
            "done": self._done,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        if len(state["exec_counts"]) != self.program.n_blocks:
            raise ProgramError("snapshot does not match this program")
        self._rng.setstate(state["rng"])
        self._exec_counts = list(state["exec_counts"])
        self._seg_index = state["seg_index"]
        self._seg_ops_left = state["seg_ops_left"]
        self._entry_index = state["entry_index"]
        self._iters_left = state["iters_left"]
        self.ops_emitted = state["ops_emitted"]
        self._done = state["done"]
        if not self._done:
            segment = self.program.script[self._seg_index]
            self._behavior = self.program.behaviors[segment.behavior]

    def clone_fresh(self) -> "ProgramStream":
        """A new stream positioned at the start of the same program."""
        return ProgramStream(self.program)

"""Per-instruction memory-access generators.

Each static load/store owns a :class:`MemPattern` that maps the dynamic
execution count *k* of its basic block to a byte address.  Patterns are pure
functions of *k*, which makes the whole memory trace reproducible from the
block-execution counts alone — the property that lets checkpoints stay tiny
(an array of counters) and lets SimPoint's two passes see identical traces.

Four kinds cover the behaviours the workload suite needs:

* ``STREAM`` — sequential walk over a large footprint: compulsory misses at
  line granularity (memcpy/scan-like).
* ``REUSE``  — walk over a footprint that fits in L1: hits after warm-up
  (stack/temporaries).
* ``RANDOM`` — hashed index into a large footprint: thrashes L1/L2
  (hash tables, sparse matrices).
* ``CHASE``  — like RANDOM but the owning load is made dependent on its own
  previous value by the block builder, serialising the misses
  (linked-list/pointer chasing, the 181.mcf signature).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ProgramError

__all__ = ["PatternKind", "MemPattern"]

#: Knuth multiplicative-hash constant used by RANDOM/CHASE address hashing.
_HASH_MULT = 2654435761
_MASK32 = 0xFFFFFFFF


class PatternKind(Enum):
    """The four supported address-generation behaviours."""

    STREAM = "stream"
    REUSE = "reuse"
    RANDOM = "random"
    CHASE = "chase"


@dataclass(frozen=True)
class MemPattern:
    """Address generator for one static memory instruction.

    Attributes:
        kind: one of :class:`PatternKind`.
        base: start of this pattern's address region (byte address).  The
            workload builders give each pattern a disjoint region so that
            footprints do not alias unless a workload wants them to.
        span: size of the region in bytes; addresses stay in
            ``[base, base + span)``.
        stride: byte step per execution (STREAM/REUSE only).
        seed: per-pattern hash salt (RANDOM/CHASE only).
        is_write: True when the owning instruction is a store.
    """

    kind: PatternKind
    base: int
    span: int
    stride: int = 64
    seed: int = 0
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.span <= 0:
            raise ProgramError("span must be positive")
        if self.kind in (PatternKind.STREAM, PatternKind.REUSE) and self.stride <= 0:
            raise ProgramError("stride must be positive for strided patterns")

    def address(self, k: int) -> int:
        """Return the byte address for the *k*-th execution (k >= 0)."""
        if self.kind is PatternKind.STREAM or self.kind is PatternKind.REUSE:
            return self.base + (k * self.stride) % self.span
        # RANDOM / CHASE: hash of k with an avalanche finalizer, 8-byte
        # aligned.  The xor-shift steps matter: a bare multiplicative hash
        # taken modulo a power-of-two span is a bijection of the low bits,
        # which would make the address stream collision-free (0% temporal
        # reuse) instead of statistically random.
        h = ((k + self.seed) * _HASH_MULT) & _MASK32
        h ^= h >> 16
        h = (h * 0x45D9F3B) & _MASK32
        h ^= h >> 16
        return self.base + ((h % self.span) & ~0x7)

    def footprint_lines(self, line_bytes: int = 64) -> int:
        """Approximate number of distinct cache lines the pattern touches."""
        if self.kind is PatternKind.STREAM or self.kind is PatternKind.REUSE:
            step = max(self.stride, 1)
            touched = (self.span + step - 1) // step
            per_line = max(line_bytes // step, 1)
            return max(touched // per_line, 1)
        return max(self.span // line_bytes, 1)

    @property
    def serialises(self) -> bool:
        """True when the owning load must chain on its previous result."""
        return self.kind is PatternKind.CHASE

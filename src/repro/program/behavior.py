"""Behaviors: loop structures over basic blocks.

A :class:`Behavior` is the unit of *phase identity* in a synthetic program:
one behaviour corresponds to one steady-state code region (a loop nest).
When a behaviour executes, it cycles through its ``(block, iterations)``
entries; each entry runs its block ``iterations`` times back-to-back with
the terminating branch taken on every repeat except the last (classic
backward loop branch).  Iteration counts may carry jitter so the branch
predictor sees realistic exit mispredictions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..errors import ProgramError
from .block import BasicBlock

__all__ = ["Behavior"]

#: An iteration spec: a fixed count or a (mean, jitter) pair resolved per
#: visit as ``uniform(mean - jitter, mean + jitter)``.
IterSpec = Union[int, Tuple[int, int]]


@dataclass(frozen=True)
class _Entry:
    block: BasicBlock
    mean_iters: int
    jitter: int


class Behavior:
    """A named loop nest: the dynamic expression of one program phase.

    Args:
        name: behaviour label (unique within its program).
        entries: sequence of ``(block, iterations)`` pairs; ``iterations``
            is an int or ``(mean, jitter)``.
    """

    def __init__(
        self, name: str, entries: Sequence[Tuple[BasicBlock, IterSpec]]
    ) -> None:
        if not entries:
            raise ProgramError(f"behavior {name!r} needs at least one entry")
        self.name = name
        self._entries: List[_Entry] = []
        for block, spec in entries:
            if isinstance(spec, tuple):
                mean, jitter = spec
            else:
                mean, jitter = spec, 0
            if mean < 1 or jitter < 0 or jitter >= mean:
                raise ProgramError(
                    f"behavior {name!r}: iterations must satisfy "
                    "mean >= 1 and 0 <= jitter < mean"
                )
            self._entries.append(_Entry(block, mean, jitter))

    @property
    def entries(self) -> List[Tuple[BasicBlock, int, int]]:
        """List of ``(block, mean_iters, jitter)`` triples."""
        return [(e.block, e.mean_iters, e.jitter) for e in self._entries]

    @property
    def blocks(self) -> List[BasicBlock]:
        """The distinct blocks this behaviour touches, in entry order."""
        seen = set()
        out = []
        for e in self._entries:
            if e.block.bid not in seen:
                seen.add(e.block.bid)
                out.append(e.block)
        return out

    def n_entries(self) -> int:
        """Number of ``(block, iterations)`` entries."""
        return len(self._entries)

    def resolve_iters(self, entry_index: int, rng: random.Random) -> int:
        """Draw the iteration count for one visit to entry *entry_index*."""
        e = self._entries[entry_index]
        if e.jitter == 0:
            return e.mean_iters
        return rng.randint(e.mean_iters - e.jitter, e.mean_iters + e.jitter)

    def entry_block(self, entry_index: int) -> BasicBlock:
        """The block of entry *entry_index*."""
        return self._entries[entry_index].block

    def mean_ops_per_cycle_through(self) -> float:
        """Expected ops for one full pass over all entries (loop bodies)."""
        return float(sum(e.block.n_ops * e.mean_iters for e in self._entries))

    def __repr__(self) -> str:
        return f"Behavior({self.name!r}, entries={len(self._entries)})"

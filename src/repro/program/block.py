"""Basic blocks and the builder that synthesises them.

A :class:`BasicBlock` is a straight-line instruction sequence ending in a
branch.  Besides the list of :class:`~repro.isa.Instruction` objects it
carries *compiled* parallel lists (plain Python ints) that the detailed
pipeline's hot loop reads directly — attribute lookups on dataclasses are
too slow at millions of instructions per run.

:class:`BlockBuilder` generates blocks from a compact recipe (instruction
mix, dependence density, memory patterns) with a seeded RNG, so workloads
are fully reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from typing import Tuple

from ..errors import ProgramError
from ..isa import FU_CLASS, Instruction, N_FP_REGS, N_INT_REGS, Op
from .mem_patterns import MemPattern, PatternKind

__all__ = ["BasicBlock", "BlockBuilder"]

#: Bytes per encoded instruction (fixed-width RISC).
INST_BYTES = 4

#: Default cache-line size used to precompute instruction-fetch lines.
_LINE_BYTES = 64


class BasicBlock:
    """A straight-line run of instructions terminated by a branch.

    Attributes:
        bid: dense block id within its program.
        address: byte address of the first instruction.
        instructions: the static instruction sequence (last one is the
            terminating ``BRANCH``).
        mem_patterns: address generators, indexed by
            ``Instruction.mem_index``.
        random_taken_prob: when not ``None``, the terminator's outcome is
            drawn with this probability instead of being loop-controlled —
            used to model data-dependent (hard-to-predict) branches.
    """

    def __init__(
        self,
        bid: int,
        address: int,
        instructions: Sequence[Instruction],
        mem_patterns: Sequence[MemPattern] = (),
        random_taken_prob: Optional[float] = None,
    ) -> None:
        if not instructions:
            raise ProgramError("a basic block needs at least one instruction")
        if instructions[-1].op is not Op.BRANCH:
            raise ProgramError("a basic block must end in a BRANCH")
        if any(i.op is Op.BRANCH for i in instructions[:-1]):
            raise ProgramError("only the terminator may be a BRANCH")
        n_mem = sum(1 for i in instructions if i.mem_index is not None)
        if n_mem != len(mem_patterns):
            raise ProgramError(
                f"block has {n_mem} memory instructions but "
                f"{len(mem_patterns)} patterns"
            )
        for inst in instructions:
            if inst.mem_index is not None and not (
                0 <= inst.mem_index < len(mem_patterns)
            ):
                raise ProgramError("mem_index out of range")
        if random_taken_prob is not None and not 0.0 <= random_taken_prob <= 1.0:
            raise ProgramError("random_taken_prob must be in [0, 1]")

        self.bid = bid
        self.address = address
        self.instructions = list(instructions)
        self.mem_patterns = list(mem_patterns)
        self.random_taken_prob = random_taken_prob
        self.n_ops = len(self.instructions)
        self.branch_address = address + (self.n_ops - 1) * INST_BYTES

        # Compiled parallel arrays for the pipeline hot loop.  -1 encodes
        # "no register".
        self.ops: List[int] = [int(i.op) for i in self.instructions]
        self.dsts: List[int] = [
            i.dst if i.dst is not None else -1 for i in self.instructions
        ]
        self.src1s: List[int] = [
            i.src1 if i.src1 is not None else -1 for i in self.instructions
        ]
        self.src2s: List[int] = [
            i.src2 if i.src2 is not None else -1 for i in self.instructions
        ]
        self.lats: List[int] = [i.latency for i in self.instructions]
        self.mem_idx: List[int] = [
            i.mem_index if i.mem_index is not None else -1 for i in self.instructions
        ]
        #: Indices (within the block) of memory instructions, in order.
        self.mem_positions: List[int] = [
            pos for pos, i in enumerate(self.instructions) if i.mem_index is not None
        ]
        #: Distinct I-cache line addresses this block's fetch touches.
        first_line = address // _LINE_BYTES
        last_line = (address + (self.n_ops - 1) * INST_BYTES) // _LINE_BYTES
        self.inst_lines: List[int] = [
            line * _LINE_BYTES for line in range(first_line, last_line + 1)
        ]

        #: Fully compiled per-instruction rows for the batched pipeline:
        #: one tuple ``(op, fu, dst, src1, src2, lat, mem_i)`` per
        #: instruction, so the hot loop pays a single unpack instead of six
        #: parallel-list index operations per op.
        self.rows: List[Tuple[int, int, int, int, int, int, int]] = [
            (
                self.ops[i],
                int(FU_CLASS[Op(self.ops[i])]),
                self.dsts[i],
                self.src1s[i],
                self.src2s[i],
                self.lats[i],
                self.mem_idx[i],
            )
            for i in range(self.n_ops)
        ]
        #: Registers whose *incoming* ready-time can influence this block's
        #: timing: sources read before any in-block write reaches them.
        #: This is the register slice of the pipeline's memoization context.
        live_in: List[int] = []
        written: List[int] = []
        for _op, _fu, dst, src1, src2, _lat, _mi in self.rows:
            for s in (src1, src2):
                if s > 0 and s not in written and s not in live_in:
                    live_in.append(s)
            if dst > 0 and dst not in written:
                written.append(dst)
        self.live_in_regs: Tuple[int, ...] = tuple(sorted(live_in))
        #: Registers this block writes (their outgoing ready-times are the
        #: register slice of the memoized timing transition's output).
        self.written_regs: Tuple[int, ...] = tuple(sorted(written))
        #: Functional-unit classes occupied unpipelined by divide ops; the
        #: only classes whose busy-times the scoreboard ever reads.
        self.div_fus: Tuple[int, ...] = tuple(
            sorted(
                {
                    row[1]
                    for row in self.rows
                    if row[0] in (int(Op.IDIV), int(Op.FDIV))
                }
            )
        )

    def __repr__(self) -> str:
        return (
            f"BasicBlock(bid={self.bid}, addr={self.address:#x}, "
            f"ops={self.n_ops}, mem={len(self.mem_patterns)})"
        )


class BlockBuilder:
    """Synthesises basic blocks from compact, seeded recipes.

    Args:
        seed: RNG seed; two builders with the same seed produce identical
            blocks for identical call sequences.
        base_address: byte address of the first generated block; subsequent
            blocks are laid out contiguously (with padding) so distinct
            blocks have distinct branch addresses.
    """

    #: Weight presets for ``mix`` recipes.
    MIXES = {
        "int": {Op.IALU: 8, Op.IMUL: 1},
        "int_light": {Op.IALU: 12},
        "fp": {Op.FALU: 5, Op.FMUL: 3, Op.IALU: 2},
        "fp_heavy": {Op.FMUL: 4, Op.FDIV: 1, Op.FALU: 3, Op.IALU: 1},
        "div": {Op.IDIV: 1, Op.IALU: 3},
        "mixed": {Op.IALU: 6, Op.FALU: 2, Op.IMUL: 1},
    }

    def __init__(self, seed: int = 0, base_address: int = 0x1000) -> None:
        self._rng = random.Random(seed)
        self._next_address = base_address
        self._next_bid = 0
        #: Next free memory region index (for auto-assigned pattern bases).
        self._next_region = 1

    def region_base(self) -> int:
        """Reserve and return a fresh 64 MB-aligned data region base."""
        base = self._next_region << 26
        self._next_region += 1
        return base

    def pattern(
        self,
        kind: PatternKind,
        span: int,
        stride: int = 64,
        is_write: bool = False,
    ) -> MemPattern:
        """Create a :class:`MemPattern` in a freshly reserved region."""
        return MemPattern(
            kind=kind,
            base=self.region_base(),
            span=span,
            stride=stride,
            seed=self._rng.randrange(1 << 16),
            is_write=is_write,
        )

    def twin(
        self, block: BasicBlock, mem_patterns: Sequence[MemPattern]
    ) -> BasicBlock:
        """A control-flow twin of *block* with different memory patterns.

        The twin reuses *block*'s address and instruction sequence
        verbatim, so its branch stream — and therefore its BBV
        contribution — is indistinguishable from the original's; only
        the generated address stream differs.  This is the building
        block of the adversarial workloads whose phases differ purely in
        memory behaviour (visible to a MAV, invisible to a BBV).

        The new patterns must match the original slot-for-slot in
        direction (``is_write``) because the load/store opcodes are
        reused as-is.
        """
        if len(mem_patterns) != len(block.mem_patterns):
            raise ProgramError(
                "a twin needs exactly one pattern per memory instruction"
            )
        for old, new in zip(block.mem_patterns, mem_patterns):
            if old.is_write != new.is_write:
                raise ProgramError(
                    "twin patterns must keep each slot's load/store direction"
                )
        twin = BasicBlock(
            bid=self._next_bid,
            address=block.address,
            instructions=block.instructions,
            mem_patterns=mem_patterns,
            random_taken_prob=block.random_taken_prob,
        )
        self._next_bid += 1
        return twin

    def build(
        self,
        ops: int,
        mix: str = "int",
        dep_density: float = 0.35,
        mem_patterns: Sequence[MemPattern] = (),
        random_taken_prob: Optional[float] = None,
    ) -> BasicBlock:
        """Generate one block.

        Args:
            ops: total instruction count including the terminator
                (must be >= 2 + number of memory patterns).
            mix: key into :attr:`MIXES` selecting the non-memory
                instruction mix.
            dep_density: probability that an instruction reads the result
                of one of the few most recent producers; higher values make
                longer dependence chains and lower ILP.
            mem_patterns: one load/store is emitted per pattern, evenly
                spread through the block; ``CHASE`` patterns produce a load
                that depends on its own previous value (serialised misses).
            random_taken_prob: forwarded to :class:`BasicBlock`.
        """
        if mix not in self.MIXES:
            raise ProgramError(f"unknown mix {mix!r}; choose from {sorted(self.MIXES)}")
        if not 0.0 <= dep_density <= 1.0:
            raise ProgramError("dep_density must be in [0, 1]")
        n_mem = len(mem_patterns)
        if ops < n_mem + 2:
            raise ProgramError("ops too small for the requested memory patterns")

        rng = self._rng
        weights = self.MIXES[mix]
        op_choices = list(weights.keys())
        op_weights = list(weights.values())

        # Positions for the memory instructions, spread through the body.
        body = ops - 1
        mem_positions = set()
        if n_mem:
            step = body / n_mem
            for j in range(n_mem):
                pos = min(int(j * step) + rng.randrange(max(int(step), 1)), body - 1)
                while pos in mem_positions:
                    pos = (pos + 1) % body
                mem_positions.add(pos)
        mem_order = sorted(mem_positions)
        mem_for_pos = {pos: j for j, pos in enumerate(mem_order)}

        # Register allocation: a rotating window of destination registers,
        # separate for int and fp, so dependences are local and realistic.
        recent: List[int] = []
        instructions: List[Instruction] = []
        #: Dedicated chain registers for CHASE loads (self-dependence).
        chase_regs = {}
        #: Loads whose results must be consumed soon (loads load data to
        #: use: without a guaranteed consumer, miss latency would be
        #: invisible to the in-order pipeline and block IPC would depend on
        #: accidental register wiring).
        pending_loads: List[int] = []
        next_int, next_fp = 1, N_INT_REGS  # r0 is the zero register

        def fresh_reg(is_fp: bool) -> int:
            nonlocal next_int, next_fp
            if is_fp:
                reg = next_fp
                next_fp = N_INT_REGS + 1 + (next_fp - N_INT_REGS) % (N_FP_REGS - 1)
            else:
                reg = next_int
                next_int = 1 + next_int % (N_INT_REGS - 2)
            return reg

        def a_source() -> int:
            if recent and rng.random() < dep_density:
                return rng.choice(recent[-4:])
            return rng.randrange(1, N_INT_REGS)

        for pos in range(body):
            if pos in mem_for_pos:
                pat = mem_patterns[mem_for_pos[pos]]
                midx = mem_for_pos[pos]
                if pat.is_write:
                    inst = Instruction(
                        Op.STORE, dst=None, src1=a_source(), src2=a_source(),
                        mem_index=midx,
                    )
                elif pat.serialises:
                    reg = chase_regs.setdefault(midx, fresh_reg(False))
                    inst = Instruction(Op.LOAD, dst=reg, src1=reg, mem_index=midx)
                    recent.append(reg)
                else:
                    dst = fresh_reg(False)
                    inst = Instruction(Op.LOAD, dst=dst, src1=a_source(), mem_index=midx)
                    recent.append(dst)
                    pending_loads.append(dst)
            else:
                op = rng.choices(op_choices, weights=op_weights)[0]
                is_fp = op in (Op.FALU, Op.FMUL, Op.FDIV)
                dst = fresh_reg(is_fp)
                src1 = pending_loads.pop(0) if pending_loads else a_source()
                inst = Instruction(op, dst=dst, src1=src1, src2=a_source())
                recent.append(dst)
            instructions.append(inst)
            if len(recent) > 8:
                recent = recent[-8:]

        branch_src = pending_loads.pop(0) if pending_loads else a_source()
        instructions.append(Instruction(Op.BRANCH, src1=branch_src))

        address = self._next_address
        # Scatter blocks through the text segment the way real functions
        # are: gaps of up to a few KB make the mid-range address bits that
        # the 5-bit BBV hash samples actually informative.
        self._next_address += (
            ops * INST_BYTES + rng.randrange(8, 1024) * INST_BYTES
        )
        block = BasicBlock(
            bid=self._next_bid,
            address=address,
            instructions=instructions,
            mem_patterns=mem_patterns,
            random_taken_prob=random_taken_prob,
        )
        self._next_bid += 1
        return block

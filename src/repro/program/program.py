"""The :class:`Program` container and phase-script :class:`Segment`.

A program's dynamic execution is defined by its *phase script*: an ordered
list of segments, each saying "run behaviour B for approximately N ops".
Segment boundaries are where the program's true phase changes — the ground
truth against which phase-detection quality (paper Section 4) is judged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ProgramError
from .behavior import Behavior
from .block import BasicBlock

__all__ = ["Segment", "Program"]


@dataclass(frozen=True)
class Segment:
    """One phase-script entry: run *behavior* for about *ops* operations.

    Segment lengths are approximate: the stream finishes the basic block in
    flight when the budget expires, exactly as a real program crosses a
    phase boundary mid-loop.
    """

    behavior: str
    ops: int

    def __post_init__(self) -> None:
        if self.ops <= 0:
            raise ProgramError("segment ops must be positive")


class Program:
    """A complete synthetic workload.

    Attributes:
        name: workload label (e.g. ``"164.gzip"``).
        blocks: every basic block, indexed by ``bid``.
        behaviors: behaviour table keyed by name.
        script: the phase script.
        seed: RNG seed for iteration jitter and random branches.
    """

    def __init__(
        self,
        name: str,
        blocks: Sequence[BasicBlock],
        behaviors: Sequence[Behavior],
        script: Sequence[Segment],
        seed: int = 0,
    ) -> None:
        if not blocks:
            raise ProgramError("a program needs at least one block")
        if not script:
            raise ProgramError("a program needs a non-empty phase script")
        for i, block in enumerate(blocks):
            if block.bid != i:
                raise ProgramError("blocks must be densely numbered in order")
        self.name = name
        self.blocks: List[BasicBlock] = list(blocks)
        self.behaviors: Dict[str, Behavior] = {}
        for behavior in behaviors:
            if behavior.name in self.behaviors:
                raise ProgramError(f"duplicate behavior name {behavior.name!r}")
            self.behaviors[behavior.name] = behavior
        for segment in script:
            if segment.behavior not in self.behaviors:
                raise ProgramError(
                    f"script references unknown behavior {segment.behavior!r}"
                )
        self.script: List[Segment] = list(script)
        self.seed = seed

    @property
    def total_ops(self) -> int:
        """Nominal dynamic length (sum of segment budgets)."""
        return sum(s.ops for s in self.script)

    @property
    def n_blocks(self) -> int:
        """Number of static basic blocks."""
        return len(self.blocks)

    def behavior_of_segment(self, index: int) -> Behavior:
        """The behaviour executed by script entry *index*."""
        return self.behaviors[self.script[index].behavior]

    def true_phase_at(self, op_offset: int) -> str:
        """Ground-truth behaviour name active at dynamic op *op_offset*.

        Uses nominal segment budgets; the stream may overshoot each boundary
        by at most one basic block.
        """
        if op_offset < 0:
            raise ProgramError("op_offset must be non-negative")
        consumed = 0
        for segment in self.script:
            consumed += segment.ops
            if op_offset < consumed:
                return segment.behavior
        return self.script[-1].behavior

    def segment_boundaries(self) -> List[int]:
        """Cumulative nominal op offsets of segment ends."""
        out = []
        consumed = 0
        for segment in self.script:
            consumed += segment.ops
            out.append(consumed)
        return out

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, blocks={len(self.blocks)}, "
            f"behaviors={len(self.behaviors)}, segments={len(self.script)}, "
            f"ops~{self.total_ops})"
        )

"""Synthetic program model: basic blocks, behaviors, phase scripts, streams.

The paper evaluates on ten SPEC CPU2000 benchmarks executed by the IMPACT
tool chain.  Neither is available here, so this subpackage provides a
from-scratch substitute: seeded synthetic programs whose *phase structure*
(how IPC and basic-block vectors co-vary over time) is calibrated to the
qualitative character the paper reports per benchmark.  See DESIGN.md
Section 2 for the substitution argument.

A :class:`Program` is a set of :class:`BasicBlock` objects grouped into
:class:`Behavior` loops, sequenced by a phase script of
:class:`Segment` entries.  A :class:`ProgramStream` walks the script and
emits one :class:`BlockEvent` per dynamic basic-block execution; every
simulation mode in :mod:`repro.cpu` consumes that event stream.
"""

from .mem_patterns import MemPattern, PatternKind
from .block import BasicBlock, BlockBuilder
from .behavior import Behavior
from .program import Program, Segment
from .stream import BlockEvent, BlockRun, ProgramStream
from .trace_io import EventTrace, TraceStream, record_trace
from .inspect import DynamicProfile, StaticProfile, dynamic_profile, static_profile
from .synthesis import SynthesisSpec, synthesize_program
from .workloads import (
    ADVERSARIAL_NAMES,
    WORKLOAD_NAMES,
    adversarial_suite,
    get_workload,
    paper_suite,
    wupwise_analogue,
)

__all__ = [
    "MemPattern",
    "PatternKind",
    "BasicBlock",
    "BlockBuilder",
    "Behavior",
    "Program",
    "Segment",
    "BlockEvent",
    "BlockRun",
    "ProgramStream",
    "EventTrace",
    "TraceStream",
    "record_trace",
    "StaticProfile",
    "DynamicProfile",
    "static_profile",
    "dynamic_profile",
    "SynthesisSpec",
    "synthesize_program",
    "ADVERSARIAL_NAMES",
    "WORKLOAD_NAMES",
    "adversarial_suite",
    "get_workload",
    "paper_suite",
    "wupwise_analogue",
]

"""Program inspection utilities: static and dynamic workload statistics.

Gives users (and the test suite) a quantitative view of a synthetic
workload: instruction-mix histogram, memory footprints, behaviour
occupancy, and the static/dynamic block profiles that a BBV-based
technique implicitly depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa import Op
from .mem_patterns import PatternKind
from .program import Program
from .stream import ProgramStream

__all__ = ["StaticProfile", "DynamicProfile", "static_profile", "dynamic_profile"]


@dataclass
class StaticProfile:
    """Static properties of a program.

    Attributes:
        n_blocks: static basic-block count.
        n_instructions: total static instructions.
        op_mix: opcode class -> static count.
        mem_footprint_bytes: summed span of all memory patterns.
        pattern_mix: pattern kind -> count of static memory instructions.
        text_span_bytes: address range covered by the blocks.
        n_behaviors: behaviour count.
        n_segments: phase-script length.
    """

    n_blocks: int
    n_instructions: int
    op_mix: Dict[str, int] = field(default_factory=dict)
    mem_footprint_bytes: int = 0
    pattern_mix: Dict[str, int] = field(default_factory=dict)
    text_span_bytes: int = 0
    n_behaviors: int = 0
    n_segments: int = 0


def static_profile(program: Program) -> StaticProfile:
    """Compute the static profile of *program*."""
    op_mix: Dict[str, int] = {}
    pattern_mix: Dict[str, int] = {}
    footprint = 0
    n_instructions = 0
    for block in program.blocks:
        n_instructions += block.n_ops
        for inst in block.instructions:
            op_mix[Op(inst.op).name] = op_mix.get(Op(inst.op).name, 0) + 1
        for pattern in block.mem_patterns:
            kind = pattern.kind.name
            pattern_mix[kind] = pattern_mix.get(kind, 0) + 1
            footprint += pattern.span
    addresses = [b.address for b in program.blocks]
    ends = [b.branch_address + 4 for b in program.blocks]
    return StaticProfile(
        n_blocks=program.n_blocks,
        n_instructions=n_instructions,
        op_mix=op_mix,
        mem_footprint_bytes=footprint,
        pattern_mix=pattern_mix,
        text_span_bytes=max(ends) - min(addresses),
        n_behaviors=len(program.behaviors),
        n_segments=len(program.script),
    )


@dataclass
class DynamicProfile:
    """Dynamic (executed) properties of a program.

    Attributes:
        total_ops: dynamic operations executed.
        total_events: dynamic basic-block executions.
        block_ops: block id -> ops contributed.
        behavior_ops: behaviour name -> ops contributed (via the script's
            nominal attribution).
        taken_fraction: fraction of dynamic branches that were taken.
        mean_block_ops: average dynamic block length.
    """

    total_ops: int
    total_events: int
    block_ops: Dict[int, int] = field(default_factory=dict)
    behavior_ops: Dict[str, int] = field(default_factory=dict)
    taken_fraction: float = 0.0
    mean_block_ops: float = 0.0


def dynamic_profile(program: Program) -> DynamicProfile:
    """Walk *program*'s stream and accumulate dynamic statistics."""
    stream = ProgramStream(program)
    block_ops: Dict[int, int] = {}
    taken = 0
    events = 0
    for event in stream:
        n = event.block.n_ops
        block_ops[event.block.bid] = block_ops.get(event.block.bid, 0) + n
        taken += 1 if event.taken else 0
        events += 1

    behavior_ops: Dict[str, int] = {}
    for segment in program.script:
        behavior_ops[segment.behavior] = (
            behavior_ops.get(segment.behavior, 0) + segment.ops
        )

    total = stream.ops_emitted
    return DynamicProfile(
        total_ops=total,
        total_events=events,
        block_ops=block_ops,
        behavior_ops=behavior_ops,
        taken_fraction=taken / events if events else 0.0,
        mean_block_ops=total / events if events else 0.0,
    )

"""Synthetic analogues of the paper's evaluation workloads.

The paper evaluates ten SPEC CPU2000 benchmarks (first reference inputs)
plus a Pentium-4 trace of 168.wupwise for Figure 3.  Real SPEC binaries are
not available here, so each benchmark is replaced by a seeded synthetic
program calibrated to the *qualitative* character the paper attributes to
it — the properties the sampling techniques actually interact with:

========== ==================================================================
164.gzip   alternating compress/decompress phases with fine-grained IPC
           variation inside them (the Fig. 2 subject).
177.mesa   one dominant, very stable rendering phase.
179.art    very low IPC; high-frequency micro-phases "on the order of forty
           to fifty thousand operations" (scaled here) that straddle BBV
           sampling periods.
181.mcf    very low IPC pointer chasing with the same micro-phase pathology.
183.equake periodic rotation of three phases.
188.ammp   long, stable phases.
197.parser many short, irregular phases; hard-to-predict branches.
253.perlbmk several well-separated phases with distinct IPC.
256.bzip2  block-structured phase alternation with large swings.
300.twolf  weak coarse-grain phase behaviour, tiny overall sigma (~0.055),
           but short periodic bursts of abnormally high/low performance at
           fine granularity (the Fig. 10 subject).
168.wupwise bimodal IPC: time spent near two well-separated IPC levels
           (the Fig. 3 subject).
========== ==================================================================

All segment lengths are fractions of ``scale.benchmark_ops`` so the same
builders serve the paper-scale and scaled configurations.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from ..config import Scale, ScaleConfig
from ..errors import ConfigurationError
from .behavior import Behavior
from .block import BasicBlock, BlockBuilder
from .mem_patterns import PatternKind
from .program import Program, Segment

__all__ = [
    "ADVERSARIAL_NAMES",
    "WORKLOAD_NAMES",
    "adversarial_suite",
    "get_workload",
    "paper_suite",
    "wupwise_analogue",
]

#: The ten benchmarks of the paper's Section 5 evaluation, in figure order.
WORKLOAD_NAMES: Tuple[str, ...] = (
    "164.gzip",
    "177.mesa",
    "179.art",
    "181.mcf",
    "183.equake",
    "188.ammp",
    "197.parser",
    "253.perlbmk",
    "256.bzip2",
    "300.twolf",
)

#: BBV-adversarial workloads (signal-ablation subjects): every phase pair
#: executes byte-identical code via :meth:`BlockBuilder.twin`, so the
#: branch stream — and the BBV — never changes; only the memory-access
#: stream (and hence the IPC) does.  Deliberately *not* part of
#: :data:`WORKLOAD_NAMES`: the paper's Section-5 suite and its cached
#: results stay untouched.
ADVERSARIAL_NAMES: Tuple[str, ...] = (
    "adv.stride_flip",
    "adv.footprint_step",
)

# Footprint sizes chosen relative to the 64 KB L1 / 1 MB L2 machine.
_L1_FIT = 8 * 1024
_L2_FIT = 256 * 1024
_L2_BUST = 8 * 1024 * 1024
_HUGE = 16 * 1024 * 1024


class _WorkloadKit:
    """Shared block recipes used by all the workload builders."""

    def __init__(self, seed: int) -> None:
        self.builder = BlockBuilder(seed=seed)
        self.blocks: List[BasicBlock] = []
        self.rng = random.Random(seed ^ 0x5EED)

    def _add(self, block: BasicBlock) -> BasicBlock:
        self.blocks.append(block)
        return block

    def compute_hi(self, ops: int = 24) -> BasicBlock:
        """High-IPC integer compute: L1-resident, shallow dependences."""
        b = self.builder
        pats = [b.pattern(PatternKind.REUSE, _L1_FIT, stride=8)]
        return self._add(b.build(ops, mix="int_light", dep_density=0.10, mem_patterns=pats))

    def compute_fp(self, ops: int = 20) -> BasicBlock:
        """Floating-point compute with moderate ILP."""
        b = self.builder
        pats = [b.pattern(PatternKind.REUSE, _L1_FIT, stride=8)]
        return self._add(b.build(ops, mix="fp", dep_density=0.15, mem_patterns=pats))

    def fp_heavy(self, ops: int = 18) -> BasicBlock:
        """Divide-heavy floating point: long latencies, modest IPC."""
        b = self.builder
        return self._add(b.build(ops, mix="fp_heavy", dep_density=0.50))

    def stream_mid(self, ops: int = 18) -> BasicBlock:
        """Streaming loads over a large array: mid IPC."""
        b = self.builder
        pats = [
            b.pattern(PatternKind.STREAM, _L2_BUST, stride=8),
            b.pattern(PatternKind.REUSE, _L1_FIT, stride=8, is_write=True),
        ]
        return self._add(b.build(ops, mix="mixed", dep_density=0.35, mem_patterns=pats))

    def stream_l2(self, ops: int = 18) -> BasicBlock:
        """Streaming within an L2-resident array: mid-high IPC."""
        b = self.builder
        pats = [b.pattern(PatternKind.STREAM, _L2_FIT, stride=8)]
        return self._add(b.build(ops, mix="mixed", dep_density=0.30, mem_patterns=pats))

    def thrash(self, ops: int = 12, spans: int = 2) -> BasicBlock:
        """Hashed accesses over an L2-busting footprint: very low IPC."""
        b = self.builder
        pats = [b.pattern(PatternKind.RANDOM, _L2_BUST) for _ in range(spans)]
        return self._add(b.build(ops, mix="int", dep_density=0.30, mem_patterns=pats))

    def thrash_l2(self, ops: int = 18) -> BasicBlock:
        """Hashed accesses within an L2-resident footprint: mid-low IPC."""
        b = self.builder
        pats = [b.pattern(PatternKind.RANDOM, 128 * 1024)]
        return self._add(b.build(ops, mix="int", dep_density=0.30, mem_patterns=pats))

    def chase(self, ops: int = 12) -> BasicBlock:
        """Serialised pointer chasing over a huge footprint: very low IPC."""
        b = self.builder
        pats = [
            b.pattern(PatternKind.CHASE, _HUGE),
            b.pattern(PatternKind.RANDOM, _L2_BUST),
        ]
        return self._add(b.build(ops, mix="int", dep_density=0.40, mem_patterns=pats))

    def branchy(self, ops: int = 10, taken_prob: float = 0.4) -> BasicBlock:
        """Data-dependent branching: mispredict-limited IPC."""
        b = self.builder
        pats = [b.pattern(PatternKind.REUSE, _L1_FIT, stride=8)]
        return self._add(
            b.build(
                ops,
                mix="int",
                dep_density=0.25,
                mem_patterns=pats,
                random_taken_prob=taken_prob,
            )
        )


def _fill_script(
    rng: random.Random,
    pattern: Sequence[Tuple[str, int, int]],
    total_ops: int,
) -> List[Segment]:
    """Repeat *pattern* (behavior, mean_ops, jitter) until *total_ops*."""
    segments: List[Segment] = []
    acc = 0
    while acc < total_ops:
        for name, mean, jitter in pattern:
            ops = rng.randint(mean - jitter, mean + jitter) if jitter else mean
            ops = max(ops, 1_000)
            segments.append(Segment(name, ops))
            acc += ops
            if acc >= total_ops:
                break
    return segments


def _gzip(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=164)
    stream = kit.stream_mid()
    inner = kit.compute_hi()
    table = kit.thrash_l2()
    emit = kit.compute_fp()
    # Compress: alternating memory-bound and compute-bound inner loops at a
    # few-thousand-op period — the fine-grain variation of Fig. 2.
    compress = Behavior(
        "compress",
        [(stream, (80, 20)), (inner, (60, 15)), (table, (90, 25)), (inner, (40, 10))],
    )
    decompress = Behavior("decompress", [(inner, (90, 20)), (emit, (70, 15))])
    io = Behavior("io", [(stream, (120, 30))])
    rng = random.Random(1640)
    script = _fill_script(
        rng,
        [
            ("compress", total // 12, total // 60),
            ("decompress", total // 18, total // 90),
            ("io", total // 48, total // 240),
        ],
        total,
    )
    return Program("164.gzip", kit.blocks, [compress, decompress, io], script, seed=164)


def _mesa(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=177)
    shade = kit.compute_fp(ops=26)
    raster = kit.compute_hi(ops=22)
    texture = kit.stream_l2()
    render = Behavior(
        "render", [(shade, (120, 10)), (raster, (100, 8)), (texture, (30, 4))]
    )
    setup = Behavior("setup", [(kit.stream_mid(), (60, 15))])
    rng = random.Random(1770)
    script = _fill_script(
        rng,
        [
            ("render", total // 5, total // 50),
            ("setup", total // 80, total // 400),
        ],
        total,
    )
    return Program("177.mesa", kit.blocks, [render, setup], script, seed=177)


def _art(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    # Micro-phase period ~1/120 of a 320k-op coarse segment: at the scaled
    # configuration this is ~4-5k ops, matching the paper's 40-50k at 10x.
    kit = _WorkloadKit(seed=179)
    scan_mem = kit.thrash(ops=12, spans=3)
    scan_cmp = kit.compute_fp(ops=24)
    train_mem = kit.thrash(ops=12, spans=2)
    train_cmp = kit.fp_heavy(ops=18)
    # Micro-phase period ~half the shortest Fig.-11 BBV sampling period —
    # the paper's ratio (40-50k-op oscillations vs a 100k-op period), the
    # regime where micro-phases straddle sampling periods and hurt PGSS.
    micro = max(total // 600, 2_000)
    scan = Behavior(
        "scan",
        [(scan_mem, (micro // 24, micro // 96)), (scan_cmp, (micro // 48, micro // 192))],
    )
    train = Behavior(
        "train",
        [(train_mem, (micro // 24, micro // 96)), (train_cmp, (micro // 36, micro // 144))],
    )
    rng = random.Random(1790)
    script = _fill_script(
        rng,
        [("scan", total // 6, total // 30), ("train", total // 8, total // 40)],
        total,
    )
    return Program("179.art", kit.blocks, [scan, train], script, seed=179)


def _mcf(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=181)
    arcs = kit.chase(ops=12)
    nodes = kit.chase(ops=14)
    price = kit.compute_hi(ops=20)
    fix = kit.thrash(ops=12, spans=2)
    # Same micro-phase regime as 179.art (see comment there).
    micro = max(total // 600, 2_000)
    simplex = Behavior(
        "simplex",
        [(arcs, (micro // 24, micro // 96)), (price, (micro // 60, micro // 240))],
    )
    implicit = Behavior(
        "implicit",
        [(nodes, (micro // 28, micro // 112)), (fix, (micro // 36, micro // 144))],
    )
    rng = random.Random(1810)
    script = _fill_script(
        rng,
        [("simplex", total // 7, total // 35), ("implicit", total // 9, total // 45)],
        total,
    )
    return Program("181.mcf", kit.blocks, [simplex, implicit], script, seed=181)


def _equake(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=183)
    smvp = Behavior("smvp", [(kit.stream_mid(), (90, 20)), (kit.compute_fp(), (30, 8))])
    update = Behavior("update", [(kit.compute_fp(ops=24), (110, 20))])
    boundary = Behavior("boundary", [(kit.thrash_l2(), (70, 15))])
    rng = random.Random(1830)
    script = _fill_script(
        rng,
        [
            ("smvp", total // 12, total // 120),
            ("update", total // 16, total // 160),
            ("boundary", total // 32, total // 320),
        ],
        total,
    )
    return Program("183.equake", kit.blocks, [smvp, update, boundary], script, seed=183)


def _ammp(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=188)
    md = Behavior("md", [(kit.compute_fp(ops=24), (130, 25)), (kit.fp_heavy(), (50, 10))])
    neighbor = Behavior(
        "neighbor", [(kit.thrash(spans=2), (80, 20)), (kit.stream_mid(), (60, 15))]
    )
    script = [
        Segment("md", int(total * 0.42)),
        Segment("neighbor", int(total * 0.10)),
        Segment("md", int(total * 0.38)),
        Segment("neighbor", int(total * 0.10)),
    ]
    return Program("188.ammp", kit.blocks, [md, neighbor], script, seed=188)


def _parser(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=197)
    behaviors = [
        Behavior("dict", [(kit.branchy(taken_prob=0.45), (90, 25)), (kit.compute_hi(), (40, 10))]),
        Behavior("link", [(kit.thrash_l2(), (60, 15)), (kit.branchy(taken_prob=0.3), (70, 20))]),
        Behavior("parse", [(kit.compute_hi(ops=20), (100, 25))]),
        Behavior("prune", [(kit.stream_l2(), (80, 20)), (kit.branchy(taken_prob=0.5), (50, 12))]),
        Behavior("post", [(kit.compute_fp(), (90, 20))]),
    ]
    rng = random.Random(1970)
    names = [b.name for b in behaviors]
    segments: List[Segment] = []
    acc = 0
    while acc < total:
        name = rng.choice(names)
        ops = rng.randint(total // 90, total // 25)
        segments.append(Segment(name, ops))
        acc += ops
    return Program("197.parser", kit.blocks, behaviors, segments, seed=197)


def _perlbmk(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=253)
    behaviors = [
        Behavior("interp", [(kit.branchy(taken_prob=0.35), (80, 20)), (kit.compute_hi(), (60, 15))]),
        Behavior("regex", [(kit.compute_hi(ops=26), (120, 30))]),
        Behavior("hash", [(kit.thrash_l2(), (80, 20))]),
        Behavior("string", [(kit.stream_l2(), (100, 25)), (kit.compute_fp(), (40, 10))]),
    ]
    rng = random.Random(2530)
    script = _fill_script(
        rng,
        [
            ("interp", total // 10, total // 50),
            ("regex", total // 14, total // 70),
            ("hash", total // 20, total // 100),
            ("interp", total // 12, total // 60),
            ("string", total // 16, total // 80),
        ],
        total,
    )
    return Program("253.perlbmk", kit.blocks, behaviors, script, seed=253)


def _bzip2(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=256)
    sort = Behavior(
        "sort", [(kit.thrash_l2(), (70, 20)), (kit.stream_l2(), (50, 12))]
    )
    huffman = Behavior("huffman", [(kit.compute_hi(ops=26), (130, 30))])
    rle = Behavior("rle", [(kit.compute_hi(ops=18), (60, 15)), (kit.stream_l2(), (40, 10))])
    rng = random.Random(2560)
    script = _fill_script(
        rng,
        [
            ("sort", total // 9, total // 45),
            ("huffman", total // 11, total // 55),
            ("rle", total // 30, total // 150),
        ],
        total,
    )
    return Program("256.bzip2", kit.blocks, [sort, huffman, rle], script, seed=256)


def _twolf(scale: ScaleConfig) -> Program:
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=300)
    # The dominant behaviour mixes blocks of *similar* IPC so the overall
    # sigma stays small (the paper reports sigma = .055 for 300.twolf).
    place = Behavior(
        "place",
        [(kit.stream_l2(), (90, 10)), (kit.thrash_l2(), (35, 4)),
         (kit.branchy(taken_prob=0.42), (45, 5))],
    )
    spike_hi = Behavior("spike_hi", [(kit.compute_hi(ops=28), (120, 20))])
    spike_lo = Behavior("spike_lo", [(kit.thrash(spans=2), (80, 15))])
    # Weak coarse phases: one dominant behaviour with rare, short bursts of
    # abnormal performance (paper Section 4, Fig. 10 discussion).
    rng = random.Random(3000)
    burst = max(total // 1200, 2_000)
    segments: List[Segment] = []
    acc = 0
    toggle = 0
    while acc < total:
        ops = rng.randint(total // 22, total // 16)
        segments.append(Segment("place", ops))
        acc += ops
        if acc >= total:
            break
        # Periodic, short abnormal bursts (Section 4): alternate high and
        # low, with a quiet slot in between so the bursts stay rare.
        if toggle % 3 != 2:
            name = "spike_hi" if toggle % 3 == 0 else "spike_lo"
            segments.append(Segment(name, burst))
            acc += burst
        toggle += 1
    return Program("300.twolf", kit.blocks, [place, spike_hi, spike_lo], segments, seed=300)


def wupwise_analogue(scale: ScaleConfig) -> Program:
    """The Figure 3 subject: a workload with strongly bimodal IPC."""
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=168)
    zgemm = Behavior(
        "zgemm", [(kit.compute_fp(ops=26), (140, 25)), (kit.compute_hi(), (60, 10))]
    )
    gammul = Behavior(
        "gammul", [(kit.stream_mid(), (80, 20)), (kit.thrash(spans=2), (50, 12))]
    )
    rng = random.Random(1680)
    script = _fill_script(
        rng,
        [
            ("zgemm", total // 10, total // 80),
            ("gammul", total // 14, total // 110),
        ],
        total,
    )
    return Program("168.wupwise", kit.blocks, [zgemm, gammul], script, seed=168)


# Adversarial pattern geometry.  Each phase's working set is a *short
# deterministic address cycle* (span / stride addresses, far fewer than
# one BBV sampling period's executions), so the per-period MAV is
# stationary inside a phase; hostility comes from *conflict* misses, not
# footprint: a stride of one cache-way maps every address to the same
# set, and a cycle longer than the associativity evicts on every access.
_L1_WAY = 16 * 1024  # 64 KB / 4 ways: stride -> one L1 set, L2-resident
_L2_WAY = 128 * 1024  # 1 MB / 8 ways: stride -> one L1 *and* L2 set


def _adv_stride_flip(scale: ScaleConfig) -> Program:
    """Two phases over byte-identical code: L1-resident streaming flips
    to a memory-latency conflict chain.  The BBV stream is unchanged
    across the flip; the memory stream (and IPC) is not."""
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=901)
    b = kit.builder
    friendly_pats = [
        b.pattern(PatternKind.REUSE, _L1_FIT, stride=256),
        b.pattern(PatternKind.REUSE, _L1_FIT, stride=256, is_write=True),
    ]
    core = kit._add(
        b.build(20, mix="mixed", dep_density=0.30, mem_patterns=friendly_pats)
    )
    # 32 addresses one L2 way apart: same L1 and L2 set, 32 > assoc at
    # both levels, so every access conflict-misses to memory.
    hostile_pats = [
        b.pattern(PatternKind.REUSE, 32 * _L2_WAY, stride=_L2_WAY),
        b.pattern(
            PatternKind.REUSE, 32 * _L2_WAY, stride=_L2_WAY, is_write=True
        ),
    ]
    core_hostile = kit._add(b.twin(core, hostile_pats))
    glue_pats = [b.pattern(PatternKind.REUSE, _L1_FIT, stride=256)]
    glue = kit._add(
        b.build(24, mix="int_light", dep_density=0.10, mem_patterns=glue_pats)
    )
    # Identical (block-address, iteration) structure in both behaviours —
    # zero jitter keeps the two branch streams exactly equal.
    friendly = Behavior("friendly", [(core, 20), (glue, 10)])
    hostile = Behavior("hostile", [(core_hostile, 20), (glue, 10)])
    rng = random.Random(9010)
    script = _fill_script(
        rng,
        [("friendly", total // 8, 0), ("hostile", total // 8, 0)],
        total,
    )
    return Program(
        "adv.stride_flip", kit.blocks, [friendly, hostile], script, seed=901
    )


def _adv_footprint_step(scale: ScaleConfig) -> Program:
    """Three phases over byte-identical code stepping the access latency
    L1 hit -> L2 hit -> memory.  Each step moves the IPC without moving
    a single branch."""
    total = scale.benchmark_ops
    kit = _WorkloadKit(seed=902)
    b = kit.builder
    near_pats = [b.pattern(PatternKind.REUSE, _L1_FIT, stride=256)]
    core = kit._add(
        b.build(18, mix="int", dep_density=0.25, mem_patterns=near_pats)
    )
    # 64 addresses one L1 way apart: one L1 set (misses), spread thinly
    # enough across L2 sets to stay L2-resident (hits).
    mid_pats = [b.pattern(PatternKind.REUSE, 64 * _L1_WAY, stride=_L1_WAY)]
    core_mid = kit._add(b.twin(core, mid_pats))
    # 32 addresses one L2 way apart: conflict-miss to memory (see above).
    far_pats = [b.pattern(PatternKind.REUSE, 32 * _L2_WAY, stride=_L2_WAY)]
    core_far = kit._add(b.twin(core, far_pats))
    glue_pats = [b.pattern(PatternKind.REUSE, _L1_FIT, stride=256)]
    glue = kit._add(
        b.build(22, mix="fp", dep_density=0.15, mem_patterns=glue_pats)
    )
    behaviors = [
        Behavior("near", [(core, 25), (glue, 10)]),
        Behavior("mid", [(core_mid, 25), (glue, 10)]),
        Behavior("far", [(core_far, 25), (glue, 10)]),
    ]
    rng = random.Random(9020)
    script = _fill_script(
        rng,
        [
            ("near", total // 9, 0),
            ("mid", total // 9, 0),
            ("far", total // 9, 0),
        ],
        total,
    )
    return Program(
        "adv.footprint_step", kit.blocks, behaviors, script, seed=902
    )


#: Builder registry keyed by benchmark name.
_BUILDERS: Dict[str, Callable[[ScaleConfig], Program]] = {
    "164.gzip": _gzip,
    "177.mesa": _mesa,
    "179.art": _art,
    "181.mcf": _mcf,
    "183.equake": _equake,
    "188.ammp": _ammp,
    "197.parser": _parser,
    "253.perlbmk": _perlbmk,
    "256.bzip2": _bzip2,
    "300.twolf": _twolf,
    "168.wupwise": wupwise_analogue,
    "adv.stride_flip": _adv_stride_flip,
    "adv.footprint_step": _adv_footprint_step,
}


def get_workload(name: str, scale: ScaleConfig = Scale.SCALED) -> Program:
    """Build the named workload at the given scale.

    Args:
        name: one of :data:`WORKLOAD_NAMES`, :data:`ADVERSARIAL_NAMES`,
            or ``"168.wupwise"``.
        scale: interval-scale configuration.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {sorted(_BUILDERS)}"
        ) from None
    return builder(scale)


def paper_suite(scale: ScaleConfig = Scale.SCALED) -> List[Program]:
    """The ten Section-5 benchmarks, in the paper's figure order."""
    return [get_workload(name, scale) for name in WORKLOAD_NAMES]


def adversarial_suite(scale: ScaleConfig = Scale.SCALED) -> List[Program]:
    """The BBV-adversarial signal-ablation subjects."""
    return [get_workload(name, scale) for name in ADVERSARIAL_NAMES]

"""Block-event trace recording and replay (trace-driven simulation).

The framework is execution-driven — streams are generated from program
structure — but trace-driven operation matters for two workflows the
surrounding literature uses heavily:

* *dynamic trace generation* (Pereira et al., the Online-SimPoint paper,
  generate "cycle-close" traces for embedded-system studies);
* *cross-tool reproduction*: a captured trace replays bit-identically on a
  different machine configuration, isolating architectural effects from
  workload generation.

:class:`EventTrace` stores a dynamic basic-block event sequence compactly
(three numpy arrays); :class:`TraceStream` replays one through the normal
:class:`~repro.cpu.SimulationEngine` interface.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..errors import ProgramError, StreamExhausted
from .program import Program
from .stream import BlockEvent, ProgramStream

__all__ = ["EventTrace", "TraceStream", "record_trace"]


class EventTrace:
    """A compact dynamic basic-block event sequence.

    Attributes:
        program_name: name of the program the trace was captured from.
        bids: ``(n,)`` block ids, in execution order.
        taken: ``(n,)`` terminator outcomes.
        ks: ``(n,)`` per-block execution counts (memory-generator inputs).
    """

    def __init__(
        self,
        program_name: str,
        bids: np.ndarray,
        taken: np.ndarray,
        ks: np.ndarray,
    ) -> None:
        if not (len(bids) == len(taken) == len(ks)):
            raise ProgramError("trace arrays must have equal lengths")
        self.program_name = program_name
        self.bids = np.asarray(bids, dtype=np.int32)
        self.taken = np.asarray(taken, dtype=bool)
        self.ks = np.asarray(ks, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.bids.shape[0])

    def total_ops(self, program: Program) -> int:
        """Dynamic op count of the trace when bound to *program*."""
        sizes = np.array([b.n_ops for b in program.blocks], dtype=np.int64)
        return int(sizes[self.bids].sum())

    def save(self, path: Path) -> None:
        """Serialise to a compressed ``.npz`` file."""
        np.savez_compressed(
            path,
            program=np.array(self.program_name),
            bids=self.bids,
            taken=self.taken,
            ks=self.ks,
        )

    @classmethod
    def load(cls, path: Path) -> "EventTrace":
        """Load a trace previously written by :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        return cls(
            program_name=str(data["program"]),
            bids=data["bids"],
            taken=data["taken"],
            ks=data["ks"],
        )

    def as_stream(self, program: Program) -> "TraceStream":
        """Bind the trace to *program* for replay."""
        return TraceStream(program, self)


class TraceStream:
    """Replays an :class:`EventTrace` through the stream interface.

    Drop-in compatible with :class:`~repro.program.ProgramStream` for the
    simulation engine: ``next_event``/iteration, ``ops_emitted``,
    ``exhausted``, and snapshot/restore.
    """

    def __init__(self, program: Program, trace: EventTrace) -> None:
        if trace.program_name != program.name:
            raise ProgramError(
                f"trace was captured from {trace.program_name!r}, "
                f"not {program.name!r}"
            )
        if len(trace) and int(trace.bids.max()) >= program.n_blocks:
            raise ProgramError("trace references blocks the program lacks")
        self.program = program
        self.trace = trace
        self._index = 0
        self.ops_emitted = 0

    @property
    def exhausted(self) -> bool:
        """True once every event has been replayed."""
        return self._index >= len(self.trace)

    def next_event(self) -> Optional[BlockEvent]:
        """Return the next replayed event, or ``None`` at the end."""
        i = self._index
        trace = self.trace
        if i >= len(trace):
            return None
        block = self.program.blocks[int(trace.bids[i])]
        event = BlockEvent(block, bool(trace.taken[i]), int(trace.ks[i]))
        self._index = i + 1
        self.ops_emitted += block.n_ops
        return event

    def __iter__(self) -> Iterator[BlockEvent]:
        return self

    def __next__(self) -> BlockEvent:
        event = self.next_event()
        if event is None:
            raise StopIteration
        return event

    def take_ops(self, n_ops: int) -> List[BlockEvent]:
        """Consume events totalling at least *n_ops* operations.

        Raises:
            StreamExhausted: if the trace ends first; the events already
                consumed ride along as ``partial``.
        """
        out: List[BlockEvent] = []
        got = 0
        while got < n_ops:
            event = self.next_event()
            if event is None:
                raise StreamExhausted(
                    f"needed {n_ops} ops, trace ended after {got}",
                    partial=out,
                )
            out.append(event)
            got += event.block.n_ops
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Capture replay position."""
        return {"index": self._index, "ops_emitted": self.ops_emitted}

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore a position captured by :meth:`snapshot`."""
        self._index = state["index"]
        self.ops_emitted = state["ops_emitted"]

    def clone_fresh(self) -> "TraceStream":
        """A new stream at the start of the same trace."""
        return TraceStream(self.program, self.trace)


def record_trace(program: Program, max_ops: Optional[int] = None) -> EventTrace:
    """Capture *program*'s dynamic event sequence.

    Args:
        program: the workload to record.
        max_ops: stop after at least this many ops (default: full run).
    """
    stream = ProgramStream(program)
    bids = []
    taken = []
    ks = []
    while True:
        if max_ops is not None and stream.ops_emitted >= max_ops:
            break
        event = stream.next_event()
        if event is None:
            break
        bids.append(event.block.bid)
        taken.append(event.taken)
        ks.append(event.k)
    return EventTrace(
        program_name=program.name,
        bids=np.array(bids, dtype=np.int32),
        taken=np.array(taken, dtype=bool),
        ks=np.array(ks, dtype=np.int64),
    )

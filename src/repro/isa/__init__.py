"""Instruction-set model for the simulated RISC machine.

The simulated processor (paper Section 5) executes a simple in-order RISC
ISA.  This subpackage defines the opcode classes, their latencies and
functional-unit requirements, and the static-instruction encoding used by
:mod:`repro.program` and :mod:`repro.cpu`.
"""

from .instructions import (
    Op,
    OP_LATENCY,
    FU_CLASS,
    FU_LIMITS,
    N_INT_REGS,
    N_FP_REGS,
    N_REGS,
    ZERO_REG,
    Instruction,
    is_mem_op,
    is_branch_op,
)

__all__ = [
    "Op",
    "OP_LATENCY",
    "FU_CLASS",
    "FU_LIMITS",
    "N_INT_REGS",
    "N_FP_REGS",
    "N_REGS",
    "ZERO_REG",
    "Instruction",
    "is_mem_op",
    "is_branch_op",
]

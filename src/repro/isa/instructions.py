"""Opcode classes, latencies and the static instruction encoding.

The ISA is a load/store RISC with 32 integer and 32 floating-point
registers.  Register numbers are unified into a single namespace
``0 .. N_REGS-1`` (integer registers first) so the pipeline can keep all
ready-times in one flat array.  Register 0 is hard-wired to zero and never
creates a dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from ..errors import ProgramError

__all__ = [
    "Op",
    "OP_LATENCY",
    "FU_CLASS",
    "FU_LIMITS",
    "N_INT_REGS",
    "N_FP_REGS",
    "N_REGS",
    "ZERO_REG",
    "Instruction",
    "is_mem_op",
    "is_branch_op",
]

N_INT_REGS = 32
N_FP_REGS = 32
N_REGS = N_INT_REGS + N_FP_REGS

#: Integer register 0: reads are always ready, writes are discarded.
ZERO_REG = 0


class Op(IntEnum):
    """Opcode classes recognised by the timing model."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FALU = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    NOP = 9


#: Execution latency in cycles for each opcode class.  ``LOAD`` latency is
#: the address-generation cycle only; the cache hierarchy adds access time.
OP_LATENCY = {
    Op.IALU: 1,
    Op.IMUL: 3,
    Op.IDIV: 12,
    Op.FALU: 2,
    Op.FMUL: 4,
    Op.FDIV: 16,
    Op.LOAD: 1,
    Op.STORE: 1,
    Op.BRANCH: 1,
    Op.NOP: 1,
}


class FuClass(IntEnum):
    """Functional-unit pools contended for at issue."""

    SIMPLE = 0   # integer ALU / NOP / branch resolution
    COMPLEX = 1  # integer multiply / divide
    FP = 2       # floating-point pipeline
    MEM = 3      # load/store ports


#: Map from opcode class to functional-unit pool.
FU_CLASS = {
    Op.IALU: FuClass.SIMPLE,
    Op.IMUL: FuClass.COMPLEX,
    Op.IDIV: FuClass.COMPLEX,
    Op.FALU: FuClass.FP,
    Op.FMUL: FuClass.FP,
    Op.FDIV: FuClass.FP,
    Op.LOAD: FuClass.MEM,
    Op.STORE: FuClass.MEM,
    Op.BRANCH: FuClass.SIMPLE,
    Op.NOP: FuClass.SIMPLE,
}

#: Issue slots per cycle available in each functional-unit pool on the
#: default 4-wide machine.
FU_LIMITS = {
    FuClass.SIMPLE: 4,
    FuClass.COMPLEX: 1,
    FuClass.FP: 2,
    FuClass.MEM: 2,
}


def is_mem_op(op: Op) -> bool:
    """Return True if *op* accesses the data cache."""
    return op is Op.LOAD or op is Op.STORE


def is_branch_op(op: Op) -> bool:
    """Return True if *op* is a control-transfer instruction."""
    return op is Op.BRANCH


@dataclass(frozen=True)
class Instruction:
    """One static instruction inside a basic block.

    Attributes:
        op: opcode class.
        dst: destination register, or ``None`` when the instruction writes
            no register (stores, branches, NOPs).
        src1: first source register, or ``None``.
        src2: second source register, or ``None``.
        mem_index: index of this instruction's memory-access generator
            within its block, or ``None`` for non-memory instructions.
    """

    op: Op
    dst: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    mem_index: Optional[int] = None

    def __post_init__(self) -> None:
        for reg in (self.dst, self.src1, self.src2):
            if reg is not None and not 0 <= reg < N_REGS:
                raise ProgramError(f"register {reg} out of range 0..{N_REGS - 1}")
        if is_mem_op(self.op):
            if self.mem_index is None:
                raise ProgramError(f"{self.op.name} requires a mem_index")
        elif self.mem_index is not None:
            raise ProgramError(f"{self.op.name} must not carry a mem_index")
        if self.op is Op.STORE and self.dst is not None:
            raise ProgramError("STORE writes no register")

    @property
    def latency(self) -> int:
        """Base execution latency in cycles (excluding cache time)."""
        return OP_LATENCY[self.op]

"""Exception hierarchy for the PGSS-Sim framework.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch framework errors without
accidentally swallowing programming mistakes such as ``TypeError``.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProgramError",
    "SimulationError",
    "SnapshotError",
    "StreamExhausted",
    "SamplingError",
    "EstimateError",
    "ClusteringError",
    "CacheError",
    "OrchestrationError",
    "FleetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class ProgramError(ReproError):
    """A synthetic program or basic block is malformed."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class SnapshotError(SimulationError):
    """A checkpoint snapshot does not match the component restoring it."""


class StreamExhausted(ReproError):
    """A program stream ran out of events while more are required.

    Raised by helpers that *must* consume a fixed number of operations;
    plain iteration simply stops instead.

    Attributes:
        partial: the events consumed before the stream ended.  Consuming
            them *is* destructive — the stream has already advanced — so
            they are attached here rather than silently discarded.
    """

    def __init__(self, message: str = "", partial: Sequence[Any] = ()) -> None:
        super().__init__(message)
        self.partial: Tuple[Any, ...] = tuple(partial)


class SamplingError(ReproError):
    """A sampling technique was configured or driven incorrectly."""


class EstimateError(SamplingError, ValueError):
    """A statistic was requested with inputs it is undefined for.

    Subclasses :class:`ValueError` as well as :class:`SamplingError` so
    generic numeric callers (``except ValueError``) and framework
    callers (``except ReproError``) both catch it — e.g. a percent
    error against a zero true IPC.
    """


class ClusteringError(ReproError):
    """k-means clustering could not be performed on the given data."""


class CacheError(ReproError):
    """A result-cache payload or on-disk entry is unusable.

    Raised when a cache key payload contains values that cannot be
    serialised to JSON losslessly (silently stringifying them could
    collapse distinct configurations onto one key).
    """


class OrchestrationError(ReproError):
    """The parallel experiment driver was configured or driven incorrectly."""


class FleetError(OrchestrationError):
    """The distributed job queue or a fleet worker was misused.

    Subclasses :class:`OrchestrationError` because the fleet is the
    multi-host generalisation of the in-process parallel driver; callers
    that already handle orchestration failures handle fleet failures
    for free.
    """

"""Random projection for high-dimensional BBVs (SimPoint preprocessing).

SimPoint projects full basic-block vectors (dimension = number of static
basic blocks, often tens of thousands) down to ~15 dimensions before
clustering.  The reduced 32-entry BBVs this repository uses by default do
not need it, but the wide-BBV ablation does, and it belongs to a faithful
SimPoint substrate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ClusteringError

__all__ = ["random_projection"]


def random_projection(
    points: Sequence[Sequence[float]],
    target_dim: int = 15,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Project *points* to *target_dim* dimensions with a Gaussian matrix.

    The projection matrix has i.i.d. ``N(0, 1/target_dim)`` entries, which
    preserves pairwise distances in expectation (Johnson-Lindenstrauss).

    Raises:
        ClusteringError: if *target_dim* is not in ``1..dim``.
    """
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2:
        raise ClusteringError("points must be 2-D")
    dim = data.shape[1]
    if not 1 <= target_dim <= dim:
        raise ClusteringError(f"target_dim must be in 1..{dim}")
    if target_dim == dim:
        return data.copy()
    rng = np.random.default_rng(seed)
    matrix = rng.normal(0.0, 1.0 / np.sqrt(target_dim), size=(dim, target_dim))
    return data @ matrix

"""BIC-based cluster-count selection (SimPoint 3.0 methodology).

SimPoint picks the number of clusters by running k-means for a range of k
and keeping the smallest k whose Bayesian Information Criterion reaches a
chosen fraction (typically 90%) of the best observed score.  The BIC here
follows the spherical-Gaussian formulation of Pelleg & Moore's X-means,
the same one the SimPoint papers cite.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ClusteringError
from .kmeans import KMeansResult, kmeans

__all__ = ["bic_score", "choose_k"]


def bic_score(points: np.ndarray, result: KMeansResult) -> float:
    """BIC of a clustering under the spherical-Gaussian model.

    Larger is better.  ``points`` must be the data the result was fit on.
    """
    data = np.asarray(points, dtype=np.float64)
    n, dim = data.shape
    k = result.k
    if n <= k:
        raise ClusteringError("BIC requires more points than clusters")
    sizes = result.cluster_sizes()
    # Pooled ML variance estimate (spherical).
    variance = result.inertia / (dim * (n - k))
    if variance <= 0:
        variance = 1e-12
    log_likelihood = 0.0
    for c in range(k):
        nc = int(sizes[c])
        if nc == 0:
            continue
        log_likelihood += (
            nc * math.log(nc / n)
            - 0.5 * nc * dim * math.log(2.0 * math.pi * variance)
            - 0.5 * (nc - 1) * dim
        )
    n_params = k * (dim + 1)
    return log_likelihood - 0.5 * n_params * math.log(n)


def choose_k(
    points: Sequence[Sequence[float]],
    max_k: int = 20,
    bic_fraction: float = 0.9,
    n_restarts: int = 3,
    seed: Optional[int] = 0,
) -> Tuple[int, Dict[int, float]]:
    """Pick a cluster count the SimPoint 3.0 way.

    Runs k-means for ``k = 1 .. max_k`` and returns the smallest k whose
    BIC reaches *bic_fraction* of the best BIC seen, along with the full
    k -> BIC map.

    Args:
        points: ``(n, dim)`` data.
        max_k: largest cluster count to try (clamped to n - 1).
        bic_fraction: acceptance fraction of the best score.
        n_restarts: k-means restarts per k.
        seed: RNG seed.
    """
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < 3:
        raise ClusteringError("need at least 3 points to choose k")
    max_k = min(max_k, data.shape[0] - 1)
    scores: Dict[int, float] = {}
    for k in range(1, max_k + 1):
        result = kmeans(data, k, n_restarts=n_restarts, seed=seed)
        scores[k] = bic_score(data, result)
    best = max(scores.values())
    worst = min(scores.values())
    span = best - worst
    for k in sorted(scores):
        # Normalised acceptance: scores are negative log-likelihood-based,
        # so compare on the [worst, best] span rather than raw ratios.
        if span == 0 or (scores[k] - worst) / span >= bic_fraction:
            return k, scores
    return max(scores, key=scores.get), scores

"""k-means clustering for SimPoint-style offline phase analysis.

Implements the clustering pipeline of SimPoint 3.0: optional random
projection of high-dimensional BBVs, k-means with k-means++ seeding and
multiple restarts, and BIC-based selection of the cluster count.
"""

from .kmeans import KMeansResult, kmeans
from .bic import bic_score, choose_k
from .projection import random_projection

__all__ = ["KMeansResult", "kmeans", "bic_score", "choose_k", "random_projection"]

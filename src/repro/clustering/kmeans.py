"""k-means with k-means++ seeding and multiple restarts.

Written from scratch on numpy (no scipy/sklearn dependency) because the
SimPoint substrate is part of what this repository reproduces.  Distances
are Euclidean, matching the SimPoint tool; the BBVs it clusters are
L2-normalised so Euclidean and cosine orderings agree closely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ClusteringError

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run.

    Attributes:
        centroids: ``(k, dim)`` array of cluster centres.
        labels: ``(n,)`` cluster index per input vector.
        inertia: sum of squared distances to assigned centroids.
        n_iter: Lloyd iterations executed (best restart).
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    #: Original data, kept for representative selection; not part of the
    #: value identity of the result.
    _points: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Number of members per cluster."""
        return np.bincount(self.labels, minlength=self.k)

    def representative_indices(self) -> np.ndarray:
        """Index of the member closest to each centroid.

        This is SimPoint's "simulation point" selection: "the simulation
        sample closest to the center of the cluster is used to represent
        the entire phase".  Empty clusters map to index -1.
        """
        n = self.labels.shape[0]
        reps = np.full(self.k, -1, dtype=np.int64)
        best = np.full(self.k, np.inf)
        for i in range(n):
            c = self.labels[i]
            d = self._sq_dist_cache[i]
            if d < best[c]:
                best[c] = d
                reps[c] = i
        return reps

    @property
    def _sq_dist_cache(self) -> np.ndarray:
        # Lazily computed squared distance of each point to its centroid;
        # stored on first use via object.__setattr__ (frozen dataclass).
        cache = getattr(self, "_sq_dists", None)
        if cache is None:
            cache = self._points_sq_dists
            object.__setattr__(self, "_sq_dists", cache)
        return cache

    @property
    def _points_sq_dists(self) -> np.ndarray:
        if self._points is None:
            raise ClusteringError("result was created without point data")
        diffs = self._points - self.centroids[self.labels]
        return np.einsum("ij,ij->i", diffs, diffs)


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    sq_d = np.einsum("ij,ij->i", points - centroids[0], points - centroids[0])
    for j in range(1, k):
        total = sq_d.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick randomly.
            idx = int(rng.integers(n))
        else:
            probs = sq_d / total
            idx = int(rng.choice(n, p=probs))
        centroids[j] = points[idx]
        new_sq = np.einsum(
            "ij,ij->i", points - centroids[j], points - centroids[j]
        )
        np.minimum(sq_d, new_sq, out=sq_d)
    return centroids


def _lloyd(
    points: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
    tol: float,
    rng: np.random.Generator,
) -> tuple:
    """Lloyd iterations; returns (centroids, labels, inertia, n_iter)."""
    k = centroids.shape[0]
    labels = np.zeros(points.shape[0], dtype=np.int64)
    prev_inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        # Squared distances to every centroid: (n, k).
        d2 = (
            np.einsum("ij,ij->i", points, points)[:, None]
            - 2.0 * points @ centroids.T
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        )
        labels = d2.argmin(axis=1)
        inertia = float(d2[np.arange(points.shape[0]), labels].sum())
        # Recompute centroids; reseed empty clusters from the worst points.
        for c in range(k):
            members = points[labels == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
            else:
                worst = int(d2[np.arange(points.shape[0]), labels].argmax())
                centroids[c] = points[worst]
        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-12):
            break
        prev_inertia = inertia
    # Final assignment against the updated centroids.
    d2 = (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2.0 * points @ centroids.T
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(points.shape[0]), labels].sum())
    return centroids, labels, inertia, n_iter


def kmeans(
    points: Sequence[Sequence[float]],
    k: int,
    n_restarts: int = 5,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: Optional[int] = 0,
) -> KMeansResult:
    """Cluster *points* into *k* groups; best of *n_restarts* runs.

    Args:
        points: ``(n, dim)`` data.
        k: cluster count; must satisfy ``1 <= k <= n``.
        n_restarts: independent k-means++ restarts; lowest inertia wins.
        max_iter: Lloyd iteration cap per restart.
        tol: relative inertia-improvement stopping tolerance.
        seed: RNG seed (None for nondeterministic).

    Raises:
        ClusteringError: on empty input or invalid *k*.
    """
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ClusteringError("points must be a non-empty 2-D array")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k={k} must be in 1..{n}")
    if n_restarts < 1:
        raise ClusteringError("n_restarts must be at least 1")

    rng = np.random.default_rng(seed)
    best: Optional[KMeansResult] = None
    for _ in range(n_restarts):
        init = _kmeans_pp_init(data, k, rng)
        centroids, labels, inertia, n_iter = _lloyd(
            data, init.copy(), max_iter, tol, rng
        )
        if best is None or inertia < best.inertia:
            best = KMeansResult(
                centroids=centroids.copy(),
                labels=labels.copy(),
                inertia=inertia,
                n_iter=n_iter,
                _points=data,
            )
    assert best is not None
    return best

"""Full-detail simulation and the instrumented reference trace.

:class:`FullDetail` runs the entire program cycle-accurately — the ground
truth every sampling technique's error is measured against.

:func:`collect_reference_trace` additionally records, per fixed-length
window, the operations, cycles, and raw BBV register contents.  One such
pass per benchmark powers all the offline analyses (Figs. 2, 3, 7-10),
SimPoint's profiling stage, and the true IPC — exactly the data the paper's
authors extracted from their own full simulations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Optional

import numpy as np

from ..signals import BbvTracker, ReducedBbvHash
from ..config import DEFAULT_MACHINE, MachineConfig
from ..cpu import Mode, SimulationEngine
from ..cpu.checkpoints import CheckpointFile
from ..errors import SamplingError
from ..events import EstimateUpdated, EventBus
from ..program import Program
from .base import SamplingResult, SamplingTechnique
from .session import (
    ModeSegment,
    SamplingSession,
    SegmentPlan,
    SegmentRole,
    run_to_end_plan,
)

__all__ = ["FullDetail", "ReferenceTrace", "collect_reference_trace"]


class ReferenceTrace:
    """Windowed record of one full-detail run.

    Attributes:
        program: workload name.
        window_ops_target: nominal window length in ops (actual windows
            end on basic-block boundaries and may overshoot slightly).
        ops: ``(n,)`` actual ops per window.
        cycles: ``(n,)`` cycles per window.
        bbvs: ``(n, dim)`` raw (unnormalised) BBV per window.
    """

    def __init__(
        self,
        program: str,
        window_ops_target: int,
        ops: np.ndarray,
        cycles: np.ndarray,
        bbvs: np.ndarray,
    ) -> None:
        if not (len(ops) == len(cycles) == len(bbvs)):
            raise SamplingError("trace arrays must have equal lengths")
        self.program = program
        self.window_ops_target = int(window_ops_target)
        self.ops = np.asarray(ops, dtype=np.int64)
        self.cycles = np.asarray(cycles, dtype=np.int64)
        self.bbvs = np.asarray(bbvs, dtype=np.float64)

    @property
    def n_windows(self) -> int:
        """Number of recorded windows."""
        return int(self.ops.shape[0])

    @property
    def total_ops(self) -> int:
        """Total operations executed."""
        return int(self.ops.sum())

    @property
    def total_cycles(self) -> int:
        """Total cycles elapsed."""
        return int(self.cycles.sum())

    @property
    def true_ipc(self) -> float:
        """Whole-program IPC — the ground truth for error metrics."""
        return self.total_ops / self.total_cycles

    @property
    def ipcs(self) -> np.ndarray:
        """Per-window IPC series."""
        return self.ops / np.maximum(self.cycles, 1)

    def normalized_bbvs(self) -> np.ndarray:
        """Per-window BBVs scaled to unit L2 norm (zero rows stay zero)."""
        norms = np.sqrt((self.bbvs**2).sum(axis=1, keepdims=True))
        norms[norms == 0.0] = 1.0
        return self.bbvs / norms

    def aggregate(self, factor: int) -> "ReferenceTrace":
        """Merge every *factor* consecutive windows into one.

        Raw BBVs add, ops and cycles add; a final partial group is kept.
        This is how one fine-grained pass serves every coarser sampling
        period.
        """
        if factor < 1:
            raise SamplingError("factor must be at least 1")
        if factor == 1:
            return self
        n = self.n_windows
        groups = (n + factor - 1) // factor
        ops = np.zeros(groups, dtype=np.int64)
        cycles = np.zeros(groups, dtype=np.int64)
        bbvs = np.zeros((groups, self.bbvs.shape[1]), dtype=np.float64)
        for g in range(groups):
            lo, hi = g * factor, min((g + 1) * factor, n)
            ops[g] = self.ops[lo:hi].sum()
            cycles[g] = self.cycles[lo:hi].sum()
            bbvs[g] = self.bbvs[lo:hi].sum(axis=0)
        return ReferenceTrace(
            self.program, self.window_ops_target * factor, ops, cycles, bbvs
        )

    def to_period(self, period_ops: int) -> "ReferenceTrace":
        """Aggregate to a coarser sampling period given in ops.

        *period_ops* must be a multiple of the trace's window length.
        """
        if period_ops % self.window_ops_target:
            raise SamplingError(
                f"period {period_ops} is not a multiple of the "
                f"{self.window_ops_target}-op trace window"
            )
        return self.aggregate(period_ops // self.window_ops_target)

    def save(self, path: Path) -> None:
        """Serialise to a compressed ``.npz`` file.

        Writes through an open handle so the file is created at *path*
        exactly — ``np.savez_compressed`` would otherwise append ``.npz``
        to the name, which breaks atomic write-to-tmp-then-rename
        publication in the result cache.
        """
        with open(path, "wb") as fh:
            np.savez_compressed(
                fh,
                program=np.array(self.program),
                window=np.array(self.window_ops_target),
                ops=self.ops,
                cycles=self.cycles,
                bbvs=self.bbvs,
            )

    @classmethod
    def load(cls, path: Path) -> "ReferenceTrace":
        """Load a trace previously written by :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        return cls(
            program=str(data["program"]),
            window_ops_target=int(data["window"]),
            ops=data["ops"],
            cycles=data["cycles"],
            bbvs=data["bbvs"],
        )


def collect_reference_trace(
    program: Program,
    window_ops: int,
    machine: MachineConfig = DEFAULT_MACHINE,
    hash_seed: int = 12345,
    bus: Optional[EventBus] = None,
    checkpoint: Optional[CheckpointFile] = None,
    checkpoint_windows: int = 0,
) -> ReferenceTrace:
    """Run *program* fully in detail, recording per-window (ops, cycles, BBV).

    Args:
        program: the workload.
        window_ops: nominal window length in operations.
        machine: machine configuration.
        hash_seed: seed of the 5-bit BBV hash (must match the hash used by
            online techniques for trace-derived analyses to be comparable).
        bus: optional event bus observing the instrumented pass.
        checkpoint: optional :class:`~repro.cpu.checkpoints.CheckpointFile`
            making the pass resumable — the engine snapshot and the
            partial window arrays are persisted every *checkpoint_windows*
            windows, an existing snapshot is restored before running, and
            the file is cleared once the trace completes.  A resumed run
            is byte-identical to an uninterrupted one (the engine
            snapshot restores stream position, RNG state, caches,
            predictor, and BBV registers exactly).
        checkpoint_windows: windows between two checkpoint saves
            (``<= 0`` disables periodic saving even when *checkpoint* is
            given).
    """
    if window_ops <= 0:
        raise SamplingError("window_ops must be positive")
    tracker = BbvTracker(ReducedBbvHash(seed=hash_seed))
    engine = SimulationEngine(program, machine=machine, bbv_tracker=tracker)
    session = SamplingSession(engine, bus=bus)
    ops_list: List[int] = []
    cycles_list: List[int] = []
    bbv_list: List[np.ndarray] = []
    if checkpoint is not None:
        saved = checkpoint.load()
        if saved is not None:
            engine.restore(saved["state"])
            extras = saved["extras"]
            ops_list = [int(v) for v in extras["ops"]]
            cycles_list = [int(v) for v in extras["cycles"]]
            bbv_list = [np.asarray(b, dtype=np.float64) for b in extras["bbvs"]]

    windows_since_save = [0]

    def plan() -> SegmentPlan:
        while not engine.exhausted:
            outcome = yield ModeSegment(
                Mode.DETAIL, window_ops, role=SegmentRole.PROFILE
            )
            if outcome.run.ops == 0:
                break
            ops_list.append(outcome.run.ops)
            cycles_list.append(outcome.run.cycles)
            bbv_list.append(tracker.take_vector(normalize=False))
            windows_since_save[0] += 1
            if (
                checkpoint is not None
                and checkpoint_windows > 0
                and windows_since_save[0] >= checkpoint_windows
                and not engine.exhausted
            ):
                windows_since_save[0] = 0
                # The snapshot is taken on a window boundary, right after
                # take_vector() drained the BBV registers, so the restored
                # engine continues exactly where this window ended.
                checkpoint.save(
                    engine.ops_completed,
                    engine.snapshot(),
                    extras={
                        "ops": list(ops_list),
                        "cycles": list(cycles_list),
                        "bbvs": [np.array(b) for b in bbv_list],
                    },
                )

    session.execute(plan())
    if checkpoint is not None:
        checkpoint.clear()
    return ReferenceTrace(
        program=program.name,
        window_ops_target=window_ops,
        ops=np.array(ops_list, dtype=np.int64),
        cycles=np.array(cycles_list, dtype=np.int64),
        bbvs=np.array(bbv_list, dtype=np.float64),
    )


class FullDetail(SamplingTechnique):
    """Whole-program detailed simulation (the no-sampling baseline)."""

    name = "FullDetail"

    def run(
        self, program: Program, bus: Optional[EventBus] = None, **kwargs: Any
    ) -> SamplingResult:
        """Simulate every operation cycle-accurately; exact IPC, max cost."""
        engine = SimulationEngine(program, machine=self.machine)
        session = SamplingSession(engine, bus=bus)
        session.execute(run_to_end_plan(Mode.DETAIL, measure=True))
        total_ops = sum(s.ops for s in session.samples)
        total_cycles = sum(s.cycles for s in session.samples)
        ipc = total_ops / total_cycles if total_cycles else 0.0
        if bus is not None:
            bus.emit(
                EstimateUpdated(
                    technique=self.name, ipc=ipc, n_samples=0, final=True
                )
            )
        return SamplingResult(
            technique=self.name,
            program=program.name,
            ipc_estimate=ipc,
            detailed_ops=total_ops,
            total_ops=total_ops,
            n_samples=0,
            accounting=engine.accounting,
        )

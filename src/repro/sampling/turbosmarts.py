"""TurboSMARTS: random-order sampling to a confidence target.

Wenisch et al. (ISPASS'06) store tiny warm-state checkpoints (livepoints)
for every SMARTS sample position, then simulate samples "in a random order
until they converge within certain statistical error bounds" — the paper
uses 3% relative error at 99.7% confidence.  The paper's criticism: the
bound assumes a Gaussian sample population, so for phased (polymodal)
programs "the absolute error typically falls well outside these bounds".

Emulation note (see DESIGN.md): livepoint collection is replaced by one
warmed SMARTS pass (the shared periodic session plan) that measures every
sample; the estimator then consumes them in random order exactly as
TurboSMARTS would, and the reported detailed-op cost is ``consumed x
(warmup + detail)`` — the cost the real system would pay.  The error and
cost metrics are therefore exactly those of the real estimator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional

from ..config import DEFAULT_MACHINE, MachineConfig, ScaleConfig
from ..errors import ConfigurationError, SamplingError
from ..events import EstimateUpdated, EventBus
from ..program import Program
from ..stats.ci import ConfidenceInterval, normal_ci
from .base import SamplingResult, SamplingTechnique
from .smarts import Smarts, SmartsConfig, SmartsSample

__all__ = ["TurboSmartsConfig", "TurboSmarts"]


@dataclass(frozen=True)
class TurboSmartsConfig:
    """TurboSMARTS parameters.

    Attributes:
        smarts: the underlying SMARTS sample universe definition.
        rel_error: relative CI half-width target (paper: 3%).
        confidence: confidence level (paper: 99.7%).
        min_samples: samples always taken before the bound is tested.
        seed: RNG seed for the random sample order.
    """

    smarts: SmartsConfig
    rel_error: float = 0.03
    confidence: float = 0.997
    min_samples: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rel_error <= 0:
            raise ConfigurationError("rel_error must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        if self.min_samples < 2:
            raise ConfigurationError("min_samples must be at least 2")

    @classmethod
    def from_scale(cls, scale: ScaleConfig) -> "TurboSmartsConfig":
        """The scale's canonical TurboSMARTS configuration."""
        budget = scale.sample_budget
        return cls(
            smarts=SmartsConfig.from_scale(scale),
            rel_error=budget.rel_error,
            confidence=budget.confidence,
        )


class TurboSmarts(SamplingTechnique):
    """Random-order sampling until the confidence bound is met."""

    name = "TurboSMARTS"

    def __init__(
        self, config: TurboSmartsConfig, machine: MachineConfig = DEFAULT_MACHINE
    ) -> None:
        super().__init__(machine)
        self.config = config

    def run(
        self, program: Program, bus: Optional[EventBus] = None, **kwargs: Any
    ) -> SamplingResult:
        """Consume the SMARTS sample universe in random order until the
        CI half-width is inside the relative-error target."""
        cfg = self.config
        collector = Smarts(cfg.smarts, machine=self.machine)
        samples, accounting = collector.collect_samples(program, bus=bus)
        if not samples:
            raise SamplingError(
                f"{program.name} ended before the first sample; shrink "
                f"period_ops (currently {cfg.smarts.period_ops})"
            )

        order = list(range(len(samples)))
        random.Random(cfg.seed).shuffle(order)

        consumed: List[SmartsSample] = []
        ci: Optional[ConfidenceInterval] = None
        for pos in order:
            consumed.append(samples[pos])
            if len(consumed) < cfg.min_samples:
                continue
            ci = normal_ci([s.ipc for s in consumed], cfg.confidence)
            if bus is not None:
                bus.emit(
                    EstimateUpdated(
                        technique=self.name,
                        ipc=ci.mean,
                        n_samples=len(consumed),
                        final=False,
                    )
                )
            if ci.within_relative(cfg.rel_error):
                break
        if ci is None:
            ci = normal_ci([s.ipc for s in consumed], cfg.confidence)

        total_ops = sum(s.ops for s in consumed)
        total_cycles = sum(s.cycles for s in consumed)
        ipc = total_ops / total_cycles if total_cycles else 0.0
        if bus is not None:
            bus.emit(
                EstimateUpdated(
                    technique=self.name,
                    ipc=ipc,
                    n_samples=len(consumed),
                    final=True,
                )
            )
        per_sample_cost = cfg.smarts.detail_ops + cfg.smarts.warmup_ops
        detailed_ops = len(consumed) * per_sample_cost
        return SamplingResult(
            technique=self.name,
            program=program.name,
            ipc_estimate=ipc,
            detailed_ops=detailed_ops,
            total_ops=accounting.total_ops,
            n_samples=len(consumed),
            accounting=accounting,
            ci=ci,
            extras={
                "universe_size": len(samples),
                "converged": ci.within_relative(cfg.rel_error),
                "rel_error_target": cfg.rel_error,
            },
        )

"""SMARTS: systematic small-sample simulation (Wunderlich et al., ISCA'03).

"Very short, periodic samples of detailed simulation on the order of a
thousand instructions are interleaved with longer periods, on the order of
one million instructions, of functional simulation of the processor core"
with caches and branch predictors kept warm, and "each detailed simulation
period is immediately preceded by an interval of three or four thousand
instructions of detailed simulation in which statistics are not measured".

The schedule is the canonical *static* sampling plan: one
:func:`~repro.sampling.session.periodic_plan` executed by a
:class:`~repro.sampling.session.SamplingSession`.  The IPC estimate is
the ratio estimator (total sampled ops over total sampled cycles); the
per-sample IPC population additionally yields the normal-theory
confidence interval whose unimodal-Gaussian assumption the paper
criticises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..config import DEFAULT_MACHINE, MachineConfig, ScaleConfig
from ..cpu import Mode, ModeAccounting, SimulationEngine
from ..errors import ConfigurationError, SamplingError
from ..events import EstimateUpdated, EventBus
from ..program import Program
from ..stats.ci import normal_ci
from .base import SamplingResult, SamplingTechnique
from .session import SamplingSession, periodic_plan

__all__ = ["SmartsConfig", "Smarts", "SmartsSample"]


@dataclass(frozen=True)
class SmartsConfig:
    """SMARTS parameters.

    Attributes:
        period_ops: distance between sample starts (fast-forward length is
            ``period_ops - warmup_ops - detail_ops``).
        detail_ops: measured detailed-sample length (paper: 1000).
        warmup_ops: detailed warming before each sample (paper: ~3000).
        confidence: confidence level of the reported interval.
        functional_warming: keep caches and branch predictors warm during
            fast-forwarding (the SMARTS methodology).  Disabling it gives
            the cold-sample baseline of early sampled simulation (Conte et
            al., ICCD'96 — the paper's reference [2]), whose samples start
            from stale long-lifetime state and are biased slow.
    """

    period_ops: int
    detail_ops: int = 1_000
    warmup_ops: int = 3_000
    confidence: float = 0.997
    functional_warming: bool = True

    def __post_init__(self) -> None:
        if self.detail_ops <= 0 or self.warmup_ops < 0:
            raise ConfigurationError("sample lengths must be positive")
        if self.period_ops <= self.detail_ops + self.warmup_ops:
            raise ConfigurationError(
                "period_ops must exceed warmup_ops + detail_ops"
            )

    @classmethod
    def from_scale(cls, scale: ScaleConfig) -> "SmartsConfig":
        """The scale's canonical SMARTS configuration."""
        budget = scale.sample_budget
        return cls(
            period_ops=scale.smarts_period,
            detail_ops=budget.detail_ops,
            warmup_ops=budget.warmup_ops,
            confidence=budget.confidence,
        )


@dataclass(frozen=True)
class SmartsSample:
    """One measured SMARTS sample (used by TurboSMARTS replay too)."""

    index: int
    op_offset: int
    ops: int
    cycles: int

    @property
    def ipc(self) -> float:
        """IPC over the sample."""
        return self.ops / self.cycles if self.cycles else 0.0


class Smarts(SamplingTechnique):
    """Systematic small-sample simulation with functional warming."""

    name = "SMARTS"

    def __init__(
        self, config: SmartsConfig, machine: MachineConfig = DEFAULT_MACHINE
    ) -> None:
        super().__init__(machine)
        self.config = config

    def collect_samples(
        self, program: Program, bus: Optional[EventBus] = None
    ) -> Tuple[List[SmartsSample], ModeAccounting]:
        """One warmed pass over *program*; returns (samples, accounting).

        Shared with :class:`~repro.sampling.TurboSmarts`, which replays the
        same sample universe in random order.
        """
        cfg = self.config
        engine = SimulationEngine(program, machine=self.machine)
        session = SamplingSession(engine, bus=bus)
        ff_ops = cfg.period_ops - cfg.warmup_ops - cfg.detail_ops
        ff_mode = Mode.FUNC_WARM if cfg.functional_warming else Mode.FUNC_FAST
        session.execute(
            periodic_plan(ff_mode, ff_ops, cfg.warmup_ops, cfg.detail_ops)
        )
        samples = [
            SmartsSample(
                index=s.index, op_offset=s.op_offset, ops=s.ops, cycles=s.cycles
            )
            for s in session.samples
        ]
        return samples, engine.accounting

    def run(
        self, program: Program, bus: Optional[EventBus] = None, **kwargs: Any
    ) -> SamplingResult:
        """Estimate IPC from evenly spaced small samples.

        Raises:
            SamplingError: when the program is too short for even one
                sample at the configured period.
        """
        samples, accounting = self.collect_samples(program, bus=bus)
        if not samples:
            raise SamplingError(
                f"{program.name} ended before the first sample; shrink "
                f"period_ops (currently {self.config.period_ops})"
            )
        total_ops = sum(s.ops for s in samples)
        total_cycles = sum(s.cycles for s in samples)
        ipc = total_ops / total_cycles if total_cycles else 0.0
        ci = normal_ci([s.ipc for s in samples], self.config.confidence)
        if bus is not None:
            bus.emit(
                EstimateUpdated(
                    technique=self.name,
                    ipc=ipc,
                    n_samples=len(samples),
                    final=True,
                )
            )
        return SamplingResult(
            technique=self.name,
            program=program.name,
            ipc_estimate=ipc,
            detailed_ops=accounting.detailed_ops,
            total_ops=accounting.total_ops,
            n_samples=len(samples),
            accounting=accounting,
            ci=ci,
            extras={"period_ops": self.config.period_ops},
        )

"""The sampling-session kernel: one driver for every technique's loop.

Every sampled-simulation technique — SMARTS' periodic tiny samples,
SimPoint's profile-then-measure passes, PGSS' confidence-driven phase
sampling — is at bottom the same thing: a *schedule of engine-mode
segments* plus an estimator over the measured segments.  This module
provides that common substrate (DESIGN.md §13):

* :class:`ModeSegment` — one declarative schedule entry: an engine
  :class:`~repro.cpu.Mode`, an op budget, a ``role`` label, and whether
  the segment is *measured* (its (ops, cycles) recorded as a sample);
* :class:`SamplingSession` — executes segments on a
  :class:`~repro.cpu.SimulationEngine`, records
  :class:`SessionSample`\\ s, and emits typed events
  (:class:`~repro.events.SegmentStart`,
  :class:`~repro.events.SegmentEnd`,
  :class:`~repro.events.SampleTaken`, ...) on an
  :class:`~repro.events.EventBus`;
* **plans** — generators that yield :class:`ModeSegment`\\ s and receive
  each segment's :class:`SegmentOutcome` back, so *static* schedules
  (SMARTS: :func:`periodic_plan`) and *dynamic* ones (PGSS: the next
  segment depends on the phase classifier's CI state) share one
  execution path;
* :class:`SessionDriver` — incremental plan execution: ``step()`` runs
  the plan to its next :data:`PAUSE` marker, which is how the multicore
  scheduler interleaves several cores' PGSS loops.

Techniques never call ``engine.run(Mode...)`` directly (simlint HYG005
enforces this structurally): all mode scheduling flows through
:meth:`SamplingSession.run_segment`, so accounting, event emission, and
the batched fast-forward dispatch stay uniform across the zoo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence, Union

from ..cpu.engine import Mode, ModeRun, SimulationEngine
from ..events import (
    EstimateUpdated,
    EventBus,
    PhaseChange,
    SampleTaken,
    SegmentEnd,
    SegmentStart,
    SessionEvent,
    ThresholdSelected,
)

__all__ = [
    "EstimateUpdated",
    "EventBus",
    "ModeSegment",
    "PAUSE",
    "Pause",
    "PhaseChange",
    "SampleTaken",
    "SamplingSession",
    "SegmentEnd",
    "SegmentOutcome",
    "SegmentPlan",
    "SegmentRole",
    "SegmentStart",
    "SessionDriver",
    "SessionEvent",
    "SessionSample",
    "ThresholdSelected",
    "interval_sample_plan",
    "periodic_plan",
    "run_to_end_plan",
]


class SegmentRole:
    """Conventional ``ModeSegment.role`` labels (plain strings)."""

    FAST_FORWARD = "fast_forward"
    WARMUP = "warmup"
    SAMPLE = "sample"
    PROFILE = "profile"
    DRAIN = "drain"


@dataclass(frozen=True)
class ModeSegment:
    """One entry of a sampling plan.

    Attributes:
        mode: engine execution mode for the segment.
        ops: op budget (the engine stops early if the program ends).
        role: what the segment is *for* — a :class:`SegmentRole` label
            carried on the segment events.
        measure: record the segment's (ops, cycles) as a
            :class:`SessionSample` (and emit
            :class:`~repro.events.SampleTaken`) when both are non-zero.
    """

    mode: Mode
    ops: int
    role: str = "segment"
    measure: bool = False


@dataclass(frozen=True)
class SessionSample:
    """One measured detailed sample recorded by a session."""

    index: int
    op_offset: int
    ops: int
    cycles: int

    @property
    def ipc(self) -> float:
        """IPC over the sample."""
        return self.ops / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class SegmentOutcome:
    """What one executed segment did — sent back into the plan.

    Attributes:
        segment: the segment that ran.
        run: the engine's :class:`~repro.cpu.ModeRun` for it.
        start_offset: program-global op count before the segment.
        end_offset: program-global op count after it.
        sample: the recorded sample for measured segments (None when the
            segment was unmeasured or produced no ops/cycles).
    """

    segment: ModeSegment
    run: ModeRun
    start_offset: int
    end_offset: int
    sample: Optional[SessionSample]

    @property
    def exhausted(self) -> bool:
        """True when the program ended during the segment."""
        return self.run.exhausted


class Pause:
    """Plan marker: a step boundary for :meth:`SessionDriver.step`."""

    def __repr__(self) -> str:
        return "PAUSE"


#: The singleton step-boundary marker plans yield between iterations.
PAUSE = Pause()

#: A plan: yields segments (or PAUSE), receives each SegmentOutcome.
SegmentPlan = Generator[Union[ModeSegment, Pause], Any, None]


class SamplingSession:
    """Executes mode segments on one engine, recording samples and events.

    Args:
        engine: the simulation engine to drive.  The session is the only
            component that advances it (HYG005).
        bus: event bus to emit on; a private bus is created when omitted
            so emission is always valid.
    """

    def __init__(
        self, engine: SimulationEngine, bus: Optional[EventBus] = None
    ) -> None:
        self.engine = engine
        self.bus = bus if bus is not None else EventBus()
        #: Measured samples, in execution order.
        self.samples: List[SessionSample] = []

    @property
    def n_samples(self) -> int:
        """Number of measured samples recorded so far."""
        return len(self.samples)

    def run_segment(self, segment: ModeSegment) -> SegmentOutcome:
        """Execute one segment; record its sample; emit segment events."""
        engine = self.engine
        start = engine.ops_completed
        self.bus.emit(
            SegmentStart(
                mode=segment.mode,
                planned_ops=segment.ops,
                op_offset=start,
                role=segment.role,
            )
        )
        run = engine.run_segment(segment)
        sample: Optional[SessionSample] = None
        if segment.measure and run.ops and run.cycles:
            sample = SessionSample(
                index=len(self.samples),
                op_offset=start,
                ops=run.ops,
                cycles=run.cycles,
            )
            self.samples.append(sample)
        outcome = SegmentOutcome(
            segment=segment,
            run=run,
            start_offset=start,
            end_offset=engine.ops_completed,
            sample=sample,
        )
        self.bus.emit(
            SegmentEnd(
                mode=segment.mode,
                ops=run.ops,
                cycles=run.cycles,
                op_offset=outcome.end_offset,
                role=segment.role,
                exhausted=run.exhausted,
            )
        )
        if sample is not None:
            self.bus.emit(
                SampleTaken(
                    index=sample.index,
                    op_offset=sample.op_offset,
                    ops=sample.ops,
                    cycles=sample.cycles,
                )
            )
        return outcome

    def driver(self, plan: SegmentPlan) -> "SessionDriver":
        """Bind *plan* for incremental (stepwise) execution."""
        return SessionDriver(self, plan)

    def execute(self, plan: SegmentPlan) -> None:
        """Run *plan* to completion."""
        SessionDriver(self, plan).run()


class SessionDriver:
    """Incremental executor of one plan over one session.

    ``step()`` advances the plan to its next :data:`PAUSE` marker (or to
    completion), executing every segment it yields on the way.  Plans
    without pauses complete in a single step.
    """

    def __init__(self, session: SamplingSession, plan: SegmentPlan) -> None:
        self.session = session
        self._plan = plan
        self._outcome: Optional[SegmentOutcome] = None
        self._done = False

    @property
    def done(self) -> bool:
        """True once the plan has run to completion."""
        return self._done

    def step(self) -> bool:
        """Advance to the next pause point; False once the plan is done."""
        if self._done:
            return False
        while True:
            try:
                item = self._plan.send(self._outcome)
            except StopIteration:
                self._done = True
                return False
            if isinstance(item, Pause):
                self._outcome = None
                return True
            self._outcome = self.session.run_segment(item)

    def run(self) -> None:
        """Run the plan to completion."""
        while self.step():
            pass


def periodic_plan(
    ff_mode: Mode, ff_ops: int, warmup_ops: int, detail_ops: int
) -> SegmentPlan:
    """The static SMARTS-shaped schedule, repeated until the stream ends:

    fast-forward ``ff_ops`` in *ff_mode*, detail-warm ``warmup_ops``
    (skipped when 0), then measure a ``detail_ops`` detailed sample.
    The plan stops as soon as any segment exhausts the program.
    """
    while True:
        out = yield ModeSegment(ff_mode, ff_ops, role=SegmentRole.FAST_FORWARD)
        if out.exhausted:
            return
        if warmup_ops:
            out = yield ModeSegment(
                Mode.DETAIL_WARM, warmup_ops, role=SegmentRole.WARMUP
            )
            if out.exhausted:
                return
        out = yield ModeSegment(
            Mode.DETAIL, detail_ops, role=SegmentRole.SAMPLE, measure=True
        )
        if out.exhausted:
            return


#: Golden-ratio fraction driving the deterministic stagger sequence.
_STAGGER_STRIDE = 0.6180339887498949


def interval_sample_plan(
    targets: Sequence[int],
    interval_ops: int,
    warmup_ops: int,
    detail_ops: int,
    stagger: bool = True,
) -> SegmentPlan:
    """Measure one detailed sample inside each target interval.

    The program is viewed as consecutive ``interval_ops``-long intervals.
    The plan fast-forwards (with functional warming) to each target
    interval in ascending index order, takes a ``warmup_ops`` +
    ``detail_ops`` detailed sample inside it, drains the interval's
    remainder functionally warm, and stops when the program ends.
    Callers recover which interval a sample belongs to as
    ``sample.op_offset // interval_ops``: technique configs using this
    plan validate ``warmup_ops + detail_ops < interval_ops``, so the
    sample never starts past its interval's boundary.

    With ``stagger`` (the default) the sample's position inside its
    interval walks a deterministic golden-ratio sequence over the
    interval's slack instead of always sitting at the interval start.
    A fixed in-interval position aliases against intra-interval
    micro-structure — one position can systematically over- or
    under-state the interval mean — and a handful of interval samples
    (unlike SMARTS' dozens) never averages that bias away.  The sequence
    is seed-free, so runs stay reproducible.

    This is the shared measurement pass of the interval-selection
    techniques (SimPoint-style representatives, two-phase stratified
    stage 2, ranked-set selection).
    """
    interval = 0
    slack = interval_ops - warmup_ops - detail_ops
    for count, target in enumerate(sorted(set(targets))):
        while interval < target:
            out = yield ModeSegment(
                Mode.FUNC_WARM, interval_ops, role=SegmentRole.FAST_FORWARD
            )
            interval += 1
            if out.exhausted:
                return
        offset = 0
        if stagger and slack > 0:
            position = ((count + 1) * _STAGGER_STRIDE) % 1.0
            offset = int(slack * position)
        if offset:
            out = yield ModeSegment(
                Mode.FUNC_WARM, offset, role=SegmentRole.FAST_FORWARD
            )
            if out.exhausted:
                return
        if warmup_ops:
            out = yield ModeSegment(
                Mode.DETAIL_WARM, warmup_ops, role=SegmentRole.WARMUP
            )
            if out.exhausted:
                return
        out = yield ModeSegment(
            Mode.DETAIL, detail_ops, role=SegmentRole.SAMPLE, measure=True
        )
        if out.exhausted:
            return
        remainder = slack - offset
        interval += 1
        if remainder > 0:
            out = yield ModeSegment(
                Mode.FUNC_WARM, remainder, role=SegmentRole.FAST_FORWARD
            )
            if out.exhausted:
                return


def run_to_end_plan(
    mode: Mode,
    chunk_ops: int = 1_000_000,
    measure: bool = False,
    role: str = SegmentRole.DRAIN,
) -> SegmentPlan:
    """Run the whole program in one mode, ``chunk_ops`` at a time."""
    while True:
        out = yield ModeSegment(mode, chunk_ops, role=role, measure=measure)
        if out.exhausted:
            return

"""SimPoint: offline BBV clustering with one large sample per phase.

The SimPoint system (Sherwood et al., ASPLOS'02; SimPoint 3.0) gathers one
BBV per fixed interval over the whole execution, clusters them with
k-means, detail-simulates the interval closest to each cluster centroid,
and estimates performance as the cluster-weighted sum.

Following the paper's own methodology ("The SimPoints methodology was
tested by performing an off-line clustering of the reduced BBV data from
PGSS simulation"), clustering operates on the reduced 32-entry BBVs.  The
profiling pass can reuse a pre-collected :class:`ReferenceTrace` (the
default, since the trace also provides each interval's detailed IPC), or
run the two passes live on a fresh engine.  Both live passes are
expressed as sampling-session plans: a profile-only plan for the BBV
pass, and a fast-forward/measure plan for the representatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..signals import BbvTracker, ReducedBbvHash
from ..clustering import choose_k, kmeans
from ..config import DEFAULT_MACHINE, MachineConfig
from ..cpu import Mode, ModeAccounting, SimulationEngine
from ..errors import ConfigurationError, SamplingError
from ..events import EstimateUpdated, EventBus
from ..program import Program
from ..stats.estimators import stratified_ratio_ipc
from .base import SamplingResult, SamplingTechnique
from .full import ReferenceTrace
from .session import ModeSegment, SamplingSession, SegmentPlan, SegmentRole

__all__ = ["SimPointConfig", "SimPoint"]


@dataclass(frozen=True)
class SimPointConfig:
    """SimPoint parameters.

    Attributes:
        interval_ops: BBV interval length (paper sweeps 1M/10M/100M).
        n_clusters: k for k-means (paper sweeps 5/10/20 plus extras), or
            ``None`` to pick k by BIC up to ``max_k`` — the SimPoint 3.0
            default behaviour.
        max_k: BIC search ceiling when ``n_clusters`` is ``None``.
        n_restarts: k-means restarts.
        seed: clustering RNG seed.
        hash_seed: seed of the reduced-BBV hash (must match the trace's).
    """

    interval_ops: int
    n_clusters: Optional[int] = None
    max_k: int = 20
    n_restarts: int = 5
    seed: int = 0
    hash_seed: int = 12345

    def __post_init__(self) -> None:
        if self.interval_ops <= 0:
            raise ConfigurationError("interval_ops must be positive")
        if self.n_clusters is not None and self.n_clusters < 1:
            raise ConfigurationError("n_clusters must be at least 1")
        if self.max_k < 1:
            raise ConfigurationError("max_k must be at least 1")

    @property
    def label(self) -> str:
        """Short config label, e.g. ``"10x80k"`` (``"bicNx80k"`` for BIC)."""
        k = self.n_clusters if self.n_clusters is not None else f"bic{self.max_k}"
        return f"{k}x{_fmt_ops(self.interval_ops)}"


def _fmt_ops(n: int) -> str:
    if n % 1_000_000 == 0:
        return f"{n // 1_000_000}M"
    if n % 1_000 == 0:
        return f"{n // 1_000}k"
    return str(n)


class SimPoint(SamplingTechnique):
    """Offline clustering of interval BBVs; one representative per cluster."""

    name = "SimPoint"

    def __init__(
        self, config: SimPointConfig, machine: MachineConfig = DEFAULT_MACHINE
    ) -> None:
        super().__init__(machine)
        self.config = config

    def profile_intervals(
        self, program: Program, bus: Optional[EventBus] = None
    ) -> ReferenceTrace:
        """Live profiling pass: per-interval raw BBVs via fast-forwarding.

        Cycle columns are zero — profiling is purely functional, exactly as
        in the real tool; use :meth:`run` with a reference trace when
        interval IPCs are needed without a live detail pass.
        """
        cfg = self.config
        tracker = BbvTracker(ReducedBbvHash(seed=cfg.hash_seed))
        engine = SimulationEngine(program, machine=self.machine, bbv_tracker=tracker)
        session = SamplingSession(engine, bus=bus)
        ops_list: List[int] = []
        bbv_list: List[np.ndarray] = []

        def plan() -> SegmentPlan:
            while not engine.exhausted:
                outcome = yield ModeSegment(
                    Mode.FUNC_FAST, cfg.interval_ops, role=SegmentRole.PROFILE
                )
                if outcome.run.ops == 0:
                    break
                ops_list.append(outcome.run.ops)
                bbv_list.append(tracker.take_vector(normalize=False))

        session.execute(plan())
        return ReferenceTrace(
            program=program.name,
            window_ops_target=cfg.interval_ops,
            ops=np.array(ops_list, dtype=np.int64),
            cycles=np.zeros(len(ops_list), dtype=np.int64),
            bbvs=np.array(bbv_list, dtype=np.float64),
        )

    def _measure_representatives(
        self,
        program: Program,
        rep_indices: List[int],
        bus: Optional[EventBus] = None,
    ) -> Tuple[Dict[int, Tuple[int, int]], ModeAccounting]:
        """Live second pass: detail-simulate the chosen intervals.

        Fast-forwards (with functional warming) between representatives and
        runs each chosen interval cycle-accurately.  Returns interval index
        -> measured ``(ops, cycles)`` plus the engine's accounting.
        """
        cfg = self.config
        engine = SimulationEngine(program, machine=self.machine)
        session = SamplingSession(engine, bus=bus)
        wanted = sorted(set(rep_indices))
        counts: Dict[int, Tuple[int, int]] = {}

        def plan() -> SegmentPlan:
            interval = 0
            for target in wanted:
                while interval < target and not engine.exhausted:
                    yield ModeSegment(
                        Mode.FUNC_WARM,
                        cfg.interval_ops,
                        role=SegmentRole.FAST_FORWARD,
                    )
                    interval += 1
                if engine.exhausted:
                    break
                outcome = yield ModeSegment(
                    Mode.DETAIL,
                    cfg.interval_ops,
                    role=SegmentRole.SAMPLE,
                    measure=True,
                )
                interval += 1
                if outcome.run.ops and outcome.run.cycles:
                    counts[target] = (outcome.run.ops, outcome.run.cycles)

        session.execute(plan())
        return counts, engine.accounting

    def run(
        self,
        program: Program,
        trace: Optional[ReferenceTrace] = None,
        bus: Optional[EventBus] = None,
        **kwargs: Any,
    ) -> SamplingResult:
        """Cluster interval BBVs and estimate IPC from representatives.

        Args:
            program: the workload.
            trace: optional pre-collected reference trace; when given, both
                the interval BBVs and the representatives' IPCs come from
                it (its full-detail pass subsumes SimPoint's detail phase).
                When omitted, both passes run live.
            bus: optional event bus observing the live passes.
        """
        cfg = self.config
        if trace is not None:
            intervals = trace.to_period(cfg.interval_ops)
            have_ipc = True
        else:
            intervals = self.profile_intervals(program, bus=bus)
            have_ipc = False
        n = intervals.n_windows
        points = intervals.normalized_bbvs()
        if cfg.n_clusters is not None:
            n_clusters = cfg.n_clusters
            if n < n_clusters:
                raise SamplingError(
                    f"{n} intervals cannot support {n_clusters} clusters"
                )
        else:
            # SimPoint 3.0 behaviour: BIC-select k up to max_k.
            n_clusters, _scores = choose_k(
                points,
                max_k=min(cfg.max_k, n - 1) if n > 1 else 1,
                n_restarts=cfg.n_restarts,
                seed=cfg.seed,
            )
        clustering = kmeans(
            points, n_clusters, n_restarts=cfg.n_restarts, seed=cfg.seed
        )
        reps = clustering.representative_indices()
        sizes = clustering.cluster_sizes()

        accounting: Optional[ModeAccounting]
        if have_ipc:
            rep_counts = {
                int(reps[c]): (
                    int(intervals.ops[reps[c]]),
                    int(intervals.cycles[reps[c]]),
                )
                for c in range(n_clusters)
                if reps[c] >= 0
            }
            accounting = None
        else:
            rep_counts, accounting = self._measure_representatives(
                program, [int(r) for r in reps if r >= 0], bus=bus
            )

        # SimPoint combines per-cluster CPI weighted by cluster size; with
        # equal-length intervals this is the exact ratio estimator.
        ops_per_cluster: Dict[int, int] = {}
        samples_per_cluster: Dict[int, List[Tuple[int, int]]] = {}
        for c in range(n_clusters):
            if reps[c] < 0 or sizes[c] == 0:
                continue
            ops_per_cluster[c] = int(intervals.ops[clustering.labels == c].sum())
            rep_index = int(reps[c])
            if rep_index in rep_counts:
                samples_per_cluster[c] = [rep_counts[rep_index]]
        estimate = stratified_ratio_ipc(ops_per_cluster, samples_per_cluster)

        n_points = len(samples_per_cluster)
        detailed_ops = n_points * cfg.interval_ops
        if bus is not None:
            bus.emit(
                EstimateUpdated(
                    technique=self.name,
                    ipc=estimate.ipc,
                    n_samples=n_points,
                    final=True,
                )
            )
        result = SamplingResult(
            technique=self.name,
            program=program.name,
            ipc_estimate=estimate.ipc,
            detailed_ops=detailed_ops,
            total_ops=intervals.total_ops + detailed_ops,
            n_samples=n_points,
            extras={
                "config": cfg.label,
                "n_intervals": n,
                "n_clusters": n_clusters,
                "cluster_sizes": sizes.tolist(),
                "weights": {int(k): v for k, v in estimate.weights.items()},
                "inertia": clustering.inertia,
            },
        )
        if accounting is not None:
            result.accounting = accounting
        return result

"""Sampled-simulation techniques.

All five techniques the paper evaluates (Section 5), plus the full-detail
reference, behind one interface:

* :class:`FullDetail` — whole-program cycle-accurate run (ground truth);
* :class:`Smarts` — periodic small samples (Wunderlich et al., ISCA'03);
* :class:`TurboSmarts` — random-order samples to a confidence target
  (Wenisch et al., ISPASS'06);
* :class:`SimPoint` — offline BBV clustering, one large representative
  interval per cluster (Sherwood et al., ASPLOS'02; SimPoint 3.0 tooling);
* :class:`OnlineSimPoint` — online phase tracking with one large sample
  per phase and a perfect phase predictor (Pereira et al., CODES+ISSS'05);
* :class:`Pgss` — the paper's Phase-Guided Small-Sample Simulation;
* :class:`TwoPhaseStratified` — stage-1 phase profile, stage-2
  Neyman-allocated detailed budget (Ekman & Stenström-style two-phase
  stratified sampling);
* :class:`RankedSetSampling` — rank each cycle of intervals by a cheap
  functional-warming cost proxy, measure one rank per cycle (McIntyre's
  ranked-set estimator).

Each returns a :class:`SamplingResult` carrying the IPC estimate and the
detailed-op cost, the two axes of the paper's Figure 12.

All of them execute through the shared sampling-session kernel
(:mod:`repro.sampling.session`, DESIGN.md §13): a technique is a *plan*
of :class:`ModeSegment`\\ s run by a :class:`SamplingSession`, which
records measured samples and emits typed events on an
:class:`~repro.events.EventBus`.
"""

from .base import SamplingResult, SamplingTechnique
from .session import (
    PAUSE,
    ModeSegment,
    SamplingSession,
    SegmentOutcome,
    SegmentPlan,
    SegmentRole,
    SessionDriver,
    SessionSample,
    interval_sample_plan,
    periodic_plan,
    run_to_end_plan,
)
from .full import FullDetail, ReferenceTrace, collect_reference_trace
from .smarts import Smarts, SmartsConfig, SmartsSample
from .turbosmarts import TurboSmarts, TurboSmartsConfig
from .simpoint import SimPoint, SimPointConfig
from .online_simpoint import OnlineSimPoint, OnlineSimPointConfig
from .pgss import Pgss, PgssConfig, PgssController
from .stratified import TwoPhaseStratified, TwoPhaseStratifiedConfig
from .ranked import RankedSetSampling, RankedSetConfig

__all__ = [
    "SamplingResult",
    "SamplingTechnique",
    "ModeSegment",
    "PAUSE",
    "SamplingSession",
    "SegmentOutcome",
    "SegmentPlan",
    "SegmentRole",
    "SessionDriver",
    "SessionSample",
    "interval_sample_plan",
    "periodic_plan",
    "run_to_end_plan",
    "FullDetail",
    "ReferenceTrace",
    "collect_reference_trace",
    "Smarts",
    "SmartsConfig",
    "SmartsSample",
    "TurboSmarts",
    "TurboSmartsConfig",
    "SimPoint",
    "SimPointConfig",
    "OnlineSimPoint",
    "OnlineSimPointConfig",
    "Pgss",
    "PgssConfig",
    "PgssController",
    "TwoPhaseStratified",
    "TwoPhaseStratifiedConfig",
    "RankedSetSampling",
    "RankedSetConfig",
]

"""Ranked-set sampling over fixed-length intervals.

Ranked-set sampling (McIntyre's estimator, imported into simulation
sampling as a cheap-proxy technique): instead of measuring intervals at
random, form *cycles* of ``set_size`` consecutive intervals, rank each
cycle's intervals by an inexpensive proxy of their performance, and
measure (in DETAIL) only one interval per cycle — cycle ``c`` measures
the interval holding rank ``c mod set_size``.  Every rank is visited
equally often, so the estimator is unbiased under perfect ranking and
degrades gracefully (to simple systematic sampling) as the proxy's
ranking quality decays; with an informative proxy, each rank's
population is far tighter than the whole, so fewer detailed samples hit
the same precision.

The proxy here is a functional-warming IPC model: during the ranking
pass the engine runs FUNC_WARM (caches and branch predictor update but
no cycle-accurate timing), and each interval's cache-miss and
misprediction *deltas* are folded into a latency-per-op estimate

``cpi ~ 1/issue_width + (l1_misses * l2_hit + l2_misses * mem
+ mispredicts * penalty) / ops``

— the structural cost model, evaluated from warm functional state only.

Both passes are sampling-session plans; the measurement pass is the
kernel's shared :func:`~repro.sampling.session.interval_sample_plan`.
The confidence interval comes from repeated subsampling: the measured
cycle sequence is split round-robin into ``n_subsamples`` interleaved
replicates, each replicate re-estimated with the same per-rank
estimator, and a Student-t interval taken over the replicate estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_MACHINE, MachineConfig, ScaleConfig
from ..cpu import Mode, ModeAccounting, SimulationEngine
from ..errors import ConfigurationError, SamplingError
from ..events import EstimateUpdated, EventBus
from ..program import Program
from ..stats.ci import ConfidenceInterval, t_value
from .base import SamplingResult, SamplingTechnique
from .session import (
    ModeSegment,
    SamplingSession,
    SegmentPlan,
    SegmentRole,
    interval_sample_plan,
)

__all__ = ["RankedSetConfig", "RankedSetSampling"]


@dataclass(frozen=True)
class RankedSetConfig:
    """Ranked-set sampling parameters.

    Attributes:
        interval_ops: interval length; ``set_size`` consecutive intervals
            form one ranking cycle.
        set_size: intervals per ranking cycle (one is measured).
        detail_ops: measured detailed-sample length.
        warmup_ops: detailed warming before each sample.
        n_subsamples: interleaved replicates of the repeated-subsampling
            variance estimator.
        confidence: confidence level of the reported interval.
    """

    interval_ops: int
    set_size: int = 3
    detail_ops: int = 1_000
    warmup_ops: int = 3_000
    n_subsamples: int = 4
    confidence: float = 0.997

    def __post_init__(self) -> None:
        if self.interval_ops <= self.detail_ops + self.warmup_ops:
            raise ConfigurationError(
                "interval_ops must exceed warmup_ops + detail_ops"
            )
        if self.set_size < 2:
            raise ConfigurationError("set_size must be at least 2")
        if self.n_subsamples < 2:
            raise ConfigurationError("n_subsamples must be at least 2")

    @classmethod
    def from_scale(cls, scale: ScaleConfig, **overrides: Any) -> "RankedSetConfig":
        """The scale's canonical ranked-set configuration."""
        budget = scale.sample_budget
        params: Dict[str, Any] = dict(
            interval_ops=scale.pgss_best_period,
            detail_ops=budget.detail_ops,
            warmup_ops=budget.warmup_ops,
            confidence=budget.confidence,
        )
        params.update(overrides)
        return cls(**params)

    @property
    def label(self) -> str:
        """Short config label, e.g. ``"8kx3r4"``."""
        return (
            f"{_fmt_ops(self.interval_ops)}x{self.set_size}r{self.n_subsamples}"
        )


def _fmt_ops(n: int) -> str:
    if n % 1_000_000 == 0:
        return f"{n // 1_000_000}M"
    if n % 1_000 == 0:
        return f"{n // 1_000}k"
    return str(n)


class RankedSetSampling(SamplingTechnique):
    """Rank intervals by a func-warm cost proxy; measure one per cycle."""

    name = "RankedSet"

    def __init__(
        self,
        config: RankedSetConfig,
        machine: MachineConfig = DEFAULT_MACHINE,
    ) -> None:
        super().__init__(machine)
        self.config = config

    def _proxy_pass(
        self, program: Program, bus: Optional[EventBus]
    ) -> Tuple[List[float], SimulationEngine]:
        """Rank pass: per-interval proxy CPI from FUNC_WARM stat deltas."""
        cfg = self.config
        machine = self.machine
        engine = SimulationEngine(program, machine=machine)
        session = SamplingSession(engine, bus=bus)
        proxies: List[float] = []

        def snapshot() -> Tuple[int, int, int]:
            l1 = (
                engine.hierarchy.l1i.stats.misses
                + engine.hierarchy.l1d.stats.misses
            )
            return (
                l1,
                engine.hierarchy.l2.stats.misses,
                engine.predictor.stats.mispredictions,
            )

        def plan() -> SegmentPlan:
            while not engine.exhausted:
                before = snapshot()
                outcome = yield ModeSegment(
                    Mode.FUNC_WARM, cfg.interval_ops, role=SegmentRole.PROFILE
                )
                if outcome.run.ops == 0:
                    break
                after = snapshot()
                l1_misses = after[0] - before[0]
                l2_misses = after[1] - before[1]
                mispredicts = after[2] - before[2]
                penalty_cycles = (
                    l1_misses * machine.l2.hit_latency
                    + l2_misses * machine.memory_latency
                    + mispredicts * machine.mispredict_penalty
                )
                proxies.append(
                    1.0 / machine.issue_width
                    + penalty_cycles / outcome.run.ops
                )

        session.execute(plan())
        return proxies, engine

    @staticmethod
    def _select(proxies: List[float], set_size: int) -> List[int]:
        """Interval indices to measure: rank ``c % set_size`` of cycle c."""
        n_cycles = len(proxies) // set_size
        selected: List[int] = []
        for cycle in range(n_cycles):
            group = list(
                range(cycle * set_size, (cycle + 1) * set_size)
            )
            ranked = sorted(group, key=lambda i: (proxies[i], i))
            selected.append(ranked[cycle % set_size])
        return selected

    def _estimate_ipc(
        self, by_rank: Dict[int, List[Tuple[int, int]]]
    ) -> float:
        """Equal-rank-weight IPC: mean of per-rank pooled CPIs, inverted."""
        cpis = []
        for pairs in by_rank.values():
            ops = sum(p[0] for p in pairs)
            cycles = sum(p[1] for p in pairs)
            if ops > 0:
                cpis.append(cycles / ops)
        if not cpis:
            raise SamplingError("no measured ranked-set samples")
        return 1.0 / (sum(cpis) / len(cpis))

    def run(
        self, program: Program, bus: Optional[EventBus] = None, **kwargs: Any
    ) -> SamplingResult:
        """Rank, select, measure, estimate."""
        cfg = self.config
        proxies, rank_engine = self._proxy_pass(program, bus)
        n_cycles = len(proxies) // cfg.set_size
        if n_cycles == 0:
            raise SamplingError(
                f"{program.name} has fewer than {cfg.set_size} "
                f"{cfg.interval_ops}-op intervals; no complete ranking cycle"
            )
        selected = self._select(proxies, cfg.set_size)

        engine = SimulationEngine(program, machine=self.machine)
        session = SamplingSession(engine, bus=bus)
        session.execute(
            interval_sample_plan(
                selected, cfg.interval_ops, cfg.warmup_ops, cfg.detail_ops
            )
        )
        measured: Dict[int, Tuple[int, int]] = {
            sample.op_offset // cfg.interval_ops: (sample.ops, sample.cycles)
            for sample in session.samples
        }
        # Cycle order: cycle c's selection carries rank c % set_size.
        per_cycle: List[Tuple[int, Tuple[int, int]]] = [
            (cycle % cfg.set_size, measured[index])
            for cycle, index in enumerate(selected)
            if index in measured
        ]
        if not per_cycle:
            raise SamplingError("no ranked-set interval was measured")
        by_rank: Dict[int, List[Tuple[int, int]]] = {}
        for rank, pair in per_cycle:
            by_rank.setdefault(rank, []).append(pair)
        ipc = self._estimate_ipc(by_rank)

        # Repeated subsampling: interleaved replicates, each re-estimated.
        replicate_ipcs: List[float] = []
        for offset in range(cfg.n_subsamples):
            replicate: Dict[int, List[Tuple[int, int]]] = {}
            for rank, pair in per_cycle[offset :: cfg.n_subsamples]:
                replicate.setdefault(rank, []).append(pair)
            if replicate:
                replicate_ipcs.append(self._estimate_ipc(replicate))
        if len(replicate_ipcs) >= 2:
            scatter = np.asarray(replicate_ipcs, dtype=np.float64)
            half = t_value(cfg.confidence, len(replicate_ipcs) - 1) * float(
                scatter.std(ddof=1)
            ) / math.sqrt(len(replicate_ipcs))
        else:
            half = math.inf
        ci = ConfidenceInterval(ipc, half, cfg.confidence, len(per_cycle))

        accounting = ModeAccounting()
        accounting.merge(rank_engine.accounting)
        accounting.merge(engine.accounting)
        if bus is not None:
            bus.emit(
                EstimateUpdated(
                    technique=self.name,
                    ipc=ipc,
                    n_samples=len(per_cycle),
                    final=True,
                )
            )
        rank_counts = {rank: len(pairs) for rank, pairs in sorted(by_rank.items())}
        return SamplingResult(
            technique=self.name,
            program=program.name,
            ipc_estimate=ipc,
            detailed_ops=accounting.detailed_ops,
            total_ops=accounting.total_ops,
            n_samples=len(per_cycle),
            accounting=accounting,
            ci=ci,
            extras={
                "config": cfg.label,
                "n_intervals": len(proxies),
                "n_cycles": n_cycles,
                "set_size": cfg.set_size,
                "rank_counts": rank_counts,
                "n_replicates": len(replicate_ipcs),
            },
        )

"""Common interface and result type for sampling techniques."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..config import DEFAULT_MACHINE, MachineConfig
from ..cpu.engine import ModeAccounting
from ..errors import EstimateError
from ..program import Program
from ..stats.ci import ConfidenceInterval

__all__ = ["SamplingResult", "SamplingTechnique"]


@dataclass
class SamplingResult:
    """Outcome of applying one sampling technique to one program.

    Attributes:
        technique: technique label (e.g. ``"PGSS"``).
        program: workload name.
        ipc_estimate: the technique's IPC estimate.
        detailed_ops: operations spent in cycle-accurate modes (detailed
            warming + detailed simulation) — the paper's Fig. 12 cost
            metric.
        total_ops: operations across all modes (the program length for
            one-pass techniques, more for multi-pass ones).
        n_samples: number of detailed samples taken (0 where the concept
            does not apply).
        accounting: per-mode op/time accounting from the engine(s).
        ci: confidence interval around the estimate where the technique
            defines one.
        extras: technique-specific diagnostics (phase counts, cluster
            weights, ...).
    """

    technique: str
    program: str
    ipc_estimate: float
    detailed_ops: int
    total_ops: int
    n_samples: int = 0
    accounting: ModeAccounting = field(default_factory=ModeAccounting)
    ci: Optional[ConfidenceInterval] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def percent_error(self, true_ipc: float) -> float:
        """Absolute error vs *true_ipc*, in percent.

        Raises:
            EstimateError: when *true_ipc* is zero — relative error is
                undefined against a zero reference (an all-stall ground
                truth usually means the reference run is itself broken).
        """
        if true_ipc == 0.0:
            raise EstimateError(
                "percent error is undefined for true_ipc == 0; the "
                "reference run measured no retired instructions per cycle"
            )
        return 100.0 * abs(self.ipc_estimate - true_ipc) / abs(true_ipc)

    def __repr__(self) -> str:
        return (
            f"SamplingResult({self.technique} on {self.program}: "
            f"ipc={self.ipc_estimate:.4f}, detailed_ops={self.detailed_ops}, "
            f"samples={self.n_samples})"
        )


class SamplingTechnique(abc.ABC):
    """Base class: configure once, run on any program.

    Subclasses implement :meth:`run`; they may accept a pre-collected
    :class:`~repro.sampling.ReferenceTrace` to reuse profiling work where
    the real technique would rerun functional simulation.  ``run`` is
    abstract, so a technique that forgets to override it fails at class
    definition rather than mid-experiment.
    """

    #: Human-readable technique name, set by subclasses.
    name: str = "base"

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE) -> None:
        self.machine = machine

    @abc.abstractmethod
    def run(self, program: Program, **kwargs: Any) -> SamplingResult:
        """Apply the technique to *program* and return its result."""

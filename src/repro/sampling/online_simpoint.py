"""Online SimPoint (Pereira et al., CODES+ISSS'05).

BBVs are tracked online at interval granularity and one *large* sample —
the first occurrence of each phase — is simulated in detail.  As in the
paper's evaluation, "a perfect phase predictor was simulated, that is, the
phase profile was known prior to the actual simulation": interval phase
labels are computed up front by running the online threshold classifier
over the interval BBV series, and the detail budget is charged as if every
first occurrence had been captured exactly.

The paper's criticism that this technique inherits shows up naturally:
the first interval assigned to a new phase is the transition interval
itself, "subject to warming effects and therefore not highly
representative of the phase".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_MACHINE, MachineConfig
from ..cpu import ModeAccounting
from ..errors import ConfigurationError, SamplingError
from ..events import EstimateUpdated, EventBus
from ..phase import OnlinePhaseClassifier
from ..program import Program
from ..stats.estimators import stratified_ratio_ipc
from .base import SamplingResult, SamplingTechnique
from .full import ReferenceTrace
from .simpoint import SimPoint, SimPointConfig

__all__ = ["OnlineSimPointConfig", "OnlineSimPoint"]


@dataclass(frozen=True)
class OnlineSimPointConfig:
    """Online-SimPoint parameters.

    Attributes:
        interval_ops: sample/interval size (paper sweeps with the SimPoint
            interval ladder; its best overall is 100M at threshold 0.1 pi).
        threshold_pi: phase-match threshold as a fraction of pi.
        hash_seed: reduced-BBV hash seed (must match the trace's).
    """

    interval_ops: int
    threshold_pi: float
    hash_seed: int = 12345

    def __post_init__(self) -> None:
        if self.interval_ops <= 0:
            raise ConfigurationError("interval_ops must be positive")
        if not 0.0 < self.threshold_pi <= 1.0:
            raise ConfigurationError("threshold_pi must be in (0, 1]")

    @property
    def label(self) -> str:
        """Short config label, e.g. ``"80k/.10"``."""
        if self.interval_ops % 1_000_000 == 0:
            size = f"{self.interval_ops // 1_000_000}M"
        elif self.interval_ops % 1_000 == 0:
            size = f"{self.interval_ops // 1_000}k"
        else:
            size = str(self.interval_ops)
        return f"{size}/.{int(round(self.threshold_pi * 100)):02d}"


class OnlineSimPoint(SamplingTechnique):
    """One large detailed sample per online-detected phase."""

    name = "OnlineSimPoint"

    def __init__(
        self, config: OnlineSimPointConfig, machine: MachineConfig = DEFAULT_MACHINE
    ) -> None:
        super().__init__(machine)
        self.config = config

    def run(
        self,
        program: Program,
        trace: Optional[ReferenceTrace] = None,
        bus: Optional[EventBus] = None,
        **kwargs: Any,
    ) -> SamplingResult:
        """Classify intervals online; detail the first interval per phase.

        Args:
            program: the workload.
            trace: pre-collected reference trace supplying interval BBVs
                and IPCs; when omitted a live profiling pass collects the
                BBVs and the intervals' IPCs are measured with a live
                second pass through :class:`SimPoint`'s machinery.
            bus: optional event bus; receives :class:`PhaseChange` events
                from the classifier and the final estimate.
        """
        cfg = self.config
        if trace is None:
            profiler = SimPoint(
                SimPointConfig(cfg.interval_ops, 1, hash_seed=cfg.hash_seed),
                machine=self.machine,
            )
            intervals = profiler.profile_intervals(program, bus=bus)
            have_ipc = False
        else:
            intervals = trace.to_period(cfg.interval_ops)
            have_ipc = True
        n = intervals.n_windows
        if n < 2:
            raise SamplingError("need at least 2 intervals")

        classifier = OnlinePhaseClassifier(cfg.threshold_pi * math.pi, bus=bus)
        points = intervals.normalized_bbvs()
        labels: List[int] = []
        for i in range(n):
            decision = classifier.observe(points[i], int(intervals.ops[i]))
            labels.append(decision.phase_id)

        # First occurrence of each phase is its (only) simulation point.
        first_of_phase: Dict[int, int] = {}
        for i, phase in enumerate(labels):
            if phase not in first_of_phase:
                first_of_phase[phase] = i

        accounting: Optional[ModeAccounting]
        rep_counts: Dict[int, Tuple[int, int]]
        if have_ipc:
            rep_counts = {
                p: (int(intervals.ops[i]), int(intervals.cycles[i]))
                for p, i in first_of_phase.items()
            }
            accounting = None
        else:
            profiler = SimPoint(
                SimPointConfig(cfg.interval_ops, 1, hash_seed=cfg.hash_seed),
                machine=self.machine,
            )
            measured, accounting = profiler._measure_representatives(
                program, sorted(first_of_phase.values()), bus=bus
            )
            rep_counts = {
                p: measured[i]
                for p, i in first_of_phase.items()
                if i in measured
            }

        label_arr = np.array(labels)
        ops_per_phase = {
            p: int(intervals.ops[label_arr == p].sum()) for p in first_of_phase
        }
        samples_per_phase = {p: [counts] for p, counts in rep_counts.items()}
        estimate = stratified_ratio_ipc(ops_per_phase, samples_per_phase)

        detailed_ops = len(rep_counts) * cfg.interval_ops
        if bus is not None:
            bus.emit(
                EstimateUpdated(
                    technique=self.name,
                    ipc=estimate.ipc,
                    n_samples=len(rep_counts),
                    final=True,
                )
            )
        result = SamplingResult(
            technique=self.name,
            program=program.name,
            ipc_estimate=estimate.ipc,
            detailed_ops=detailed_ops,
            total_ops=intervals.total_ops + detailed_ops,
            n_samples=len(rep_counts),
            extras={
                "config": cfg.label,
                "n_phases": classifier.n_phases,
                "n_intervals": n,
            },
        )
        if accounting is not None:
            result.accounting = accounting
        return result

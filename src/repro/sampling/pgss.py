"""PGSS-Sim: Phase-Guided Small-Sample Simulation (the paper's technique).

The Figure 5 flow, implemented literally:

1. start with one detailed warm-up + detailed sample (SMARTS-style);
2. fast-forward one BBV sampling period with functional warming while the
   Figure 4 hardware accumulates the reduced BBV;
3. classify the period's vector (same phase as last period / some known
   phase / brand new phase);
4. if the current phase's sample population is *not* inside confidence
   bounds and the last sample in this phase is at least the spread
   distance behind, take another warm-up + sample and credit it to the
   phase;
5. repeat until the program completes.

The loop is a *dynamic* sampling plan: a generator over
:class:`~repro.sampling.session.ModeSegment`\\ s whose next segment
depends on the classifier's CI state, with a :data:`PAUSE` marker at the
bottom of each Fig. 5 iteration.  :class:`PgssController` binds that plan
to a :class:`~repro.sampling.session.SessionDriver`, so ``Pgss.run`` and
the multicore scheduler's per-core ``step()`` interleaving are literally
the same code path.

The estimate is the ops-weighted sum of per-phase mean sample IPCs —
"PGSS-Sim automatically takes more samples in phases which occur a great
deal or have a high amount of variance in performance and fewer samples in
phases which are rarer or more stable."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from ..config import DEFAULT_MACHINE, MachineConfig, ScaleConfig
from ..cpu import Mode, SimulationEngine
from ..errors import ConfigurationError, SamplingError
from ..events import EstimateUpdated, EventBus
from ..phase import OnlinePhaseClassifier, PhaseProfile
from ..program import Program
from ..signals import PHASE_SIGNALS, SignalTracker, make_signal_tracker
from ..stats.estimators import stratified_ratio_ipc
from .base import SamplingResult, SamplingTechnique
from .session import (
    PAUSE,
    ModeSegment,
    SamplingSession,
    SegmentPlan,
    SegmentRole,
    SessionDriver,
)

__all__ = ["PgssConfig", "Pgss", "PgssController"]


@dataclass(frozen=True)
class PgssConfig:
    """PGSS-Sim parameters.

    Attributes:
        bbv_period_ops: fast-forward / BBV sampling period (the paper
            sweeps 100k/1M/10M; its best overall is 1M).
        threshold_pi: BBV angle threshold as a fraction of pi (paper best:
            0.05).
        detail_ops: measured sample length (paper: 1000).
        warmup_ops: detailed warming before each sample (paper: ~3000).
        spread_ops: minimum ops between samples within one phase (the
            Fig. 5 "1M ops since last sample in phase?" diamond).
        rel_error: per-phase CI half-width target.
        confidence: per-phase CI confidence level.
        min_samples: samples a phase needs before its CI is trusted.
        metric: phase-distance metric (``"angle"`` or ``"manhattan"``).
        wide_bbv_buckets: when set, use a wide modulo hash of this many
            buckets instead of the paper's 5-bit reduced hash (ablation).
        use_spread_rule: disable to always sample when out of bounds
            (ablation of the temporal-spreading heuristic).
        fixed_samples_per_phase: when set, ignore confidence bounds and
            take exactly this many samples per phase (ablation).
        hash_seed: seed of the 5-bit hash bit choice.
        phase_signal: phase-signal family driving classification:
            ``"bbv"`` (paper default), ``"mav"`` (memory-access vector),
            or ``"concat"`` (BBV + MAV concatenated).
        mav_buckets: MAV register-file width per granularity (only used
            when the signal includes a MAV).
    """

    bbv_period_ops: int
    threshold_pi: float
    detail_ops: int = 1_000
    warmup_ops: int = 3_000
    spread_ops: int = 1_000_000
    rel_error: float = 0.03
    confidence: float = 0.997
    min_samples: int = 3
    metric: str = "angle"
    wide_bbv_buckets: Optional[int] = None
    use_spread_rule: bool = True
    fixed_samples_per_phase: Optional[int] = None
    hash_seed: int = 12345
    phase_signal: str = "bbv"
    mav_buckets: int = 32

    def __post_init__(self) -> None:
        if self.phase_signal not in PHASE_SIGNALS:
            raise ConfigurationError(
                f"phase_signal must be one of {PHASE_SIGNALS}, "
                f"got {self.phase_signal!r}"
            )
        if self.bbv_period_ops <= self.detail_ops + self.warmup_ops:
            raise ConfigurationError(
                "bbv_period_ops must exceed warmup_ops + detail_ops"
            )
        if not 0.0 < self.threshold_pi <= 1.0:
            raise ConfigurationError("threshold_pi must be in (0, 1]")
        if self.spread_ops < 0:
            raise ConfigurationError("spread_ops must be non-negative")
        if self.min_samples < 1:
            raise ConfigurationError("min_samples must be at least 1")
        if self.fixed_samples_per_phase is not None and self.fixed_samples_per_phase < 1:
            raise ConfigurationError("fixed_samples_per_phase must be >= 1")

    @classmethod
    def from_scale(
        cls,
        scale: ScaleConfig,
        bbv_period_ops: Optional[int] = None,
        threshold_pi: float = 0.05,
        **overrides: Any,
    ) -> "PgssConfig":
        """The scale's canonical PGSS configuration (paper best: 1M/.05)."""
        budget = scale.sample_budget
        params = dict(
            detail_ops=budget.detail_ops,
            warmup_ops=budget.warmup_ops,
            spread_ops=scale.pgss_spread,
            rel_error=budget.rel_error,
            confidence=budget.confidence,
            phase_signal=scale.phase_signal,
        )
        params.update(overrides)
        return cls(
            bbv_period_ops=bbv_period_ops or scale.pgss_best_period,
            threshold_pi=threshold_pi,
            **params,
        )

    @property
    def label(self) -> str:
        """Short config label, e.g. ``"80k/.05"``."""
        p = self.bbv_period_ops
        if p % 1_000_000 == 0:
            size = f"{p // 1_000_000}M"
        elif p % 1_000 == 0:
            size = f"{p // 1_000}k"
        else:
            size = str(p)
        label = f"{size}/.{int(round(self.threshold_pi * 100)):02d}"
        if self.phase_signal != "bbv":
            label += f"/{self.phase_signal}"
        return label


class Pgss(SamplingTechnique):
    """Phase-Guided Small-Sample Simulation."""

    name = "PGSS"

    def __init__(
        self, config: PgssConfig, machine: MachineConfig = DEFAULT_MACHINE
    ) -> None:
        super().__init__(machine)
        self.config = config

    def _make_tracker(self) -> SignalTracker:
        cfg = self.config
        return make_signal_tracker(
            cfg.phase_signal,
            hash_seed=cfg.hash_seed,
            wide_bbv_buckets=cfg.wide_bbv_buckets,
            mav_buckets=cfg.mav_buckets,
        )

    def make_controller(
        self, engine: SimulationEngine, bus: Optional[EventBus] = None
    ) -> "PgssController":
        """Bind a stepping controller to an engine built for this config.

        The engine must carry a tracker from :meth:`_make_tracker` (the
        controller reads the signal register file at each period
        boundary).
        """
        return PgssController(engine, self.config, bus=bus)

    def run(
        self, program: Program, bus: Optional[EventBus] = None, **kwargs: Any
    ) -> SamplingResult:
        """Execute the Fig. 5 loop over *program*."""
        engine = SimulationEngine(
            program, machine=self.machine, signal_tracker=self._make_tracker()
        )
        controller = PgssController(engine, self.config, bus=bus)
        controller.run()
        return controller.result()


class PgssController:
    """Incremental executor of the Fig. 5 loop.

    The loop is expressed once, as a dynamic sampling plan (a generator
    of :class:`~repro.sampling.session.ModeSegment`\\ s with a
    :data:`PAUSE` at the bottom of each iteration), and executed by a
    :class:`~repro.sampling.session.SessionDriver`.  One :meth:`step`
    call performs one loop iteration: fast-forward a BBV period (with
    the first call additionally taking the Fig. 5 START sample),
    classify the period, and take a detailed sample if the current phase
    needs one.  The stepping interface is what lets the multicore
    extension (paper Section 7) interleave several cores' PGSS loops
    over a shared memory hierarchy; :meth:`Pgss.run` drives the very
    same plan to completion.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: PgssConfig,
        bus: Optional[EventBus] = None,
    ) -> None:
        if engine.signal_tracker is None:
            raise ConfigurationError(
                "PGSS requires an engine with a phase-signal tracker"
            )
        self.engine = engine
        self.config = config
        self.session = SamplingSession(engine, bus=bus)
        self.classifier = OnlinePhaseClassifier(
            config.threshold_pi * math.pi,
            metric=config.metric,
            bus=self.session.bus,
        )
        self._pending: Optional[Tuple[float, int, int, int]] = None
        #: Ops executed since the last classification (attributed to the
        #: phase chosen at the next period boundary).
        self._ops_unattributed = 0
        self._finished = False
        self._ff_ops = config.bbv_period_ops - config.warmup_ops - config.detail_ops
        self._driver = SessionDriver(self.session, self._fig5_plan())

    @property
    def n_samples(self) -> int:
        """Detailed samples taken so far."""
        return self.session.n_samples

    @property
    def sample_offsets(self) -> List[int]:
        """Program op offsets at which detailed samples were taken."""
        return [s.op_offset for s in self.session.samples]

    def _phase_needs_sample(self, phase: PhaseProfile, op_offset: int) -> bool:
        """The two Fig. 5 decision diamonds after classification."""
        cfg = self.config
        if cfg.fixed_samples_per_phase is not None:
            if phase.n_samples >= cfg.fixed_samples_per_phase:
                return False
        elif phase.within_bounds(cfg.rel_error, cfg.confidence, cfg.min_samples):
            return False
        if (
            cfg.use_spread_rule
            and phase.last_sample_op is not None
            and op_offset - phase.last_sample_op < cfg.spread_ops
        ):
            return False
        return True

    def _sample_plan(
        self,
    ) -> Generator[ModeSegment, Any, Optional[Tuple[float, int, int]]]:
        """Sub-plan: detailed warm-up + measured sample.

        Yields the two segments and returns ``(ipc, ops, cycles)``, or
        ``None`` when the program ended during warm-up or the sample
        measured nothing.
        """
        cfg = self.config
        if cfg.warmup_ops:
            warm = yield ModeSegment(
                Mode.DETAIL_WARM, cfg.warmup_ops, role=SegmentRole.WARMUP
            )
            self._ops_unattributed += warm.run.ops
            if self.engine.exhausted:
                return None
        out = yield ModeSegment(
            Mode.DETAIL, cfg.detail_ops, role=SegmentRole.SAMPLE, measure=True
        )
        self._ops_unattributed += out.run.ops
        if out.sample is not None:
            return (out.run.ipc, out.run.ops, out.run.cycles)
        return None

    def _fig5_plan(self) -> SegmentPlan:
        """The Fig. 5 loop as a dynamic sampling plan."""
        engine = self.engine
        classifier = self.classifier

        # Fig. 5 START: warm-up + first sample before any phase
        # information exists; credited to the first period's phase.
        first = yield from self._sample_plan()
        if first is not None:
            self._pending = (*first, engine.ops_completed)

        while True:
            if engine.exhausted:
                self._wrap_up()
                return
            ff = yield ModeSegment(
                Mode.FUNC_WARM, self._ff_ops, role=SegmentRole.FAST_FORWARD
            )
            self._ops_unattributed += ff.run.ops
            vector = engine.signal_tracker.take_vector(normalize=True)
            classifier.observe(vector, self._ops_unattributed)
            self._ops_unattributed = 0
            phase = classifier.current_phase
            if self._pending is not None:
                ipc, s_ops, s_cycles, offset = self._pending
                phase.add_sample(ipc, offset, ops=s_ops, cycles=s_cycles)
                self._pending = None
            if engine.exhausted:
                self._wrap_up()
                return
            if self._phase_needs_sample(phase, engine.ops_completed):
                sample = yield from self._sample_plan()
                if sample is not None:
                    ipc, s_ops, s_cycles = sample
                    phase.add_sample(
                        ipc, engine.ops_completed, ops=s_ops, cycles=s_cycles
                    )
                # Ops of the sample region belong to the current phase.
                phase.add_ops(self._ops_unattributed)
                self._ops_unattributed = 0
            if engine.exhausted:
                self._wrap_up()
                return
            yield PAUSE

    def step(self) -> bool:
        """Run one Fig. 5 iteration; returns False once the program ends."""
        return self._driver.step()

    def run(self) -> None:
        """Drive the plan to completion."""
        self._driver.run()

    def _wrap_up(self) -> None:
        classifier = self.classifier
        if classifier.current_phase is not None and self._ops_unattributed:
            classifier.current_phase.add_ops(self._ops_unattributed)
            self._ops_unattributed = 0
        if self._pending is not None and classifier.current_phase is not None:
            ipc, s_ops, s_cycles, offset = self._pending
            classifier.current_phase.add_sample(
                ipc, offset, ops=s_ops, cycles=s_cycles
            )
            self._pending = None
        self._finished = True

    def result(self) -> SamplingResult:
        """Assemble the final estimate (call after stepping completes).

        Raises:
            SamplingError: when the program ended before one full BBV
                period, so no phase was ever observed.
        """
        if not self._finished:
            self._wrap_up()
        classifier = self.classifier
        engine = self.engine
        if classifier.n_phases == 0:
            raise SamplingError(
                f"{engine.program.name} ended before the first BBV period; "
                f"shrink bbv_period_ops (currently "
                f"{self.config.bbv_period_ops})"
            )
        ops_per_phase = classifier.ops_per_phase()
        samples_per_phase = {
            p.phase_id: p.sample_ops_cycles for p in classifier.phases
        }
        estimate = stratified_ratio_ipc(ops_per_phase, samples_per_phase)
        self.session.bus.emit(
            EstimateUpdated(
                technique=Pgss.name,
                ipc=estimate.ipc,
                n_samples=self.n_samples,
                final=True,
            )
        )
        return SamplingResult(
            technique=Pgss.name,
            program=engine.program.name,
            ipc_estimate=estimate.ipc,
            detailed_ops=engine.accounting.detailed_ops,
            total_ops=engine.accounting.total_ops,
            n_samples=self.n_samples,
            accounting=engine.accounting,
            extras={
                "config": self.config.label,
                "n_phases": classifier.n_phases,
                "n_phase_changes": classifier.n_changes,
                "samples_per_phase": {
                    p.phase_id: p.n_samples for p in classifier.phases
                },
                "uncovered_weight": estimate.uncovered_weight,
            },
        )

"""Two-phase stratified sampling (Ekman & Stenström, NVIDIA).

The recipe from "CPU Simulation Using Two-Phase Stratified Sampling":

1. **Stage 1 — cheap strata.**  A FUNC_FAST profiling pass (op counting
   plus the always-on phase-signal hardware, reduced BBV by default)
   assigns every fixed-length interval an online phase id.  The phases are the strata; no cycle-
   accurate work is spent yet.
2. **Pilot probe.**  A small fixed number of detailed samples per
   stratum (``pilot_per_stratum``) estimates each stratum's IPC standard
   deviation — the quantity Neyman allocation needs.
3. **Stage 2 — Neyman allocation.**  The remaining detailed budget is
   split ``n_h proportional to N_h * S_h``
   (:func:`repro.stats.sampling_theory.neyman_allocation`), additional
   intervals are selected evenly inside each stratum, and a second
   measurement pass takes the samples.

The estimate is the per-stratum stratified *ratio* estimator
(:func:`repro.stats.stratified_ratio_ipc`) over the stage-1 ops
attribution, with a stratified-mean confidence interval
(:func:`repro.stats.sampling_theory.stratified_mean_ci`).

All three passes are sampling-session plans: the profile pass mirrors
SimPoint's, and both measurement passes are the kernel's shared
:func:`~repro.sampling.session.interval_sample_plan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_MACHINE, MachineConfig, ScaleConfig
from ..cpu import Mode, ModeAccounting, SimulationEngine
from ..errors import ConfigurationError, SamplingError
from ..events import EstimateUpdated, EventBus
from ..phase import OnlinePhaseClassifier
from ..program import Program
from ..signals import PHASE_SIGNALS, make_signal_tracker
from ..stats.ci import ConfidenceInterval
from ..stats.estimators import stratified_ratio_ipc
from ..stats.sampling_theory import neyman_allocation, stratified_mean_ci
from .base import SamplingResult, SamplingTechnique
from .session import (
    ModeSegment,
    SamplingSession,
    SegmentPlan,
    SegmentRole,
    interval_sample_plan,
)

__all__ = ["TwoPhaseStratifiedConfig", "TwoPhaseStratified"]


@dataclass(frozen=True)
class TwoPhaseStratifiedConfig:
    """Two-phase stratified sampling parameters.

    Attributes:
        interval_ops: stratification interval length (one BBV per
            interval; also the unit stage 2 selects).
        total_samples: total detailed-sample budget, pilots included.
        threshold_pi: BBV angle threshold (fraction of pi) of the online
            phase classifier producing the strata.
        pilot_per_stratum: pilot samples per stratum for the variance
            probe (capped at the stratum's occurrence count).
        detail_ops: measured detailed-sample length.
        warmup_ops: detailed warming before each sample.
        confidence: confidence level of the reported interval.
        metric: phase-distance metric (``"angle"`` or ``"manhattan"``).
        hash_seed: seed of the reduced-BBV hash bit choice.
        phase_signal: phase-signal family producing the strata
            (``"bbv"``, ``"mav"``, or ``"concat"``).
        mav_buckets: MAV register-file width per granularity (only used
            when the signal includes a MAV).
    """

    interval_ops: int
    total_samples: int
    threshold_pi: float = 0.05
    pilot_per_stratum: int = 2
    detail_ops: int = 1_000
    warmup_ops: int = 3_000
    confidence: float = 0.997
    metric: str = "angle"
    hash_seed: int = 12345
    phase_signal: str = "bbv"
    mav_buckets: int = 32

    def __post_init__(self) -> None:
        if self.phase_signal not in PHASE_SIGNALS:
            raise ConfigurationError(
                f"phase_signal must be one of {PHASE_SIGNALS}, "
                f"got {self.phase_signal!r}"
            )
        if self.interval_ops <= self.detail_ops + self.warmup_ops:
            raise ConfigurationError(
                "interval_ops must exceed warmup_ops + detail_ops"
            )
        if not 0.0 < self.threshold_pi <= 1.0:
            raise ConfigurationError("threshold_pi must be in (0, 1]")
        if self.total_samples < 1:
            raise ConfigurationError("total_samples must be at least 1")
        if self.pilot_per_stratum < 1:
            raise ConfigurationError("pilot_per_stratum must be at least 1")

    @classmethod
    def from_scale(
        cls, scale: ScaleConfig, **overrides: Any
    ) -> "TwoPhaseStratifiedConfig":
        """The scale's canonical two-phase stratified configuration."""
        budget = scale.sample_budget
        params: Dict[str, Any] = dict(
            interval_ops=scale.pgss_best_period,
            total_samples=budget.stage2_samples,
            pilot_per_stratum=budget.pilot_per_stratum,
            detail_ops=budget.detail_ops,
            warmup_ops=budget.warmup_ops,
            confidence=budget.confidence,
            phase_signal=scale.phase_signal,
        )
        params.update(overrides)
        return cls(**params)

    @property
    def label(self) -> str:
        """Short config label, e.g. ``"8kx2p16"``."""
        label = (
            f"{_fmt_ops(self.interval_ops)}x"
            f"{self.pilot_per_stratum}p{self.total_samples}"
        )
        if self.phase_signal != "bbv":
            label += f"/{self.phase_signal}"
        return label


def _fmt_ops(n: int) -> str:
    if n % 1_000_000 == 0:
        return f"{n // 1_000_000}M"
    if n % 1_000 == 0:
        return f"{n // 1_000}k"
    return str(n)


def _spread(items: List[int], count: int) -> List[int]:
    """*count* evenly spaced picks from *items* (deterministic, sorted)."""
    if count >= len(items):
        return list(items)
    return [items[(j * len(items)) // count] for j in range(count)]


def _cap_and_redistribute(
    allocation: List[int], capacity: List[int]
) -> List[int]:
    """Cap each allocation at its capacity; re-spend the surplus.

    Surplus budget freed by capped strata is handed out one sample at a
    time, round-robin in stratum order, to strata with headroom — the
    deterministic without-replacement completion of Neyman allocation.
    """
    capped = [min(a, c) for a, c in zip(allocation, capacity)]
    surplus = sum(allocation) - sum(capped)
    while surplus > 0:
        progressed = False
        for index in range(len(capped)):
            if surplus == 0:
                break
            if capped[index] < capacity[index]:
                capped[index] += 1
                surplus -= 1
                progressed = True
        if not progressed:
            break  # every stratum exhausted: budget exceeds the universe
    return capped


class TwoPhaseStratified(SamplingTechnique):
    """Stage-1 phase profile, stage-2 Neyman-allocated detailed samples."""

    name = "Stratified"

    def __init__(
        self,
        config: TwoPhaseStratifiedConfig,
        machine: MachineConfig = DEFAULT_MACHINE,
    ) -> None:
        super().__init__(machine)
        self.config = config

    def _profile(
        self, program: Program, bus: Optional[EventBus]
    ) -> Tuple[List[int], List[int], SimulationEngine]:
        """Stage 1: per-interval phase ids and op counts (FUNC_FAST)."""
        cfg = self.config
        tracker = make_signal_tracker(
            cfg.phase_signal,
            hash_seed=cfg.hash_seed,
            mav_buckets=cfg.mav_buckets,
        )
        engine = SimulationEngine(
            program, machine=self.machine, signal_tracker=tracker
        )
        session = SamplingSession(engine, bus=bus)
        classifier = OnlinePhaseClassifier(
            cfg.threshold_pi * math.pi, metric=cfg.metric, bus=session.bus
        )
        phase_ids: List[int] = []
        ops_list: List[int] = []

        def plan() -> SegmentPlan:
            while not engine.exhausted:
                outcome = yield ModeSegment(
                    Mode.FUNC_FAST, cfg.interval_ops, role=SegmentRole.PROFILE
                )
                if outcome.run.ops == 0:
                    break
                vector = tracker.take_vector(normalize=True)
                decision = classifier.observe(vector, outcome.run.ops)
                phase_ids.append(decision.phase_id)
                ops_list.append(outcome.run.ops)

        session.execute(plan())
        return phase_ids, ops_list, engine

    def _measure(
        self, program: Program, targets: List[int], bus: Optional[EventBus]
    ) -> Tuple[Dict[int, Tuple[int, int]], SimulationEngine]:
        """One measurement pass: interval index -> measured (ops, cycles)."""
        cfg = self.config
        engine = SimulationEngine(program, machine=self.machine)
        session = SamplingSession(engine, bus=bus)
        session.execute(
            interval_sample_plan(
                targets, cfg.interval_ops, cfg.warmup_ops, cfg.detail_ops
            )
        )
        counts = {
            sample.op_offset // cfg.interval_ops: (sample.ops, sample.cycles)
            for sample in session.samples
        }
        return counts, engine

    def run(
        self, program: Program, bus: Optional[EventBus] = None, **kwargs: Any
    ) -> SamplingResult:
        """Profile, probe, allocate, measure, estimate."""
        cfg = self.config
        phase_ids, interval_ops, profile_engine = self._profile(program, bus)
        if not phase_ids:
            raise SamplingError(
                f"{program.name} produced no {cfg.interval_ops}-op intervals"
            )
        occurrences: Dict[int, List[int]] = {}
        for index, phase_id in enumerate(phase_ids):
            occurrences.setdefault(phase_id, []).append(index)
        strata = sorted(occurrences)

        # Pilot probe: a few evenly spaced samples inside each stratum.
        pilot_targets = {
            pid: _spread(occurrences[pid], cfg.pilot_per_stratum)
            for pid in strata
        }
        all_pilots = sorted(
            index for picks in pilot_targets.values() for index in picks
        )
        pilot_counts, pilot_engine = self._measure(program, all_pilots, bus)

        sizes = [len(occurrences[pid]) for pid in strata]
        stds: List[float] = []
        for pid in strata:
            ipcs = [
                pilot_counts[index][0] / pilot_counts[index][1]
                for index in pilot_targets[pid]
                if index in pilot_counts
            ]
            stds.append(
                float(np.std(ipcs, ddof=1)) if len(ipcs) >= 2 else 0.0
            )

        # Stage 2: Neyman-allocate the full budget, discount the pilots
        # already taken, cap at each stratum's unsampled intervals.
        budget = max(cfg.total_samples, len(strata))
        allocation = neyman_allocation(sizes, stds, budget)
        extra_wanted = [
            max(allocation[pos] - len(pilot_targets[pid]), 0)
            for pos, pid in enumerate(strata)
        ]
        unsampled = {
            pid: [i for i in occurrences[pid] if i not in set(pilot_targets[pid])]
            for pid in strata
        }
        extra = _cap_and_redistribute(
            extra_wanted, [len(unsampled[pid]) for pid in strata]
        )
        stage2_targets = sorted(
            index
            for pos, pid in enumerate(strata)
            for index in _spread(unsampled[pid], extra[pos])
        )
        stage2_counts: Dict[int, Tuple[int, int]] = {}
        stage2_engine: Optional[SimulationEngine] = None
        if stage2_targets:
            stage2_counts, stage2_engine = self._measure(
                program, stage2_targets, bus
            )

        # Per-stratum estimator inputs from the stage-1 attribution.
        measured = dict(pilot_counts)
        measured.update(stage2_counts)
        ops_per_stratum = {
            pid: sum(interval_ops[i] for i in occurrences[pid])
            for pid in strata
        }
        samples_per_stratum: Dict[int, List[Tuple[int, int]]] = {
            pid: [
                measured[i] for i in occurrences[pid] if i in measured
            ]
            for pid in strata
        }
        estimate = stratified_ratio_ipc(ops_per_stratum, samples_per_stratum)
        # The CI is built in CPI space, where the stratified mean matches
        # the ratio estimator (per-sample ops are a constant detail_ops),
        # then delta-converted: IPC = 1/CPI, d(IPC) = d(CPI)/CPI^2.
        cpi_ci = stratified_mean_ci(
            ops_per_stratum,
            {
                pid: [cycles / ops for ops, cycles in pairs]
                for pid, pairs in samples_per_stratum.items()
            },
            cfg.confidence,
        )
        ci = ConfidenceInterval(
            mean=1.0 / cpi_ci.mean,
            half_width=cpi_ci.half_width / cpi_ci.mean**2,
            confidence=cpi_ci.confidence,
            n=cpi_ci.n,
        )

        accounting = ModeAccounting()
        accounting.merge(profile_engine.accounting)
        accounting.merge(pilot_engine.accounting)
        if stage2_engine is not None:
            accounting.merge(stage2_engine.accounting)
        n_samples = len(measured)
        if bus is not None:
            bus.emit(
                EstimateUpdated(
                    technique=self.name,
                    ipc=estimate.ipc,
                    n_samples=n_samples,
                    final=True,
                )
            )
        return SamplingResult(
            technique=self.name,
            program=program.name,
            ipc_estimate=estimate.ipc,
            detailed_ops=accounting.detailed_ops,
            total_ops=accounting.total_ops,
            n_samples=n_samples,
            accounting=accounting,
            ci=ci,
            extras={
                "config": cfg.label,
                "n_intervals": len(phase_ids),
                "n_strata": len(strata),
                "stratum_sizes": {pid: len(occurrences[pid]) for pid in strata},
                "allocation": {
                    pid: allocation[pos] for pos, pid in enumerate(strata)
                },
                "samples_per_stratum": {
                    pid: len(samples_per_stratum[pid]) for pid in strata
                },
                "uncovered_weight": estimate.uncovered_weight,
            },
        )

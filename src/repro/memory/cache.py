"""A set-associative cache with true-LRU replacement.

The implementation favours access speed in pure Python: each set is a
contiguous slice of a flat tag list, MRU-ordered so a hit is usually found
in the first one or two comparisons and LRU eviction is just the last slot.
State is snapshotable for checkpoint/livepoint support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..config import CacheConfig
from ..errors import SnapshotError

__all__ = ["Cache", "CacheStats"]

#: Sentinel tag meaning "way is empty".
_EMPTY = -1


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache."""

    accesses: int = 0
    hits: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        """Number of accesses that missed."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.hits = 0
        self.writebacks = 0


class Cache:
    """Set-associative, write-back, write-allocate cache with LRU.

    Args:
        config: geometry and latency.
        name: label used in stats reporting.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._line_shift = config.line_bytes.bit_length() - 1
        self._n_sets = config.n_sets
        self._set_mask = self._n_sets - 1
        self._power_of_two_sets = (self._n_sets & (self._n_sets - 1)) == 0
        self._assoc = config.assoc
        # Flat MRU-ordered storage: set s occupies slots [s*assoc, (s+1)*assoc).
        self._tags: List[int] = [_EMPTY] * (self._n_sets * self._assoc)
        self._dirty: List[bool] = [False] * (self._n_sets * self._assoc)
        self.stats = CacheStats()

    @property
    def hit_latency(self) -> int:
        """Cycles to service a hit at this level."""
        return self.config.hit_latency

    @property
    def n_sets(self) -> int:
        """Number of sets in this cache."""
        return self._n_sets

    def _set_index(self, line: int) -> int:
        if self._power_of_two_sets:
            return line & self._set_mask
        return line % self._n_sets

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up *addr*; allocate on miss.  Returns True on hit.

        A miss evicts the LRU way; if the victim is dirty a writeback is
        counted.  The caller (the hierarchy) is responsible for propagating
        the miss to the next level.
        """
        line = addr >> self._line_shift
        base = self._set_index(line) * self._assoc
        tags = self._tags
        dirty = self._dirty
        stats = self.stats
        stats.accesses += 1
        end = base + self._assoc
        for i in range(base, end):
            if tags[i] == line:
                stats.hits += 1
                # Move to MRU position by rotating the set's slice only —
                # a del/insert pair would memmove the whole flat list.
                if i != base:
                    d = dirty[i]
                    tags[base + 1 : i + 1] = tags[base:i]
                    dirty[base + 1 : i + 1] = dirty[base:i]
                    tags[base] = line
                    dirty[base] = d
                if is_write:
                    dirty[base] = True
                return True
        # Miss: evict LRU (last slot of the set).
        if dirty[end - 1] and tags[end - 1] != _EMPTY:
            stats.writebacks += 1
        tags[base + 1 : end] = tags[base : end - 1]
        dirty[base + 1 : end] = dirty[base : end - 1]
        tags[base] = line
        dirty[base] = is_write
        return False

    def access_quiet(self, addr: int, is_write: bool = False) -> bool:
        """:meth:`access` minus the access/hit counters.

        State transitions (MRU moves, allocation, dirty bits) and the
        writeback counter are identical to :meth:`access`; the caller is
        responsible for adding the corresponding access/hit counts in
        bulk.  The batched pipeline uses this so its hot loop can defer
        counter arithmetic to one flush per run.  The set lookup is
        inlined and the MRU hit returns early — this is the hottest
        primitive of the batched detailed path.
        """
        line = addr >> self._line_shift
        if self._power_of_two_sets:
            base = (line & self._set_mask) * self._assoc
        else:
            base = (line % self._n_sets) * self._assoc
        tags = self._tags
        dirty = self._dirty
        if tags[base] == line:
            if is_write:
                dirty[base] = True
            return True
        end = base + self._assoc
        for i in range(base + 1, end):
            if tags[i] == line:
                d = dirty[i]
                tags[base + 1 : i + 1] = tags[base:i]
                dirty[base + 1 : i + 1] = dirty[base:i]
                tags[base] = line
                dirty[base] = d or is_write
                return True
        if dirty[end - 1] and tags[end - 1] != _EMPTY:
            self.stats.writebacks += 1
        tags[base + 1 : end] = tags[base : end - 1]
        dirty[base + 1 : end] = dirty[base : end - 1]
        tags[base] = line
        dirty[base] = is_write
        return False

    def hot_refs(self) -> Tuple[Any, ...]:
        """Internal-state references for callers that inline the access path.

        Returns ``(tags, dirty, line_shift, assoc, pow2_sets, set_mask,
        n_sets)``.  The batched pipeline binds these as locals and runs the
        :meth:`access_quiet` state transition inline in its hot loop —
        the lists are the live storage, so inlined transitions and method
        calls remain interchangeable at every point.
        """
        return (
            self._tags,
            self._dirty,
            self._line_shift,
            self._assoc,
            self._power_of_two_sets,
            self._set_mask,
            self._n_sets,
        )

    def is_silent_hit(self, addr: int, is_write: bool = False) -> bool:
        """Would :meth:`access` hit *without changing any state*?

        True exactly when the line is resident at the MRU position of its
        set (so no reorder happens) and, for writes, is already dirty (so
        no dirty bit flips).  A silent access changes nothing but the
        hit/access counters — the steadiness probe behind the detailed
        pipeline's closed-form fast path.
        """
        line = addr >> self._line_shift
        base = self._set_index(line) * self._assoc
        if self._tags[base] != line:
            return False
        return not is_write or self._dirty[base]

    def silent_span_strided(
        self,
        base: int,
        stride: int,
        span: int,
        k_start: int,
        limit: int,
        is_write: bool,
        salt: int = 0,
    ) -> int:
        """Silent-hit span of a strided pattern (see :meth:`is_silent_hit`).

        Returns the largest ``m <= limit`` such that accesses at
        ``base + (k * stride) % span`` for ``k in [k_start, k_start + m)``
        would all be silent hits.  Consecutive executions sharing a cache
        line are vouched for together, so the walk is per line-group, not
        per execution.  The tag checks are inlined — this runs inside the
        batched pipeline's hot loop.
        """
        tags = self._tags
        dirty = self._dirty
        shift = self._line_shift
        assoc = self._assoc
        line_mask = (1 << shift) - 1
        pow2 = self._power_of_two_sets
        set_mask = self._set_mask
        n_sets = self._n_sets
        k = k_start
        end = k_start + limit
        while k < end:
            off = (k * stride) % span
            line = ((base + off) ^ salt) >> shift
            b = (line & set_mask if pow2 else line % n_sets) * assoc
            if tags[b] != line or (is_write and not dirty[b]):
                break
            # Executions sharing this line (and staying inside the span)
            # are silent together; jump straight past them.
            by_line = ((off | line_mask) - off) // stride + 1
            by_wrap = (span - off + stride - 1) // stride
            k += by_line if by_line < by_wrap else by_wrap
        return (k if k < end else end) - k_start

    def silent_block_span(
        self,
        pats: Tuple[Tuple[int, int, int, bool], ...],
        k_start: int,
        limit: int,
        salt: int = 0,
    ) -> int:
        """Net-silent span of one block's strided accesses, probed jointly.

        *pats* holds ``(base, stride, span, is_write)`` per access in
        program order.  An iteration is *net-silent* when executing all
        its accesses in order leaves the cache byte-identical: every
        access hits, writes land on already-dirty lines, and the lines
        accessed this iteration already occupy the top ways of their sets
        in reverse order of last access — so the MRU moves of the
        iteration permute them right back where they started.  This
        subsumes the single-access MRU test and additionally covers
        blocks whose patterns share a set (e.g. two equal-stride streams
        with aligned bases): individually neither line is at MRU-stable
        rest, but each iteration restores the pair's layout exactly.

        Returns the largest ``m <= limit`` with iterations
        ``k_start .. k_start + m - 1`` all net-silent.  The walk advances
        one line-configuration at a time — iterations that touch the same
        lines are vouched for together.
        """
        tags = self._tags
        dirty = self._dirty
        shift = self._line_shift
        assoc = self._assoc
        line_mask = (1 << shift) - 1
        pow2 = self._power_of_two_sets
        set_mask = self._set_mask
        n_sets = self._n_sets
        n_l = len(pats)
        k = k_start
        end = k_start + limit
        while k < end:
            step = end - k
            lines = []
            for base, stride, span, w in pats:
                off = (k * stride) % span
                line = ((base + off) ^ salt) >> shift
                b = (line & set_mask if pow2 else line % n_sets) * assoc
                lines.append((b, line, w))
                by_line = ((off | line_mask) - off) // stride + 1
                by_wrap = (span - off + stride - 1) // stride
                g = by_line if by_line < by_wrap else by_wrap
                if g < step:
                    step = g
            shared = False
            for x in range(1, n_l):
                bx = lines[x][0]
                for y in range(x):
                    if lines[y][0] == bx:
                        shared = True
                        break
                if shared:
                    break
            ok = True
            if not shared:
                # All sets distinct: net-silence is per-line MRU rest.
                for b, line, w in lines:
                    if tags[b] != line or (w and not dirty[b]):
                        ok = False
                        break
            else:
                # Shared sets: the iteration's lines must sit at the top
                # ways in reverse order of last access, writes on dirty
                # lines — then the iteration's MRU moves restore the
                # layout exactly.
                per_set: dict = {}
                for b, line, w in lines:
                    entry = per_set.setdefault(b, [])
                    for idx, (l2, w2) in enumerate(entry):
                        if l2 == line:
                            del entry[idx]
                            w = w or w2
                            break
                    entry.append((line, w))
                for b, entry in per_set.items():
                    j = 0
                    for line, w in reversed(entry):
                        if tags[b + j] != line or (w and not dirty[b + j]):
                            ok = False
                            break
                        j += 1
                    if not ok:
                        break
            if not ok:
                break
            k += step
        return (k if k < end else end) - k_start

    def silent_block_pair_span(
        self,
        p1: Tuple[int, int, int, bool],
        p2: Tuple[int, int, int, bool],
        k_start: int,
        limit: int,
        salt: int = 0,
    ) -> int:
        """:meth:`silent_block_span` unrolled for the two-access case.

        Two strided accesses per iteration is the common shape of a
        stream-plus-reuse loop body, and the general walk's per-iteration
        list/dict bookkeeping dominates its cost there; this variant keeps
        everything in scalars.  Semantics are identical.
        """
        b1, s1, sp1, w1 = p1
        b2, s2, sp2, w2 = p2
        tags = self._tags
        dirty = self._dirty
        shift = self._line_shift
        assoc = self._assoc
        line_mask = (1 << shift) - 1
        pow2 = self._power_of_two_sets
        set_mask = self._set_mask
        n_sets = self._n_sets
        k = k_start
        end = k_start + limit
        while k < end:
            o1 = (k * s1) % sp1
            l1 = ((b1 + o1) ^ salt) >> shift
            a1 = (l1 & set_mask if pow2 else l1 % n_sets) * assoc
            o2 = (k * s2) % sp2
            l2 = ((b2 + o2) ^ salt) >> shift
            a2 = (l2 & set_mask if pow2 else l2 % n_sets) * assoc
            if a1 != a2:
                # Distinct sets: net-silence is per-line MRU rest.
                if tags[a1] != l1 or (w1 and not dirty[a1]):
                    break
                if tags[a2] != l2 or (w2 and not dirty[a2]):
                    break
            elif l1 == l2:
                # One line touched twice: silent iff at MRU, dirty when
                # either access writes.
                if tags[a1] != l1 or ((w1 or w2) and not dirty[a1]):
                    break
            else:
                # Same set, two lines: the later access must rest at MRU
                # with the earlier one right behind it — the iteration's
                # MRU moves then restore the layout exactly.
                if tags[a1] != l2 or tags[a1 + 1] != l1:
                    break
                if (w2 and not dirty[a1]) or (w1 and not dirty[a1 + 1]):
                    break
            g = ((o1 | line_mask) - o1) // s1 + 1
            gw = (sp1 - o1 + s1 - 1) // s1
            if gw < g:
                g = gw
            gl = ((o2 | line_mask) - o2) // s2 + 1
            if gl < g:
                g = gl
            gw = (sp2 - o2 + s2 - 1) // s2
            if gw < g:
                g = gw
            step = end - k
            k += g if g < step else step
        return (k if k < end else end) - k_start

    def silent_span_hashed(
        self,
        address: Any,
        k_start: int,
        limit: int,
        is_write: bool,
        salt: int = 0,
    ) -> int:
        """Silent-hit span of a hashed pattern, probed per execution."""
        tags = self._tags
        dirty = self._dirty
        shift = self._line_shift
        assoc = self._assoc
        pow2 = self._power_of_two_sets
        set_mask = self._set_mask
        n_sets = self._n_sets
        for i in range(limit):
            line = (address(k_start + i) ^ salt) >> shift
            b = (line & set_mask if pow2 else line % n_sets) * assoc
            if tags[b] != line or (is_write and not dirty[b]):
                return i
        return limit

    def contains(self, addr: int) -> bool:
        """Return True if *addr*'s line is resident (no state change)."""
        line = addr >> self._line_shift
        base = self._set_index(line) * self._assoc
        return line in self._tags[base : base + self._assoc]

    def flush(self) -> None:
        """Invalidate every line and clear dirty bits (stats survive)."""
        n = self._n_sets * self._assoc
        self._tags = [_EMPTY] * n
        self._dirty = [False] * n

    def snapshot(self) -> Tuple[List[int], List[bool]]:
        """Return a copy of the tag/dirty state for checkpointing."""
        return (list(self._tags), list(self._dirty))

    def restore(self, state: Tuple[List[int], List[bool]]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        tags, dirty = state
        if len(tags) != self._n_sets * self._assoc:
            raise SnapshotError("snapshot geometry does not match this cache")
        self._tags = list(tags)
        self._dirty = list(dirty)

    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for t in self._tags if t != _EMPTY)

    def __repr__(self) -> str:
        c = self.config
        return (
            f"Cache({self.name}: {c.size_bytes // 1024}KB, {c.assoc}-way, "
            f"{c.line_bytes}B lines, hit={self.stats.hit_rate:.3f})"
        )

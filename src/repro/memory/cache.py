"""A set-associative cache with true-LRU replacement.

The implementation favours access speed in pure Python: each set is a
contiguous slice of a flat tag list, MRU-ordered so a hit is usually found
in the first one or two comparisons and LRU eviction is just the last slot.
State is snapshotable for checkpoint/livepoint support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..config import CacheConfig
from ..errors import SnapshotError

__all__ = ["Cache", "CacheStats"]

#: Sentinel tag meaning "way is empty".
_EMPTY = -1


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache."""

    accesses: int = 0
    hits: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        """Number of accesses that missed."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.hits = 0
        self.writebacks = 0


class Cache:
    """Set-associative, write-back, write-allocate cache with LRU.

    Args:
        config: geometry and latency.
        name: label used in stats reporting.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._line_shift = config.line_bytes.bit_length() - 1
        self._n_sets = config.n_sets
        self._set_mask = self._n_sets - 1
        self._power_of_two_sets = (self._n_sets & (self._n_sets - 1)) == 0
        self._assoc = config.assoc
        # Flat MRU-ordered storage: set s occupies slots [s*assoc, (s+1)*assoc).
        self._tags: List[int] = [_EMPTY] * (self._n_sets * self._assoc)
        self._dirty: List[bool] = [False] * (self._n_sets * self._assoc)
        self.stats = CacheStats()

    @property
    def hit_latency(self) -> int:
        """Cycles to service a hit at this level."""
        return self.config.hit_latency

    def _set_index(self, line: int) -> int:
        if self._power_of_two_sets:
            return line & self._set_mask
        return line % self._n_sets

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up *addr*; allocate on miss.  Returns True on hit.

        A miss evicts the LRU way; if the victim is dirty a writeback is
        counted.  The caller (the hierarchy) is responsible for propagating
        the miss to the next level.
        """
        line = addr >> self._line_shift
        base = self._set_index(line) * self._assoc
        tags = self._tags
        dirty = self._dirty
        stats = self.stats
        stats.accesses += 1
        end = base + self._assoc
        for i in range(base, end):
            if tags[i] == line:
                stats.hits += 1
                # Move to MRU position.
                if i != base:
                    tag = tags[i]
                    d = dirty[i]
                    del tags[i]
                    del dirty[i]
                    tags.insert(base, tag)
                    dirty.insert(base, d)
                if is_write:
                    dirty[base] = True
                return True
        # Miss: evict LRU (last slot of the set).
        if dirty[end - 1] and tags[end - 1] != _EMPTY:
            stats.writebacks += 1
        del tags[end - 1]
        del dirty[end - 1]
        tags.insert(base, line)
        dirty.insert(base, is_write)
        return False

    def contains(self, addr: int) -> bool:
        """Return True if *addr*'s line is resident (no state change)."""
        line = addr >> self._line_shift
        base = self._set_index(line) * self._assoc
        return line in self._tags[base : base + self._assoc]

    def flush(self) -> None:
        """Invalidate every line and clear dirty bits (stats survive)."""
        n = self._n_sets * self._assoc
        self._tags = [_EMPTY] * n
        self._dirty = [False] * n

    def snapshot(self) -> Tuple[List[int], List[bool]]:
        """Return a copy of the tag/dirty state for checkpointing."""
        return (list(self._tags), list(self._dirty))

    def restore(self, state: Tuple[List[int], List[bool]]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        tags, dirty = state
        if len(tags) != self._n_sets * self._assoc:
            raise SnapshotError("snapshot geometry does not match this cache")
        self._tags = list(tags)
        self._dirty = list(dirty)

    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for t in self._tags if t != _EMPTY)

    def __repr__(self) -> str:
        c = self.config
        return (
            f"Cache({self.name}: {c.size_bytes // 1024}KB, {c.assoc}-way, "
            f"{c.line_bytes}B lines, hit={self.stats.hit_rate:.3f})"
        )

"""Cache models: a set-associative LRU cache and a two-level hierarchy.

The hierarchy mirrors the paper's evaluation machine: split 4-way 64 KB
first-level instruction and data caches backed by a unified 1 MB L2.
"""

from .cache import Cache, CacheStats
from .hierarchy import AccessResult, CacheHierarchy

__all__ = ["Cache", "CacheStats", "AccessResult", "CacheHierarchy"]

"""Two-level cache hierarchy with split L1 and unified L2.

Latency semantics follow the usual inclusive look-through model: an L1 hit
costs the L1 hit latency, an L1 miss that hits in L2 costs L1 + L2 latency,
and an L2 miss additionally pays the memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..config import MachineConfig
from ..program.mem_patterns import PatternKind
from .cache import Cache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..program.mem_patterns import MemPattern

__all__ = ["AccessResult", "CacheHierarchy"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access.

    Attributes:
        latency: total cycles to satisfy the access.
        level: 1 for an L1 hit, 2 for an L2 hit, 3 for main memory.
    """

    latency: int
    level: int


class CacheHierarchy:
    """Split L1 I/D caches backed by a unified L2 and main memory.

    The hierarchy exposes two call styles:

    * :meth:`access_data` / :meth:`access_inst` — full result objects,
      used by tests and tooling;
    * :meth:`data_latency` / :meth:`inst_latency` — bare integer latencies,
      used by the pipeline's hot loop.
    """

    def __init__(
        self,
        machine: MachineConfig,
        shared_l2: Optional[Cache] = None,
        address_salt: int = 0,
    ) -> None:
        """Build the hierarchy.

        Args:
            machine: cache geometry and latencies.
            shared_l2: when given, this L2 instance is used instead of a
                private one — the chip-multiprocessor configuration where
                several cores' private L1s share one L2 (paper Section 5:
                the simulated core "is meant to be roughly representative
                of a single core on a modern chip multiprocessor").
            address_salt: high-bit XOR salt applied to every address —
                models distinct physical address spaces per core so two
                programs built from the same generator do not falsely
                share lines in the shared L2.  Must only set bits above
                any generated address (the default core salts use
                bit 36+), so private-cache behaviour is unchanged.
        """
        self.machine = machine
        self.l1i = Cache(machine.l1i, "L1I")
        self.l1d = Cache(machine.l1d, "L1D")
        self.l2 = shared_l2 if shared_l2 is not None else Cache(machine.l2, "L2")
        self.memory_accesses = 0
        self._salt = address_salt

    @property
    def address_salt(self) -> int:
        """The per-core address salt XORed into every access."""
        return self._salt

    def data_latency(self, addr: int, is_write: bool = False) -> int:
        """Access the data side; return total latency in cycles."""
        addr ^= self._salt
        lat = self.l1d.hit_latency
        if self.l1d.access(addr, is_write):
            return lat
        lat += self.l2.hit_latency
        if self.l2.access(addr, is_write):
            return lat
        self.memory_accesses += 1
        return lat + self.machine.memory_latency

    def inst_latency(self, addr: int) -> int:
        """Access the instruction side; return total latency in cycles."""
        addr ^= self._salt
        lat = self.l1i.hit_latency
        if self.l1i.access(addr):
            return lat
        lat += self.l2.hit_latency
        if self.l2.access(addr):
            return lat
        self.memory_accesses += 1
        return lat + self.machine.memory_latency

    def access_data(self, addr: int, is_write: bool = False) -> AccessResult:
        """Access the data side; return latency and the servicing level."""
        before_l2 = self.l2.stats.hits
        before_l1 = self.l1d.stats.hits
        lat = self.data_latency(addr, is_write)
        if self.l1d.stats.hits > before_l1:
            return AccessResult(lat, 1)
        if self.l2.stats.hits > before_l2:
            return AccessResult(lat, 2)
        return AccessResult(lat, 3)

    def access_inst(self, addr: int) -> AccessResult:
        """Access the instruction side; return latency and servicing level."""
        before_l2 = self.l2.stats.hits
        before_l1 = self.l1i.stats.hits
        lat = self.inst_latency(addr)
        if self.l1i.stats.hits > before_l1:
            return AccessResult(lat, 1)
        if self.l2.stats.hits > before_l2:
            return AccessResult(lat, 2)
        return AccessResult(lat, 3)

    def data_silent_hit(self, addr: int, is_write: bool = False) -> bool:
        """Would a data access at *addr* be an L1 hit with no state change?

        A silent L1 hit never reaches the L2, so it is the condition under
        which a data access leaves the entire hierarchy byte-identical
        (counters aside) — see :meth:`Cache.is_silent_hit`.
        """
        return self.l1d.is_silent_hit(addr ^ self._salt, is_write)

    def silent_data_span(self, pattern: "MemPattern", k_start: int, limit: int) -> int:
        """How many consecutive executions of *pattern* stay silent?

        Returns the largest ``m <= limit`` such that the accesses for
        ``k in [k_start, k_start + m)`` would all be silent L1 hits
        (:meth:`data_silent_hit`) against the *current* data-cache state.
        Because silent accesses change no state, the answer is valid for
        the whole span at once — the memory-side steadiness probe of the
        detailed pipeline's closed-form fast path.

        Strided patterns are probed one cache line at a time (consecutive
        executions sharing a line are vouched for together); hashed
        patterns are probed per execution, after a fast rejection when
        their footprint cannot possibly be L1-resident.
        """
        if limit <= 0:
            return 0
        kind = pattern.kind
        l1d = self.l1d
        if kind is PatternKind.STREAM or kind is PatternKind.REUSE:
            return l1d.silent_span_strided(
                pattern.base,
                pattern.stride,
                pattern.span,
                k_start,
                limit,
                pattern.is_write,
                self._salt,
            )
        # RANDOM / CHASE: scattered addresses.  A footprint larger than the
        # L1 cannot be fully resident, so the span is zero without probing.
        if pattern.span > l1d.config.size_bytes:
            return 0
        return l1d.silent_span_hashed(
            pattern.address, k_start, limit, pattern.is_write, self._salt
        )

    def warm_data(self, addr: int, is_write: bool = False) -> None:
        """Touch the data side without caring about latency (warming mode)."""
        addr ^= self._salt
        if not self.l1d.access(addr, is_write):
            if not self.l2.access(addr, is_write):
                self.memory_accesses += 1

    def warm_inst(self, addr: int) -> None:
        """Touch the instruction side without caring about latency."""
        addr ^= self._salt
        if not self.l1i.access(addr):
            if not self.l2.access(addr):
                self.memory_accesses += 1

    def flush(self) -> None:
        """Invalidate all three caches."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()

    def reset_stats(self) -> None:
        """Zero the counters of all three caches."""
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()
        self.memory_accesses = 0

    def snapshot(self) -> Dict[str, Any]:
        """Capture all cache contents for checkpointing."""
        return {
            "l1i": self.l1i.snapshot(),
            "l1d": self.l1d.snapshot(),
            "l2": self.l2.snapshot(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore contents captured by :meth:`snapshot`."""
        self.l1i.restore(state["l1i"])
        self.l1d.restore(state["l1d"])
        self.l2.restore(state["l2"])

    def stats_summary(self) -> Dict[str, Tuple[int, int]]:
        """Per-level (accesses, hits) pairs, keyed by cache name."""
        return {
            c.name: (c.stats.accesses, c.stats.hits)
            for c in (self.l1i, self.l1d, self.l2)
        }

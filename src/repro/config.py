"""Configuration objects shared across the framework.

Two kinds of configuration live here:

* :class:`MachineConfig` — the simulated machine (paper Section 5: a 4-wide
  in-order superscalar with a split 4-way 64 KB L1 and a unified 1 MB L2).
* :class:`ScaleConfig` — the interval-length parameter set.  The paper runs
  SPEC2000 for billions of operations; a pure-Python reproduction scales all
  interval lengths down uniformly so that the *comparative* results (who
  wins, by what factor) are preserved.  ``Scale.PAPER`` keeps the paper's
  literal values, ``Scale.SCALED`` is the default used by the experiment
  harness, and ``Scale.QUICK`` is a miniature used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from .errors import ConfigurationError

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "SampleBudget",
    "ScaleConfig",
    "Scale",
    "DEFAULT_MACHINE",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of a single cache level.

    Attributes:
        size_bytes: total capacity in bytes.
        assoc: number of ways per set.
        line_bytes: cache line size in bytes (must be a power of two).
        hit_latency: cycles to satisfy a hit at this level.
    """

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache dimensions must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("line_bytes must be a power of two")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigurationError(
                "size_bytes must be a multiple of assoc * line_bytes"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets implied by the geometry."""
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """The simulated processor, mirroring the paper's evaluation machine.

    The paper simulates a 4-wide issue, superscalar, in-order processor with
    a split first-level cache (4-way associative, 64 KB each for data and
    instructions) and a 1 MB unified L2.
    """

    issue_width: int = 4
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, 4))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, 4))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 8, hit_latency=10)
    )
    memory_latency: int = 80
    mispredict_penalty: int = 8
    branch_history_bits: int = 12
    n_mshrs: int = 4

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigurationError("issue_width must be positive")
        if self.memory_latency <= 0 or self.mispredict_penalty < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.n_mshrs < 1:
            raise ConfigurationError("n_mshrs must be at least 1")

    def scaled_cache(self, l1_kb: int, l2_kb: int) -> "MachineConfig":
        """Return a copy with resized caches (used by design-space studies)."""
        return replace(
            self,
            l1i=replace(self.l1i, size_bytes=l1_kb * 1024),
            l1d=replace(self.l1d, size_bytes=l1_kb * 1024),
            l2=replace(self.l2, size_bytes=l2_kb * 1024),
        )


DEFAULT_MACHINE = MachineConfig()


@dataclass(frozen=True)
class SampleBudget:
    """The per-sample cost/precision contract shared by the sampling
    techniques.

    SMARTS, TurboSMARTS, and PGSS all take detailed samples of the same
    shape — ``warmup_ops`` of detailed warming followed by ``detail_ops``
    of measured detailed simulation — and the confidence-driven ones stop
    at the same ``rel_error`` @ ``confidence`` target.  Each technique's
    ``from_scale`` constructor reads this one object (via
    :attr:`ScaleConfig.sample_budget`) instead of cherry-picking scale
    fields, so the paper's Table 1 values cannot drift apart between
    techniques.

    Attributes:
        detail_ops: measured detailed-sample length (paper: 1000).
        warmup_ops: detailed warming before each sample (paper: ~3000).
        rel_error: relative CI half-width target (paper: 3%).
        confidence: confidence level (paper: 99.7%).
        pilot_per_stratum: stage-1 pilot samples per stratum for the
            two-phase (stratified) techniques — the cheap variance probe
            that Neyman allocation divides the remaining budget by.
        stage2_samples: total detailed-sample budget the two-phase
            techniques split across strata (pilots included).
    """

    detail_ops: int
    warmup_ops: int
    rel_error: float
    confidence: float
    pilot_per_stratum: int = 2
    stage2_samples: int = 24

    def __post_init__(self) -> None:
        if self.detail_ops <= 0 or self.warmup_ops < 0:
            raise ConfigurationError("sample lengths must be positive")
        if self.rel_error <= 0:
            raise ConfigurationError("rel_error must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        if self.pilot_per_stratum < 1:
            raise ConfigurationError("pilot_per_stratum must be at least 1")
        if self.stage2_samples < 1:
            raise ConfigurationError("stage2_samples must be at least 1")

    @property
    def ops_per_sample(self) -> int:
        """Detailed ops one sample costs (warming + measurement)."""
        return self.detail_ops + self.warmup_ops


@dataclass(frozen=True)
class ScaleConfig:
    """Interval-length parameter set for the sampling techniques.

    All lengths are in dynamic operations.  The mapping from the paper's
    values to the scaled defaults is documented in DESIGN.md ("Scaling map").

    Attributes:
        name: identifier used in result caching.
        benchmark_ops: target dynamic length of each synthetic benchmark.
        smarts_detail: SMARTS measured-sample length (paper: 1000).
        smarts_warmup: detailed-warming length before each sample
            (paper: 3000-4000; the paper counts "approximately four thousand
            instructions per sample" of warm+detail).
        smarts_period: functional fast-forward length between SMARTS samples
            (paper: ~1M).
        pgss_periods: BBV sampling periods swept in Fig. 11
            (paper: 100k / 1M / 10M).
        pgss_best_period: the paper's best overall period (1M).
        pgss_spread: minimum ops between two detailed samples inside one
            phase (paper: 1M).
        thresholds: BBV angle thresholds swept, as fractions of pi
            (paper: .05-.25).
        simpoint_intervals: SimPoint interval sizes (paper: 1M / 10M / 100M).
        simpoint_clusters: cluster counts tried per interval size
            (paper: 5 / 10 / 20).
        simpoint_extra: the paper's two extra configurations
            (30 clusters x 10M and 300 clusters x 1M), expressed as
            (n_clusters, interval) pairs in scaled units.
        turbo_confidence: TurboSMARTS confidence level (paper: 99.7%).
        turbo_rel_error: TurboSMARTS relative error target (paper: 3%).
        trace_window: window length (ops) of the instrumented reference
            trace used by the offline analyses (Figs. 2, 3, 7-10) and by
            SimPoint's profiling pass.  All interval sizes above must be
            multiples of this.
        stratified_pilot: stage-1 pilot samples per stratum for the
            two-phase stratified technique (variance probe).
        stratified_samples: total detailed-sample budget of the
            stage-1/stage-2 split techniques (pilots included).
        phase_signal: default phase-signal family of the phase-guided
            techniques (``"bbv"``, ``"mav"``, or ``"concat"``); the
            signal-ablation experiment overrides this per cell.
    """

    name: str
    benchmark_ops: int
    smarts_detail: int
    smarts_warmup: int
    smarts_period: int
    pgss_periods: Tuple[int, ...]
    pgss_best_period: int
    pgss_spread: int
    thresholds: Tuple[float, ...] = (0.05, 0.10, 0.15, 0.20, 0.25)
    simpoint_intervals: Tuple[int, ...] = ()
    simpoint_clusters: Tuple[int, ...] = (5, 10, 20)
    simpoint_extra: Tuple[Tuple[int, int], ...] = ()
    turbo_confidence: float = 0.997
    turbo_rel_error: float = 0.03
    trace_window: int = 5_000
    stratified_pilot: int = 2
    stratified_samples: int = 24
    phase_signal: str = "bbv"

    def __post_init__(self) -> None:
        # Mirrors repro.signals.PHASE_SIGNALS (importing it here would
        # cycle through repro.program).
        if self.phase_signal not in ("bbv", "mav", "concat"):
            raise ConfigurationError(
                f"phase_signal must be 'bbv', 'mav', or 'concat', "
                f"got {self.phase_signal!r}"
            )
        if self.benchmark_ops <= 0:
            raise ConfigurationError("benchmark_ops must be positive")
        if self.smarts_detail <= 0 or self.smarts_warmup < 0:
            raise ConfigurationError("SMARTS sample lengths must be positive")
        if not self.pgss_periods:
            raise ConfigurationError("at least one PGSS period is required")
        if not 0.0 < self.turbo_confidence < 1.0:
            raise ConfigurationError("turbo_confidence must be in (0, 1)")
        if self.trace_window <= 0:
            raise ConfigurationError("trace_window must be positive")
        for interval in tuple(self.simpoint_intervals) + tuple(self.pgss_periods):
            if interval % self.trace_window:
                raise ConfigurationError(
                    f"interval {interval} is not a multiple of the "
                    f"{self.trace_window}-op trace window"
                )

    @property
    def sample_budget(self) -> SampleBudget:
        """The scale's per-sample cost/precision contract.

        The single source every technique's ``from_scale`` constructor
        derives its sample shape and confidence target from.
        """
        return SampleBudget(
            detail_ops=self.smarts_detail,
            warmup_ops=self.smarts_warmup,
            rel_error=self.turbo_rel_error,
            confidence=self.turbo_confidence,
            pilot_per_stratum=self.stratified_pilot,
            stage2_samples=self.stratified_samples,
        )


class Scale:
    """The three predefined :class:`ScaleConfig` instances.

    ``PAPER`` uses the paper's literal interval lengths (only practical for
    users with hours of patience); ``SCALED`` is the default used by the
    benchmark harness; ``QUICK`` is a miniature for unit tests.
    """

    PAPER = ScaleConfig(
        name="paper",
        benchmark_ops=2_000_000_000,
        smarts_detail=1_000,
        smarts_warmup=3_000,
        smarts_period=1_000_000,
        pgss_periods=(100_000, 1_000_000, 10_000_000),
        pgss_best_period=1_000_000,
        pgss_spread=1_000_000,
        simpoint_intervals=(1_000_000, 10_000_000, 100_000_000),
        simpoint_extra=((30, 10_000_000), (300, 1_000_000)),
        trace_window=100_000,
        stratified_pilot=3,
        stratified_samples=100,
    )

    SCALED = ScaleConfig(
        name="scaled",
        benchmark_ops=6_000_000,
        smarts_detail=1_000,
        smarts_warmup=2_000,
        smarts_period=30_000,
        pgss_periods=(20_000, 80_000, 320_000),
        pgss_best_period=80_000,
        pgss_spread=160_000,
        simpoint_intervals=(30_000, 80_000, 320_000),
        simpoint_extra=((30, 80_000), (100, 30_000)),
        # The paper's 3% @ 99.7% target presumes a ~200k-sample universe;
        # the scaled universe is ~1000x smaller, so the relative-error
        # target is relaxed to keep the *fraction* of the universe that
        # TurboSMARTS consumes comparable (see DESIGN.md).
        turbo_rel_error=0.10,
        trace_window=5_000,
        stratified_pilot=2,
        stratified_samples=40,
    )

    QUICK = ScaleConfig(
        name="quick",
        benchmark_ops=300_000,
        smarts_detail=500,
        smarts_warmup=500,
        smarts_period=6_000,
        pgss_periods=(4_000, 8_000, 24_000),
        pgss_best_period=8_000,
        pgss_spread=24_000,
        simpoint_intervals=(8_000, 24_000, 48_000),
        simpoint_clusters=(3, 5, 8),
        simpoint_extra=(),
        trace_window=1_000,
        stratified_pilot=2,
        stratified_samples=16,
    )

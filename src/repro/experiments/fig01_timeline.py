"""Figure 1: where each technique spends its detailed simulation.

The paper's Figure 1 is an illustration: SMARTS takes small periodic
samples regardless of phase, SimPoint takes one large sample per phase,
and PGSS uses phase information to decide where small samples go.  This
experiment regenerates that picture *from real runs* — the true phase
script, the actual sample positions of SMARTS and PGSS, and SimPoint's
chosen representative intervals, rendered as aligned ASCII timelines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..cpu import SimulationEngine
from ..events import EventBus, SampleTaken
from ..sampling.pgss import Pgss, PgssConfig, PgssController
from ..sampling.simpoint import SimPoint, SimPointConfig
from ..sampling.smarts import Smarts, SmartsConfig
from .cells import ExperimentCell, trace_cell
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "BENCHMARK", "TIMELINE_COLS"]

BENCHMARK = "183.equake"
TIMELINE_COLS = 96


def _mark_positions(
    offsets: Sequence[int], total_ops: int, cols: int = TIMELINE_COLS
) -> str:
    line = ["."] * cols
    for offset in offsets:
        col = min(int(offset / total_ops * cols), cols - 1)
        line[col] = "|"
    return "".join(line)


def _mark_intervals(
    spans: Sequence[tuple], total_ops: int, cols: int = TIMELINE_COLS
) -> str:
    line = ["."] * cols
    for start, end in spans:
        lo = min(int(start / total_ops * cols), cols - 1)
        hi = min(int(end / total_ops * cols), cols - 1)
        for col in range(lo, hi + 1):
            line[col] = "#"
    return "".join(line)


def _phase_line(ctx: ExperimentContext, benchmark: str, total_ops: int) -> str:
    program = ctx.program(benchmark)
    names = sorted({segment.behavior for segment in program.script})
    letters = {name: chr(ord("A") + i) for i, name in enumerate(names)}
    line = []
    for col in range(TIMELINE_COLS):
        op = int((col + 0.5) / TIMELINE_COLS * total_ops)
        line.append(letters[program.true_phase_at(op)])
    return "".join(line), {letters[n]: n for n in names}


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: the subject benchmark's reference trace."""
    return [trace_cell(BENCHMARK)]


@figure_entry
def run(ctx: ExperimentContext, benchmark: str = BENCHMARK) -> Dict[str, Any]:
    """Collect real sample positions for the three techniques."""
    scale = ctx.scale
    total_ops = scale.benchmark_ops

    # Sample positions are observed through the session event bus — the
    # same stream the CLI's --progress mode watches — rather than by
    # reaching into technique internals.
    smarts_offsets: List[int] = []
    smarts_bus = EventBus()
    smarts_bus.subscribe(
        SampleTaken, lambda e: smarts_offsets.append(e.op_offset)
    )
    smarts_cfg = SmartsConfig.from_scale(scale)
    Smarts(smarts_cfg, ctx.machine).collect_samples(
        ctx.program(benchmark), bus=smarts_bus
    )

    sp_cfg = SimPointConfig(scale.simpoint_intervals[-1], 5)
    trace = ctx.trace(benchmark)
    sp_result = SimPoint(sp_cfg, ctx.machine).run(
        ctx.program(benchmark), trace=trace
    )
    intervals = trace.to_period(sp_cfg.interval_ops)
    cum = [0]
    for ops in intervals.ops:
        cum.append(cum[-1] + int(ops))
    # Recover representative interval indices from the weights extras is
    # indirect; recompute the clustering choice cheaply instead.
    from ..clustering import kmeans

    clustering = kmeans(
        intervals.normalized_bbvs(), sp_cfg.n_clusters, seed=sp_cfg.seed
    )
    reps = [int(r) for r in clustering.representative_indices() if r >= 0]
    sp_spans = [(cum[r], cum[r + 1]) for r in reps]

    pgss_offsets: List[int] = []
    pgss_bus = EventBus()
    pgss_bus.subscribe(SampleTaken, lambda e: pgss_offsets.append(e.op_offset))
    pgss_tech = Pgss(PgssConfig.from_scale(scale), machine=ctx.machine)
    engine = SimulationEngine(
        ctx.program(benchmark),
        machine=ctx.machine,
        bbv_tracker=pgss_tech._make_tracker(),
    )
    controller = PgssController(engine, pgss_tech.config, bus=pgss_bus)
    controller.run()

    phase_line, legend = _phase_line(ctx, benchmark, total_ops)
    return {
        "benchmark": benchmark,
        "total_ops": total_ops,
        "phase_line": phase_line,
        "legend": legend,
        "smarts_offsets": smarts_offsets,
        "simpoint_spans": sp_spans,
        "pgss_offsets": pgss_offsets,
        "n_smarts": len(smarts_offsets),
        "n_simpoint": len(sp_spans),
        "n_pgss": len(pgss_offsets),
        "simpoint_error_pct": sp_result.percent_error(trace.true_ipc),
    }


def format_result(result: Dict[str, Any]) -> str:
    """The Fig.-1 timelines, aligned over the program's phase script."""
    total = result["total_ops"]
    lines: List[str] = [
        f"Figure 1 — detailed-sampling timelines, {result['benchmark']} "
        f"({total:,} ops across {TIMELINE_COLS} columns)",
        "",
        f"phases   {result['phase_line']}",
        f"SMARTS   {_mark_positions(result['smarts_offsets'], total)}"
        f"  ({result['n_smarts']} samples)",
        f"SimPoint {_mark_intervals(result['simpoint_spans'], total)}"
        f"  ({result['n_simpoint']} intervals)",
        f"PGSS     {_mark_positions(result['pgss_offsets'], total)}"
        f"  ({result['n_pgss']} samples)",
        "",
        "legend: " + ", ".join(f"{k}={v}" for k, v in result["legend"].items()),
    ]
    return "\n".join(lines)

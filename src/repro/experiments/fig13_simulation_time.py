"""Figure 13: simulation rates per mode and total simulation time.

Two parts, mirroring the paper's figure:

* the measured simulation rate of every execution mode, with and without
  BBV tracking (the paper: BBV overhead is ~1% on detailed modes and
  negligible on functional warming);
* the total simulation time of every technique family in Figure 12 —
  FullDetail, SMARTS, TurboSMARTS, SimPoint, Online SimPoint, PGSS-Sim,
  two-phase stratified, and ranked-set — for the whole benchmark suite,
  composed from each technique's per-mode operation counts and the
  measured rates (no checkpointing, as in the paper).

The paper also notes its fast-forwarding is "only approximately four times
faster than detailed simulation", which caps the wall-clock advantage of
reduced detail; the measured ratio here is reported for comparison.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..signals import BbvTracker
from ..cpu import Mode, SimulationEngine
from ..errors import OrchestrationError
from ..sampling.smarts import SmartsConfig
from .cells import ExperimentCell
from .fig11_pgss_sweep import run_single as pgss_run_single
from .fig12_technique_comparison import cells as fig12_cells
from .fig12_technique_comparison import run as run_fig12
from .formatting import table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "run_cell", "measure_rates"]

#: Workload and op budget used for rate calibration.
RATE_BENCHMARK = "164.gzip"
RATE_OPS = 600_000


def measure_rates(ctx: ExperimentContext) -> Dict[str, float]:
    """Measure ops/second for each mode, with and without BBV tracking.

    The functional modes run through the batched fast-forward engine (the
    production default); ``func_fast_scalar`` rows re-measure FUNC_FAST
    with batching disabled, so the table carries the scalar-vs-batched
    speedup alongside the paper's mode comparison.
    """

    def one(mode: Mode, with_bbv: bool, batched: bool = True) -> float:
        program = ctx.program(RATE_BENCHMARK)
        tracker = BbvTracker() if with_bbv else None
        engine = SimulationEngine(
            program, machine=ctx.machine, bbv_tracker=tracker,
            batched=None if batched else False,
        )
        # Warm the interpreter and caches briefly before timing.
        engine.run(mode, RATE_OPS // 10)
        # Timing measures simulator throughput for the figure; it never
        # influences simulated state.
        start = time.perf_counter()  # simlint: disable=DET005
        run = engine.run(mode, RATE_OPS)
        elapsed = time.perf_counter() - start  # simlint: disable=DET005
        return run.ops / elapsed if elapsed > 0 else 0.0

    rates: Dict[str, float] = {}
    for mode in (Mode.FUNC_FAST, Mode.FUNC_WARM, Mode.DETAIL_WARM, Mode.DETAIL):
        for with_bbv in (False, True):
            key = f"{mode.value}{'+bbv' if with_bbv else ''}"
            rates[key] = one(mode, with_bbv)
    for with_bbv in (False, True):
        key = f"func_fast_scalar{'+bbv' if with_bbv else ''}"
        rates[key] = one(Mode.FUNC_FAST, with_bbv, batched=False)
    return rates


def _cached_rates(ctx: ExperimentContext) -> Dict[str, float]:
    """The cached per-mode rate table (measured once per cache lifetime).

    Rates are host-time measurements, so unlike every other cell they are
    not reproducible across cache-cleared runs — but caching the single
    measurement means every consumer (serial or parallel, any job count)
    reads the same numbers.
    """
    return ctx.cache.json(
        {"kind": "rates", "scale": ctx.scale.name, "ops": RATE_OPS,
         "engine": "batched"},
        lambda: measure_rates(ctx),
    )


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """The rate-calibration cell plus everything Figure 12 needs."""
    out = [
        ExperimentCell.make("fig13_simulation_time", RATE_BENCHMARK, unit="rates")
    ]
    out.extend(fig12_cells(ctx))
    return out


def run_cell(ctx: ExperimentContext, benchmark: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Parallel-driver entry: the cached rate measurement."""
    if params.get("unit") == "rates":
        return _cached_rates(ctx)
    raise OrchestrationError(f"unknown fig13 cell params {params!r}")


def _technique_times(
    ctx: ExperimentContext, rates: Dict[str, float], fig12: Dict[str, Any]
) -> Dict[str, Dict[str, float]]:
    """Compose per-technique total times from op counts and rates."""
    suite_ops = sum(ctx.trace(b).total_ops for b in ctx.benchmarks)
    smarts_cfg = SmartsConfig.from_scale(ctx.scale)
    times: Dict[str, Dict[str, float]] = {}

    def smarts_shaped_split(detail_total: float) -> Dict[str, float]:
        """Split SMARTS-shaped detailed ops into warming and measurement."""
        n_samples = detail_total / (smarts_cfg.detail_ops + smarts_cfg.warmup_ops)
        measure = n_samples * smarts_cfg.detail_ops
        return {"measure": measure, "warm": detail_total - measure}

    # Full detail: the whole suite in detailed mode, nothing else.
    times["FullDetail"] = {"detail": suite_ops / rates["detail"]}

    # SMARTS: functional warming between samples (no BBV), detailed
    # warming + detail per sample.
    smarts = fig12["SMARTS"]
    detail_ops = sum(smarts["detailed_ops"].values())
    split = smarts_shaped_split(detail_ops)
    ff_ops = suite_ops - detail_ops
    times["SMARTS"] = {
        "ff": ff_ops / rates["func_warm"],
        "warm": split["warm"] / rates["detail_warm"],
        "detail": split["measure"] / rates["detail"],
    }

    # TurboSMARTS: same per-sample shape as SMARTS, fewer samples (the
    # confidence-target budget from Fig. 12).
    turbo = fig12["TurboSMARTS"]
    turbo_detail = sum(turbo["detailed_ops"].values())
    turbo_split = smarts_shaped_split(turbo_detail)
    times["TurboSMARTS"] = {
        "ff": (suite_ops - turbo_detail) / rates["func_warm"],
        "warm": turbo_split["warm"] / rates["detail_warm"],
        "detail": turbo_split["measure"] / rates["detail"],
    }

    # SimPoint (best overall config): one profiling pass with BBV, one
    # simulation pass skipping to each representative, detail per point.
    sp = fig12["SimPoint"]["best_overall"]
    sp_detail = sum(sp["detailed_ops"].values())
    times["SimPoint"] = {
        "profile": suite_ops / rates["func_fast+bbv"],
        "ff": (suite_ops - sp_detail) / rates["func_fast"],
        "detail": sp_detail / rates["detail"],
    }

    # Online SimPoint (best overall): single pass, BBV tracked throughout.
    olsp = fig12["OnlineSimPoint"]["best_overall"]
    olsp_detail = sum(olsp["detailed_ops"].values())
    times["OnlineSimPoint"] = {
        "ff": (suite_ops - olsp_detail) / rates["func_fast+bbv"],
        "detail": olsp_detail / rates["detail+bbv"],
    }

    # PGSS (best overall): functional warming with BBV, detailed warming +
    # detail per sample (BBV stays on).
    pgss = fig12["PGSS"]["best_overall"]
    pgss_detail_total = sum(pgss["detailed_ops"].values())
    # Detail/warming split mirrors SMARTS sample structure.
    pgss_measure = pgss_detail_total * smarts_cfg.detail_ops / (
        smarts_cfg.detail_ops + smarts_cfg.warmup_ops
    )
    pgss_warm = pgss_detail_total - pgss_measure
    times["PGSS"] = {
        "ff": (suite_ops - pgss_detail_total) / rates["func_warm+bbv"],
        "warm": pgss_warm / rates["detail_warm+bbv"],
        "detail": pgss_measure / rates["detail+bbv"],
    }

    # Two-phase stratified: a FUNC_FAST+BBV stage-1 profile of the whole
    # suite, then pilot + stage-2 measurement passes that re-walk the
    # suite functionally warm around their detailed samples.
    strat = fig12["Stratified"]
    strat_detail = sum(strat["detailed_ops"].values())
    strat_split = smarts_shaped_split(strat_detail)
    times["Stratified"] = {
        "profile": suite_ops / rates["func_fast+bbv"],
        "ff": (2 * suite_ops - strat_detail) / rates["func_warm"],
        "warm": strat_split["warm"] / rates["detail_warm"],
        "detail": strat_split["measure"] / rates["detail"],
    }

    # Ranked set: one functionally-warm ranking pass over the suite, then
    # a functionally-warm measurement pass with detail per selected rank.
    ranked = fig12["RankedSet"]
    ranked_detail = sum(ranked["detailed_ops"].values())
    ranked_split = smarts_shaped_split(ranked_detail)
    times["RankedSet"] = {
        "ff": (2 * suite_ops - ranked_detail) / rates["func_warm"],
        "warm": ranked_split["warm"] / rates["detail_warm"],
        "detail": ranked_split["measure"] / rates["detail"],
    }
    return times


@figure_entry
def run(ctx: ExperimentContext) -> Dict[str, Any]:
    """Measure rates and compose suite-level simulation times."""
    rates = _cached_rates(ctx)
    fig12 = run_fig12(ctx)
    times = _technique_times(ctx, rates, fig12)
    detail_ratio = rates["func_warm"] / rates["detail"] if rates["detail"] else 0.0
    bbv_overhead_detail = (
        1.0 - rates["detail+bbv"] / rates["detail"] if rates["detail"] else 0.0
    )
    batched_speedup = (
        rates["func_fast+bbv"] / rates["func_fast_scalar+bbv"]
        if rates.get("func_fast_scalar+bbv")
        else 0.0
    )
    pgss_detail_seconds = times["PGSS"]["warm"] + times["PGSS"]["detail"]
    return {
        "rates": rates,
        "times": {t: dict(parts) for t, parts in times.items()},
        "totals": {t: sum(parts.values()) for t, parts in times.items()},
        "ff_vs_detail_ratio": detail_ratio,
        "bbv_overhead_detail": bbv_overhead_detail,
        "batched_speedup": batched_speedup,
        "pgss_detail_seconds": pgss_detail_seconds,
    }


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-13 tables: per-mode rates and per-technique totals."""
    rate_rows: List[List[str]] = []
    label = {
        "func_fast": "Fast-Forward (batched)",
        "func_fast_scalar": "Fast-Forward (scalar)",
        "func_warm": "Functional Fast-Forward",
        "detail_warm": "Detailed Warming",
        "detail": "Detailed Simulation",
    }
    for key in ("func_fast", "func_fast_scalar", "func_warm", "detail_warm", "detail"):
        rate_rows.append(
            [
                label[key],
                f"{result['rates'][key] / 1e3:,.0f} kops/s",
                f"{result['rates'][key + '+bbv'] / 1e3:,.0f} kops/s",
            ]
        )
    time_rows = [
        [tech, f"{total:,.1f} s"]
        + [f"{result['times'][tech].get(part, 0.0):,.1f}" for part in ("ff", "warm", "detail")]
        for tech, total in result["totals"].items()
    ]
    header = (
        "Figure 13 — measured simulation rates and total suite times "
        "(no checkpointing)\n"
        f"functional warming is {result['ff_vs_detail_ratio']:.1f}x faster "
        f"than detail (paper: ~4x); BBV overhead on detail: "
        f"{100 * result['bbv_overhead_detail']:.1f}%\n"
        f"batched fast-forward (with BBV) is "
        f"{result.get('batched_speedup', 0.0):.1f}x the scalar event loop\n"
        f"PGSS combined detailed warming + simulation: "
        f"{result['pgss_detail_seconds']:.2f} s for the whole suite\n\n"
    )
    return (
        header
        + table(["mode", "w/o BBV", "with BBV"], rate_rows)
        + "\n\n"
        + table(["technique", "total", "ff(s)", "warm(s)", "detail(s)"], time_rows)
    )

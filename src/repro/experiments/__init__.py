"""Experiment harness: one module per reproduced figure.

The paper's evaluation consists of Figures 2-13 (there are no numbered
tables).  Each ``figNN_*`` module exposes:

* ``run(ctx)`` — compute the figure's data, returning a plain dict;
* ``format_result(result)`` — render the same rows/series the paper
  reports, as text;
* ``cells(ctx)`` — the figure's independent cacheable work units, for
  the parallel driver (plus ``run_cell`` where the units are more than
  trace warming).

All experiments share an :class:`ExperimentContext`, which owns the scale
configuration and an on-disk result cache (reference traces are expensive;
one full-detail pass per benchmark powers many figures).  The cache is
safe for concurrent writers, so independent cells can be fanned out over
worker processes with :class:`ParallelRunner` / :func:`run_cells`
(``pgss-sim run-all --jobs N``).
"""

from .cache import ResultCache
from .cells import ExperimentCell, enumerate_cells, run_cell, trace_cell
from .parallel import CellOutcome, ParallelRunner, run_cells
from .runner import ExperimentContext

__all__ = [
    "ExperimentContext",
    "ResultCache",
    "ExperimentCell",
    "CellOutcome",
    "ParallelRunner",
    "enumerate_cells",
    "run_cell",
    "run_cells",
    "trace_cell",
]

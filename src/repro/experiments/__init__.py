"""Experiment harness: one module per reproduced figure.

The paper's evaluation consists of Figures 2-13 (there are no numbered
tables).  Each ``figNN_*`` module exposes:

* ``run(ctx)`` — compute the figure's data, returning a plain dict;
* ``format_result(result)`` — render the same rows/series the paper
  reports, as text.

All experiments share an :class:`ExperimentContext`, which owns the scale
configuration and an on-disk result cache (reference traces are expensive;
one full-detail pass per benchmark powers many figures).
"""

from .runner import ExperimentContext
from .cache import ResultCache

__all__ = ["ExperimentContext", "ResultCache"]

"""Experiment cells: the unit of work shared by the serial and parallel drivers.

A *cell* is one independent, deterministic, cacheable computation — a
(figure, benchmark, parameters) triple such as "fig11, 164.gzip, period
20k at .05 pi".  Figure modules enumerate their cells via a module-level
``cells(ctx)`` hook and execute a single one via ``run_cell(ctx,
benchmark, params)``; the serial figure ``run()`` functions are built on
the same per-cell units, so either driver produces byte-identical cache
entries.

Cells publish exclusively through the concurrency-safe
:class:`~repro.experiments.cache.ResultCache`; running a cell returns
nothing of interest to the driver.  That is what makes the fan-out
trivially correct: the parallel driver only *warms the cache*, and the
figure assembly afterwards is always the same serial code reading pure
hits.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import OrchestrationError
from .runner import ExperimentContext, service_scope

__all__ = [
    "ExperimentCell",
    "TRACE_FIGURE",
    "trace_cell",
    "run_cell",
    "enumerate_cells",
]

#: Pseudo-figure naming the reference-trace warming cells every offline
#: analysis shares; keeping one canonical spelling lets the enumerator
#: deduplicate them across figure modules.
TRACE_FIGURE = "trace"


@dataclass(frozen=True)
class ExperimentCell:
    """One independent, cacheable (figure, benchmark, params) work unit.

    Attributes:
        figure: experiments module basename (e.g. ``fig11_pgss_sweep``),
            or :data:`TRACE_FIGURE` for reference-trace warming.
        benchmark: workload name the cell operates on.
        params: sorted ``(name, value)`` pairs configuring the cell;
            kept as a tuple so cells are hashable and picklable.
    """

    figure: str
    benchmark: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(figure: str, benchmark: str, **params: Any) -> "ExperimentCell":
        """Build a cell with keyword parameters (sorted for stability)."""
        return ExperimentCell(figure, benchmark, tuple(sorted(params.items())))

    @property
    def cell_id(self) -> str:
        """Stable human-readable identity, e.g. ``fig11/164.gzip[period=4000]``."""
        kv = ",".join(f"{k}={v}" for k, v in self.params)
        suffix = f"[{kv}]" if kv else ""
        return f"{self.figure}/{self.benchmark}{suffix}"

    @property
    def seed(self) -> int:
        """Deterministic per-cell seed derived from the cell identity.

        Every current cell is already a pure function of its configured
        seeds, but stochastic units (e.g. replicated-sampling studies)
        should draw their randomness from this value so results stay
        independent of scheduling order and worker assignment.
        """
        digest = hashlib.sha256(self.cell_id.encode()).digest()
        return int.from_bytes(digest[:4], "big")

    def kwargs(self) -> Dict[str, Any]:
        """The parameters as a plain dict."""
        return dict(self.params)


def trace_cell(benchmark: str) -> ExperimentCell:
    """The cell that warms *benchmark*'s cached reference trace."""
    return ExperimentCell(TRACE_FIGURE, benchmark)


def run_cell(ctx: ExperimentContext, cell: ExperimentCell) -> Any:
    """Execute one cell against *ctx* — identical for both drivers.

    The only observable effect is cache warming; the return value exists
    for in-process callers and is never shipped between processes.
    """
    if cell.figure == TRACE_FIGURE:
        return ctx.trace(cell.benchmark)
    module = importlib.import_module(f".{cell.figure}", __package__)
    runner = getattr(module, "run_cell", None)
    if runner is None:
        raise OrchestrationError(
            f"figure module {cell.figure!r} does not define run_cell()"
        )
    # Cell execution is part of the service; figure helpers that compose
    # other figures' entry points must not trip the deprecation shim.
    with service_scope():
        return runner(ctx, cell.benchmark, cell.kwargs())


def enumerate_cells(
    ctx: ExperimentContext, figures: Optional[Sequence[str]] = None
) -> List[ExperimentCell]:
    """All cells of the selected figure modules, deduplicated in order.

    Args:
        ctx: experiment context (supplies the benchmark list and scale).
        figures: experiments module basenames; defaults to every module
            in the report's presentation order.
    """
    if figures is None:
        from .report import FIGURE_MODULES

        figures = [module for _, module in FIGURE_MODULES]
    seen = set()
    out: List[ExperimentCell] = []
    for name in figures:
        module = importlib.import_module(f".{name}", __package__)
        cells_fn = getattr(module, "cells", None)
        if cells_fn is None:
            continue
        for cell in cells_fn(ctx):
            if cell not in seen:
                seen.add(cell)
                out.append(cell)
    return out

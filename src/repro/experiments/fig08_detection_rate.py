"""Figure 8: fraction of significant IPC changes caught vs BBV threshold.

One curve per IPC-significance level (.1 to .5 sigma).  The paper: "As
expected, there is a knee in the curve around .05 pi radians.  Performance
is better for larger IPC changes."  Benchmarks are weighted equally (the
per-benchmark detection rates are averaged).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

import numpy as np

from ..phase.threshold import detection_rate
from .cells import ExperimentCell, trace_cell
from .fig07_change_distribution import DEFAULT_PERIOD_FACTOR, change_pairs_per_benchmark
from .formatting import table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "THRESHOLDS_PI", "SIGMA_LEVELS"]

#: Swept thresholds, as fractions of pi (the paper's x-axis spans 0-0.5).
THRESHOLDS_PI = tuple(round(0.01 * i, 2) for i in range(0, 51, 2))

#: IPC-significance levels in sigma units (the paper's five curves).
SIGMA_LEVELS = (0.1, 0.2, 0.3, 0.4, 0.5)


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: every benchmark's reference trace."""
    return [trace_cell(name) for name in ctx.benchmarks]


@figure_entry
def run(
    ctx: ExperimentContext, period_factor: int = DEFAULT_PERIOD_FACTOR
) -> Dict[str, Any]:
    """Compute the equally-weighted detection-rate curves."""
    per_benchmark = change_pairs_per_benchmark(ctx, period_factor)
    curves: Dict[str, List[float]] = {}
    for sigma in SIGMA_LEVELS:
        rates = []
        for th in THRESHOLDS_PI:
            per_bench = [
                detection_rate(pairs, th * math.pi, sigma)
                for pairs in per_benchmark.values()
                if pairs
            ]
            rates.append(float(np.mean(per_bench)))
        curves[f"{sigma:.1f}"] = rates
    # Knee: the largest threshold at which the .3-sigma curve still
    # retains at least 90% of its zero-threshold value.
    base = curves["0.3"][1] if len(curves["0.3"]) > 1 else 1.0
    knee = THRESHOLDS_PI[0]
    for th, rate in zip(THRESHOLDS_PI, curves["0.3"]):
        if th > 0 and rate >= 0.9 * base:
            knee = th
    return {
        "thresholds_pi": list(THRESHOLDS_PI),
        "curves": curves,
        "knee_pi": knee,
    }


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-8 table: % of changes caught per threshold and sigma level."""
    rows = []
    for i, th in enumerate(result["thresholds_pi"]):
        if th not in (0.0, 0.02, 0.04, 0.06, 0.1, 0.2, 0.3, 0.4, 0.5):
            continue
        row = [f"{th:.2f}pi"]
        for sigma in SIGMA_LEVELS:
            row.append(f"{100 * result['curves'][f'{sigma:.1f}'][i]:5.1f}%")
        rows.append(row)
    header = (
        "Figure 8 — significant-IPC-change detection rate vs threshold\n"
        f"(knee of the .3-sigma curve at ~{result['knee_pi']:.2f}pi; "
        "the paper reports ~.05pi)\n"
    )
    return header + table(
        ["threshold"] + [f">{s:.1f}s" for s in SIGMA_LEVELS], rows
    )

"""Figure 12: sampling error and detailed-simulation cost, all techniques.

Reproduces both panels of the paper's headline figure for the ten
benchmarks:

* **SMARTS** — one canonical configuration;
* **TurboSMARTS** — random-order sampling to the confidence target, plus
  the Section-5 observation that its absolute error "typically falls well
  outside these bounds";
* **SimPoint** — the paper's eleven configurations (three interval sizes
  x three cluster counts, plus two extras); shown as the best
  configuration per benchmark and the best single overall configuration;
* **Online SimPoint** — interval x threshold grid, same two views;
* **PGSS** — the Figure 11 sweep, same two views;
* **FullDetail** — the whole-program detailed run anchoring both panels
  (zero error, maximum cost);
* **Stratified** — two-phase stratified sampling (stage-1 phase profile,
  stage-2 Neyman-allocated budget), one canonical configuration;
* **RankedSet** — ranked-set sampling over a functional-warming cost
  proxy, one canonical configuration.

The shape to reproduce: SMARTS and SimPoint most accurate but expensive;
PGSS close in accuracy with roughly an order of magnitude less detailed
simulation than SMARTS and far less than SimPoint; PGSS both more accurate
and cheaper than TurboSMARTS.  The two stratified-family extensions sit
between SMARTS and PGSS: several times cheaper than SMARTS at comparable
error, with RankedSet the cheapest and noisiest of the family.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..errors import OrchestrationError
from ..sampling.full import FullDetail
from ..sampling.online_simpoint import OnlineSimPoint, OnlineSimPointConfig
from ..sampling.ranked import RankedSetConfig, RankedSetSampling
from ..sampling.simpoint import SimPoint, SimPointConfig
from ..sampling.smarts import Smarts, SmartsConfig
from ..sampling.stratified import TwoPhaseStratified, TwoPhaseStratifiedConfig
from ..sampling.turbosmarts import TurboSmarts, TurboSmartsConfig
from ..stats.errors_metrics import arithmetic_mean, geometric_mean
from .cells import ExperimentCell, trace_cell
from .fig11_pgss_sweep import cells as fig11_cells
from .fig11_pgss_sweep import run as run_fig11
from .formatting import fmt_ops, fmt_pct, table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "run_cell", "OLSP_THRESHOLDS_PI"]

#: Online-SimPoint threshold grid (the paper tested "various thresholds").
OLSP_THRESHOLDS_PI = (0.05, 0.10, 0.15)


def _per_benchmark(
    ctx: ExperimentContext, run_one: Callable[[str], Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    for benchmark in ctx.benchmarks:
        res = dict(run_one(benchmark))
        true = ctx.true_ipc(benchmark)
        res["error_pct"] = 100.0 * abs(res["ipc_estimate"] - true) / true
        out[benchmark] = res
    return out


def _summary(results: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    errors = [r["error_pct"] for r in results.values()]
    details = [r["detailed_ops"] for r in results.values()]
    return {
        "errors": {b: r["error_pct"] for b, r in results.items()},
        "detailed_ops": {b: r["detailed_ops"] for b, r in results.items()},
        "a_mean": arithmetic_mean(errors),
        "g_mean": geometric_mean(errors),
        "mean_detailed_ops": arithmetic_mean(details),
    }


def _simpoint_grid(ctx: ExperimentContext) -> List[SimPointConfig]:
    configs = [
        SimPointConfig(interval, k)
        for interval in ctx.scale.simpoint_intervals
        for k in ctx.scale.simpoint_clusters
    ]
    configs += [
        SimPointConfig(interval, k) for k, interval in ctx.scale.simpoint_extra
    ]
    # A configuration is only feasible when every benchmark yields at
    # least k intervals.
    max_intervals = ctx.scale.benchmark_ops
    return [
        cfg
        for cfg in configs
        if cfg.n_clusters <= max_intervals // cfg.interval_ops
    ]


def _full_run(ctx: ExperimentContext, benchmark: str) -> Dict[str, Any]:
    """One cached whole-program detailed run (the cost ceiling)."""
    return ctx.run_cached(benchmark, FullDetail(ctx.machine), {})


def _stratified_run(ctx: ExperimentContext, benchmark: str) -> Dict[str, Any]:
    """One cached two-phase stratified run (scale-canonical config)."""
    cfg = TwoPhaseStratifiedConfig.from_scale(ctx.scale)
    return ctx.run_cached(
        benchmark,
        TwoPhaseStratified(cfg, ctx.machine),
        {
            "interval": cfg.interval_ops,
            "samples": cfg.total_samples,
            "pilot": cfg.pilot_per_stratum,
        },
    )


def _ranked_run(ctx: ExperimentContext, benchmark: str) -> Dict[str, Any]:
    """One cached ranked-set run (scale-canonical config)."""
    cfg = RankedSetConfig.from_scale(ctx.scale)
    return ctx.run_cached(
        benchmark,
        RankedSetSampling(cfg, ctx.machine),
        {
            "interval": cfg.interval_ops,
            "set": cfg.set_size,
            "sub": cfg.n_subsamples,
        },
    )


def _smarts_run(ctx: ExperimentContext, benchmark: str) -> Dict[str, Any]:
    """One cached SMARTS run (the paper's canonical configuration)."""
    cfg = SmartsConfig.from_scale(ctx.scale)
    return ctx.run_cached(
        benchmark, Smarts(cfg, ctx.machine), {"period": cfg.period_ops}
    )


def _turbo_run(ctx: ExperimentContext, benchmark: str) -> Dict[str, Any]:
    """One cached TurboSMARTS run (confidence-targeted)."""
    cfg = TurboSmartsConfig.from_scale(ctx.scale)
    return ctx.run_cached(
        benchmark,
        TurboSmarts(cfg, ctx.machine),
        {"period": cfg.smarts.period_ops, "rel": cfg.rel_error},
    )


def _simpoint_run(
    ctx: ExperimentContext, benchmark: str, interval: int, k: int
) -> Dict[str, Any]:
    """One cached SimPoint run at (interval, k clusters)."""
    technique = SimPoint(SimPointConfig(interval, k), ctx.machine)
    return ctx.run_cached(
        benchmark,
        technique,
        {"interval": interval, "k": k},
        runner=lambda: technique.run(ctx.program(benchmark), trace=ctx.trace(benchmark)),
    )


def _olsp_run(
    ctx: ExperimentContext, benchmark: str, interval: int, threshold_pi: float
) -> Dict[str, Any]:
    """One cached Online-SimPoint run at (interval, threshold)."""
    technique = OnlineSimPoint(
        OnlineSimPointConfig(interval, threshold_pi), ctx.machine
    )
    return ctx.run_cached(
        benchmark,
        technique,
        {"interval": interval, "threshold": threshold_pi},
        runner=lambda: technique.run(ctx.program(benchmark), trace=ctx.trace(benchmark)),
    )


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """One cell per (technique configuration, benchmark) pair.

    The PGSS panel reuses the Figure 11 sweep, so those cells are
    included too (the enumerator deduplicates across figures).
    """
    out = [trace_cell(name) for name in ctx.benchmarks]
    for benchmark in ctx.benchmarks:
        for technique in ("full", "smarts", "turbosmarts", "stratified", "ranked"):
            out.append(
                ExperimentCell.make(
                    "fig12_technique_comparison", benchmark, technique=technique
                )
            )
    for cfg in _simpoint_grid(ctx):
        for benchmark in ctx.benchmarks:
            out.append(
                ExperimentCell.make(
                    "fig12_technique_comparison",
                    benchmark,
                    technique="simpoint",
                    interval=cfg.interval_ops,
                    k=cfg.n_clusters,
                )
            )
    for interval in ctx.scale.simpoint_intervals:
        for threshold in OLSP_THRESHOLDS_PI:
            for benchmark in ctx.benchmarks:
                out.append(
                    ExperimentCell.make(
                        "fig12_technique_comparison",
                        benchmark,
                        technique="olsp",
                        interval=interval,
                        threshold_pi=threshold,
                    )
                )
    out.extend(fig11_cells(ctx))
    return out


def run_cell(ctx: ExperimentContext, benchmark: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Parallel-driver entry: one cached technique run."""
    technique = params["technique"]
    if technique == "full":
        return _full_run(ctx, benchmark)
    if technique == "smarts":
        return _smarts_run(ctx, benchmark)
    if technique == "turbosmarts":
        return _turbo_run(ctx, benchmark)
    if technique == "stratified":
        return _stratified_run(ctx, benchmark)
    if technique == "ranked":
        return _ranked_run(ctx, benchmark)
    if technique == "simpoint":
        return _simpoint_run(ctx, benchmark, params["interval"], params["k"])
    if technique == "olsp":
        return _olsp_run(
            ctx, benchmark, params["interval"], params["threshold_pi"]
        )
    raise OrchestrationError(f"unknown fig12 cell technique {technique!r}")


def _grid_views(
    ctx: ExperimentContext,
    runs: Dict[str, Dict[str, Dict[str, Any]]],
) -> Dict[str, Any]:
    """Best-per-benchmark and best-overall views over a config grid.

    Args:
        runs: config label -> benchmark -> result dict (with error_pct).
    """
    labels = list(runs)
    best_overall_label = min(
        labels,
        key=lambda lab: arithmetic_mean(
            [runs[lab][b]["error_pct"] for b in ctx.benchmarks]
        ),
    )
    best_per: Dict[str, Dict[str, Any]] = {}
    for benchmark in ctx.benchmarks:
        lab = min(labels, key=lambda L: runs[L][benchmark]["error_pct"])
        entry = dict(runs[lab][benchmark])
        entry["config"] = lab
        best_per[benchmark] = entry
    return {
        "best_overall_config": best_overall_label,
        "best_overall": _summary(runs[best_overall_label]),
        "best_per_benchmark": _summary(best_per),
        "best_per_benchmark_configs": {
            b: best_per[b]["config"] for b in ctx.benchmarks
        },
    }


@figure_entry
def run(ctx: ExperimentContext) -> Dict[str, Any]:
    """Run every technique on every benchmark (cached)."""
    result: Dict[str, Any] = {"benchmarks": list(ctx.benchmarks)}

    # Full detail: the zero-error, maximum-cost anchor of both panels.
    result["FullDetail"] = _summary(
        _per_benchmark(ctx, lambda b: _full_run(ctx, b))
    )

    # SMARTS.
    result["SMARTS"] = _summary(
        _per_benchmark(ctx, lambda b: _smarts_run(ctx, b))
    )

    # Two-phase stratified and ranked-set (single canonical config each).
    result["Stratified"] = _summary(
        _per_benchmark(ctx, lambda b: _stratified_run(ctx, b))
    )
    result["RankedSet"] = _summary(
        _per_benchmark(ctx, lambda b: _ranked_run(ctx, b))
    )

    # TurboSMARTS (+ CI coverage observation).
    turbo_cfg = TurboSmartsConfig.from_scale(ctx.scale)
    turbo_runs = _per_benchmark(ctx, lambda b: _turbo_run(ctx, b))
    result["TurboSMARTS"] = _summary(turbo_runs)
    converged = [
        b for b, r in turbo_runs.items() if r["extras"].get("converged")
    ]
    outside = [
        b
        for b in converged
        if turbo_runs[b]["error_pct"] > 100.0 * turbo_cfg.rel_error
    ]
    result["TurboSMARTS"]["converged"] = converged
    result["TurboSMARTS"]["error_outside_bounds"] = outside
    result["TurboSMARTS"]["rel_error_target_pct"] = 100.0 * turbo_cfg.rel_error

    # SimPoint grid (profiling + interval IPCs from the reference trace).
    sp_runs: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for cfg in _simpoint_grid(ctx):
        sp_runs[cfg.label] = _per_benchmark(
            ctx,
            lambda b, c=cfg: _simpoint_run(ctx, b, c.interval_ops, c.n_clusters),
        )
    result["SimPoint"] = _grid_views(ctx, sp_runs)

    # Online SimPoint grid.
    olsp_runs: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for interval in ctx.scale.simpoint_intervals:
        for threshold in OLSP_THRESHOLDS_PI:
            cfg = OnlineSimPointConfig(interval, threshold)
            olsp_runs[cfg.label] = _per_benchmark(
                ctx,
                lambda b, c=cfg: _olsp_run(
                    ctx, b, c.interval_ops, c.threshold_pi
                ),
            )
    result["OnlineSimPoint"] = _grid_views(ctx, olsp_runs)

    # PGSS: reuse the Figure 11 sweep.
    fig11 = run_fig11(ctx)
    pgss_runs: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for entry in fig11["grid"]:
        label = f"{fmt_ops(entry['period'])}/.{int(entry['threshold_pi'] * 100):02d}"
        pgss_runs[label] = {
            b: {
                "error_pct": entry["errors"][b],
                "detailed_ops": entry["detailed_ops"][b],
                "ipc_estimate": 0.0,
            }
            for b in ctx.benchmarks
        }
    result["PGSS"] = _grid_views(ctx, pgss_runs)

    return result


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-12 tables: error panel and detailed-ops panel."""
    benchmarks = result["benchmarks"]
    short = [b.split(".")[1] for b in benchmarks]

    views = [
        ("FullDetail", result["FullDetail"]),
        ("SMARTS", result["SMARTS"]),
        ("TurboSMARTS", result["TurboSMARTS"]),
        ("SimPoint(best)", result["SimPoint"]["best_per_benchmark"]),
        (
            f"SimPoint({result['SimPoint']['best_overall_config']})",
            result["SimPoint"]["best_overall"],
        ),
        ("OLSP(best)", result["OnlineSimPoint"]["best_per_benchmark"]),
        (
            f"OLSP({result['OnlineSimPoint']['best_overall_config']})",
            result["OnlineSimPoint"]["best_overall"],
        ),
        ("PGSS(best)", result["PGSS"]["best_per_benchmark"]),
        (
            f"PGSS({result['PGSS']['best_overall_config']})",
            result["PGSS"]["best_overall"],
        ),
        ("Stratified", result["Stratified"]),
        ("RankedSet", result["RankedSet"]),
    ]

    error_rows = []
    detail_rows = []
    for label, view in views:
        error_rows.append(
            [label]
            + [fmt_pct(view["errors"][b]) for b in benchmarks]
            + [fmt_pct(view["a_mean"]), fmt_pct(view["g_mean"])]
        )
        detail_rows.append(
            [label]
            + [fmt_ops(view["detailed_ops"][b]) for b in benchmarks]
            + [fmt_ops(view["mean_detailed_ops"]), ""]
        )

    turbo = result["TurboSMARTS"]
    pgss_detail = result["PGSS"]["best_overall"]["mean_detailed_ops"]
    smarts_detail = result["SMARTS"]["mean_detailed_ops"]
    sp_detail = result["SimPoint"]["best_overall"]["mean_detailed_ops"]
    header = (
        "Figure 12 — sampling error and detailed simulation per technique\n"
        f"PGSS uses {smarts_detail / pgss_detail:.1f}x less detail than "
        f"SMARTS and {sp_detail / pgss_detail:.1f}x less than SimPoint.\n"
        f"TurboSMARTS converged on {len(turbo['converged'])} benchmarks; "
        f"true error exceeded the {turbo['rel_error_target_pct']:.0f}% bound "
        f"on {len(turbo['error_outside_bounds'])} of them "
        "(the Gaussian-assumption failure the paper describes).\n\n"
    )
    return (
        header
        + "Sampling error (percent of benchmark IPC):\n"
        + table(["technique"] + short + ["A-Mean", "G-Mean"], error_rows)
        + "\n\nAmount of detailed simulation (ops):\n"
        + table(["technique"] + short + ["mean", ""], detail_rows)
    )

"""Figure 3: IPC over time and its distribution for the wupwise analogue.

The paper shows a Pentium-4 execution of 168.wupwise whose IPC oscillates
between well-separated levels, so the cycle-weighted IPC distribution is
"clearly ... non-Gaussian" — the assumption SMARTS' confidence analysis
rests on.  This experiment reproduces both panels on the simulated
analogue and quantifies polymodality with Sarle's bimodality coefficient
and a smoothed-histogram mode count.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..stats.distributions import bimodality_coefficient, histogram, modality_peaks
from .cells import ExperimentCell, trace_cell
from .formatting import table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "BENCHMARK", "GAUSSIAN_BC", "UNIFORM_BC"]

BENCHMARK = "168.wupwise"

#: Sarle's coefficient reference points: a Gaussian scores ~1/3, a uniform
#: distribution ~0.555; values above the uniform suggest polymodality.
GAUSSIAN_BC = 1.0 / 3.0
UNIFORM_BC = 0.555


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: the subject benchmark's reference trace."""
    return [trace_cell(BENCHMARK)]


@figure_entry
def run(ctx: ExperimentContext, benchmark: str = BENCHMARK, bins: int = 28) -> Dict[str, Any]:
    """Compute the IPC time series and its cycle-weighted distribution."""
    trace = ctx.trace(benchmark)
    ipcs = trace.ipcs
    cycles = trace.cycles.astype(np.float64)
    edges, counts = histogram(ipcs, bins=bins, weights=cycles)
    peaks = modality_peaks(ipcs, bins=bins, weights=cycles)
    return {
        "benchmark": benchmark,
        "true_ipc": trace.true_ipc,
        "time_cycles": np.cumsum(trace.cycles).tolist(),
        "ipcs": ipcs.tolist(),
        "hist_edges": edges.tolist(),
        "hist_cycles": counts.tolist(),
        "bimodality_coefficient": bimodality_coefficient(ipcs),
        "modes": peaks,
        "ipc_std": float(ipcs.std(ddof=0)),
    }


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-3 summary: distribution shape evidence."""
    edges = result["hist_edges"]
    counts = result["hist_cycles"]
    total = sum(counts) or 1.0
    rows = []
    for i in range(len(counts)):
        share = counts[i] / total
        if share < 0.005:
            continue
        bar = "#" * max(int(round(share * 60)), 1)
        rows.append([f"{edges[i]:.2f}-{edges[i + 1]:.2f}", f"{100 * share:.1f}%", bar])
    bc = result["bimodality_coefficient"]
    header = (
        f"Figure 3 — IPC distribution, {result['benchmark']} "
        f"(mean IPC {result['true_ipc']:.3f}, sigma {result['ipc_std']:.3f})\n"
        f"modes at {[round(m, 2) for m in result['modes']]}; "
        f"bimodality coefficient {bc:.3f} "
        f"(Gaussian ~{GAUSSIAN_BC:.2f}, >{UNIFORM_BC:.3f} = polymodal)\n"
        "Cycle-weighted IPC histogram:\n"
    )
    return header + table(["IPC bin", "cycles", ""], rows)

"""Parallel experiment orchestration over a process pool.

Every paper figure decomposes into independent, deterministic
:class:`~repro.experiments.cells.ExperimentCell` units that publish only
through the concurrency-safe result cache.  This module fans those cells
out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* ``--jobs 1`` runs the cells in-process, in order — the exact serial
  path, and the baseline any parallel run must match byte-for-byte;
* ``--jobs N`` runs up to N cells at a time in worker processes, each of
  which rebuilds the experiment context from a picklable spec and
  executes the cell for its cache-warming side effect only (no payloads
  travel back over the pipe);
* a per-cell timeout (enforced inside the worker via ``SIGALRM``) and a
  bounded retry budget contain hung or faulted cells, including workers
  that die outright (``BrokenProcessPool`` rebuilds the pool and retries
  the in-flight cells);
* a progress reporter emits ``[done/total] cell: status (1.2s) ETA 42s``
  lines while the fan-out runs.

Because the figure assembly afterwards is always the same serial code
reading pure cache hits, ``--jobs N`` and ``--jobs 1`` produce identical
results by construction; the test suite and the parallel-runner bench
verify the byte equality end to end.
"""

from __future__ import annotations

import math
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import OrchestrationError
from .cells import ExperimentCell, run_cell
from .runner import ExperimentContext

__all__ = ["CellOutcome", "ParallelRunner", "run_cells"]

#: Default per-cell wall-clock budget inside a worker.
DEFAULT_TIMEOUT_S = 600.0

#: Default number of retries after a failed or timed-out attempt.
DEFAULT_RETRIES = 1

CellRunner = Callable[[ExperimentContext, ExperimentCell], Any]


@dataclass
class CellOutcome:
    """Final disposition of one cell after all attempts.

    Attributes:
        cell: the work unit.
        status: ``ok`` | ``error`` | ``timeout``.
        seconds: wall time of the last attempt.
        attempts: attempts consumed (1 = first try succeeded).
        error: diagnostic for non-ok statuses.
    """

    cell: ExperimentCell
    status: str
    seconds: float
    attempts: int
    error: str = ""


class _CellTimeout(OrchestrationError):
    """Raised inside a worker when a cell exceeds its time budget."""


def _context_spec(ctx: ExperimentContext) -> Dict[str, Any]:
    """Picklable description from which a worker rebuilds the context."""
    spec: Dict[str, Any] = {
        "scale": ctx.scale,
        "machine": ctx.machine,
        "cache_dir": str(ctx.cache.directory),
        "benchmarks": list(ctx.benchmarks),
    }
    if ctx.checkpoint_dir is not None:
        spec["checkpoint_dir"] = str(ctx.checkpoint_dir)
        spec["checkpoint_windows"] = ctx.checkpoint_windows
    return spec


def _context_from_spec(spec: Dict[str, Any]) -> ExperimentContext:
    checkpoint_dir = spec.get("checkpoint_dir")
    return ExperimentContext(
        scale=spec["scale"],
        machine=spec["machine"],
        cache_dir=Path(spec["cache_dir"]),
        benchmarks=spec["benchmarks"],
        checkpoint_dir=Path(checkpoint_dir) if checkpoint_dir else None,
        checkpoint_windows=int(spec.get("checkpoint_windows", 0)),
    )


def _on_alarm(signum: int, frame: Any) -> None:
    raise _CellTimeout("cell exceeded its time budget")


def _execute_cell(
    spec: Dict[str, Any],
    cell: ExperimentCell,
    timeout_s: Optional[float],
    runner: Optional[CellRunner],
) -> Dict[str, Any]:
    """Worker entry point: run one cell in a freshly rebuilt context.

    Returns a small status record; results stay in the on-disk cache.
    The timeout is enforced with ``SIGALRM`` (worker processes execute
    tasks on their main thread), so a hung cell cannot wedge the pool
    slot forever.
    """
    ctx = _context_from_spec(spec)
    # SIGALRM can only be armed on the main thread; a fleet worker driven
    # from a helper thread (tests, embedders) runs without the in-process
    # timeout and relies on the queue's lease expiry instead.
    use_alarm = (
        bool(timeout_s)
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    previous_handler = None
    # Host timing here measures orchestration wall time for reporting; it
    # never influences simulated state.
    start = time.perf_counter()  # simlint: disable=DET005
    try:
        if use_alarm:
            previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.alarm(max(int(math.ceil(timeout_s or 0.0)), 1))
        (runner or run_cell)(ctx, cell)
        status, error = "ok", ""
    except _CellTimeout:
        status, error = "timeout", f"exceeded {timeout_s:.0f}s budget"
    except Exception as exc:
        status, error = "error", f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.alarm(0)
            # The wrapper also runs in-process (jobs=1 retries, custom
            # runners, tests); leaving _on_alarm installed would turn any
            # later alarm in the host into a stray _CellTimeout.
            if previous_handler is not None:
                signal.signal(signal.SIGALRM, previous_handler)
    elapsed = time.perf_counter() - start  # simlint: disable=DET005
    return {
        "status": status,
        "seconds": elapsed,
        "error": error,
        "cache": ctx.cache.stats(),
    }


class _ProgressReporter:
    """Emits one line per finished cell with a completion ETA."""

    def __init__(self, total: int, emit: Optional[Callable[[str], None]]) -> None:
        self.total = total
        self.finished = 0
        self.emit = emit
        self.start = time.perf_counter()  # simlint: disable=DET005

    def retry(self, cell: ExperimentCell, record: Dict[str, Any], attempt: int) -> None:
        if self.emit:
            self.emit(
                f"retrying {cell.cell_id} (attempt {attempt} "
                f"{record['status']}: {record['error']})"
            )

    def done(self, outcome: CellOutcome) -> None:
        self.finished += 1
        if not self.emit:
            return
        elapsed = time.perf_counter() - self.start  # simlint: disable=DET005
        eta = elapsed / self.finished * (self.total - self.finished)
        self.emit(
            f"[{self.finished}/{self.total}] {outcome.cell.cell_id}: "
            f"{outcome.status} ({outcome.seconds:.1f}s) ETA {eta:,.0f}s"
        )


class ParallelRunner:
    """Fans independent experiment cells out over worker processes.

    Args:
        ctx: experiment context; workers rebuild an equivalent one from
            its (scale, machine, cache directory, benchmarks) spec.
        jobs: worker process count; 1 runs the cells in-process.
        timeout_s: per-cell wall-clock budget (None disables it).
        retries: additional attempts after a failed/timed-out one.
        progress: callable receiving progress lines (None = silent).
        cell_runner: override of :func:`run_cell`, mainly for tests; must
            be picklable when ``jobs > 1``.
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        jobs: int = 1,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        retries: int = DEFAULT_RETRIES,
        progress: Optional[Callable[[str], None]] = None,
        cell_runner: Optional[CellRunner] = None,
    ) -> None:
        if jobs < 1:
            raise OrchestrationError(f"jobs must be >= 1, got {jobs}")
        self.ctx = ctx
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = max(int(retries), 0)
        self.progress = progress
        self.cell_runner = cell_runner

    def run(self, cells: Sequence[ExperimentCell]) -> List[CellOutcome]:
        """Run every cell to completion; outcomes in input order."""
        if self.jobs == 1:
            return self._run_serial(cells)
        return self._run_pool(cells)

    # ------------------------------------------------------------------

    def _run_serial(self, cells: Sequence[ExperimentCell]) -> List[CellOutcome]:
        """In-process execution against the caller's own context.

        This is the byte-identity baseline: the exact code path the
        figure modules use when run directly (no timeout signal is
        installed in the caller's process).
        """
        reporter = _ProgressReporter(len(cells), self.progress)
        runner = self.cell_runner or run_cell
        outcomes = []
        for cell in cells:
            attempts = 0
            while True:
                attempts += 1
                start = time.perf_counter()  # simlint: disable=DET005
                try:
                    runner(self.ctx, cell)
                    status, error = "ok", ""
                except Exception as exc:
                    status, error = "error", f"{type(exc).__name__}: {exc}"
                seconds = time.perf_counter() - start  # simlint: disable=DET005
                if status == "ok" or attempts > self.retries:
                    break
                reporter.retry(
                    cell, {"status": status, "error": error}, attempts
                )
            outcome = CellOutcome(cell, status, seconds, attempts, error)
            reporter.done(outcome)
            outcomes.append(outcome)
        return outcomes

    def _run_pool(self, cells: Sequence[ExperimentCell]) -> List[CellOutcome]:
        spec = _context_spec(self.ctx)
        reporter = _ProgressReporter(len(cells), self.progress)
        attempts: Dict[ExperimentCell, int] = {cell: 0 for cell in cells}
        outcomes: Dict[ExperimentCell, CellOutcome] = {}
        queue: "deque[ExperimentCell]" = deque(cells)
        in_flight: Dict["Future[Dict[str, Any]]", ExperimentCell] = {}
        executor: Optional[ProcessPoolExecutor] = None
        try:
            while queue or in_flight:
                if executor is None:
                    executor = ProcessPoolExecutor(max_workers=self.jobs)
                # Keep a modest backlog so workers never idle between
                # cells without queueing the whole fan-out at once.
                while queue and len(in_flight) < self.jobs * 2:
                    cell = queue.popleft()
                    attempts[cell] += 1
                    future = executor.submit(
                        _execute_cell, spec, cell, self.timeout_s, self.cell_runner
                    )
                    in_flight[future] = cell
                done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    cell = in_flight.pop(future)
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        record = {
                            "status": "error",
                            "seconds": 0.0,
                            "error": "worker process died",
                        }
                    except Exception as exc:
                        record = {
                            "status": "error",
                            "seconds": 0.0,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    self._settle(cell, record, attempts, outcomes, queue, reporter)
                if pool_broken:
                    # The pool is unusable once any worker dies: fail or
                    # requeue everything in flight and start a fresh pool.
                    for future, cell in list(in_flight.items()):
                        record = {
                            "status": "error",
                            "seconds": 0.0,
                            "error": "worker process died",
                        }
                        self._settle(
                            cell, record, attempts, outcomes, queue, reporter
                        )
                    in_flight.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = None
        finally:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
        return [outcomes[cell] for cell in cells]

    def _settle(
        self,
        cell: ExperimentCell,
        record: Dict[str, Any],
        attempts: Dict[ExperimentCell, int],
        outcomes: Dict[ExperimentCell, CellOutcome],
        queue: "deque[ExperimentCell]",
        reporter: _ProgressReporter,
    ) -> None:
        """Record one attempt's result: retry, or finalise the outcome."""
        if record["status"] != "ok" and attempts[cell] <= self.retries:
            reporter.retry(cell, record, attempts[cell])
            queue.append(cell)
            return
        outcome = CellOutcome(
            cell,
            record["status"],
            record["seconds"],
            attempts[cell],
            record["error"],
        )
        outcomes[cell] = outcome
        reporter.done(outcome)


def run_cells(
    ctx: ExperimentContext,
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    progress: Optional[Callable[[str], None]] = None,
    cell_runner: Optional[CellRunner] = None,
) -> List[CellOutcome]:
    """Convenience wrapper: build a :class:`ParallelRunner` and run."""
    runner = ParallelRunner(
        ctx,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        progress=progress,
        cell_runner=cell_runner,
    )
    return runner.run(cells)

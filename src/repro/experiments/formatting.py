"""Small text-table helpers shared by the figure modules."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["table", "fmt_ops", "fmt_pct"]


def table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def fmt_ops(n: float) -> str:
    """Format an op count compactly (1.2M, 340k, ...)."""
    n = float(n)
    if n >= 1e9:
        return f"{n / 1e9:.2f}G"
    if n >= 1e6:
        return f"{n / 1e6:.2f}M"
    if n >= 1e3:
        return f"{n / 1e3:.0f}k"
    return f"{n:.0f}"


def fmt_pct(x: float) -> str:
    """Format a percentage with sensible precision."""
    if x >= 100:
        return f"{x:.0f}%"
    if x >= 10:
        return f"{x:.1f}%"
    return f"{x:.2f}%"

"""Figure 10: threshold effects on 300.twolf's measured phase structure.

For a sweep of thresholds, the online classifier is run over 300.twolf's
BBV stream and four statistics are reported: number of phases, number of
phase changes, average phase-interval length, and within-phase IPC
variation.  The paper: "The number of detected phases quickly drops as the
threshold increases, but the variation in each phase raises quickly."
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from ..phase.threshold import phase_statistics
from .cells import ExperimentCell, trace_cell
from .fig07_change_distribution import DEFAULT_PERIOD_FACTOR
from .formatting import fmt_ops, table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "BENCHMARK", "THRESHOLDS_PI"]

BENCHMARK = "300.twolf"

#: Swept thresholds as fractions of pi (the paper's x-axis reaches pi/2).
THRESHOLDS_PI = (0.0125, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.25, 0.3, 0.375, 0.5)


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: the subject benchmark's reference trace."""
    return [trace_cell(BENCHMARK)]


@figure_entry
def run(
    ctx: ExperimentContext,
    benchmark: str = BENCHMARK,
    period_factor: int = DEFAULT_PERIOD_FACTOR,
) -> Dict[str, Any]:
    """Sweep thresholds over the benchmark's BBV/IPC series."""
    trace = ctx.trace(benchmark).aggregate(period_factor)
    bbvs = list(trace.normalized_bbvs())
    ipcs = trace.ipcs.tolist()
    ops = trace.ops.tolist()
    sweep: List[Dict[str, Any]] = []
    for frac in THRESHOLDS_PI:
        stats = phase_statistics(bbvs, ipcs, ops, frac * math.pi)
        sweep.append(
            {
                "threshold_pi": frac,
                "n_phases": stats.n_phases,
                "n_changes": stats.n_changes,
                "mean_interval_ops": stats.mean_interval_ops,
                "ipc_variation": stats.ipc_variation,
            }
        )
    return {
        "benchmark": benchmark,
        "ipc_sigma": float(trace.ipcs.std(ddof=0)),
        "sweep": sweep,
    }


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-10 table: phase statistics per threshold."""
    rows = []
    for entry in result["sweep"]:
        rows.append(
            [
                f"{entry['threshold_pi']:.3f}pi",
                str(entry["n_phases"]),
                str(entry["n_changes"]),
                fmt_ops(entry["mean_interval_ops"]),
                f"{entry['ipc_variation']:.3f}",
            ]
        )
    header = (
        f"Figure 10 — threshold effects on {result['benchmark']} "
        f"(overall IPC sigma {result['ipc_sigma']:.3f})\n"
        "phases drop and per-phase variation rises as the threshold grows:\n"
    )
    return header + table(
        ["threshold", "phases", "changes", "avg interval", "IPC var (x sigma)"],
        rows,
    )

"""On-disk caching of experiment results.

Reference traces (one full-detail pass per benchmark) and technique runs
are deterministic given their configuration, so they are cached under a
key derived from the configuration.  The cache directory defaults to
``<repo>/.expcache`` and can be overridden with the ``REPRO_CACHE_DIR``
environment variable; delete the directory to force recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..sampling.full import ReferenceTrace

__all__ = ["ResultCache"]

#: Bump when a change invalidates previously cached results (simulator
#: timing semantics, workload definitions, estimators).
CACHE_VERSION = 7


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".expcache"


class ResultCache:
    """Content-addressed store for traces and JSON-able results."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else _default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key(self, payload: Dict[str, Any]) -> str:
        """Stable hash of a JSON-able payload plus the cache version."""
        material = json.dumps(
            {"v": CACHE_VERSION, **payload}, sort_keys=True, default=str
        )
        return hashlib.sha256(material.encode()).hexdigest()[:24]

    def json(
        self, payload: Dict[str, Any], compute: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Return the cached result for *payload*, computing it on a miss."""
        path = self.directory / f"{self.key(payload)}.json"
        if path.exists():
            self.hits += 1
            with path.open() as fh:
                return json.load(fh)
        self.misses += 1
        result = compute()
        tmp = path.with_suffix(".tmp")
        with tmp.open("w") as fh:
            json.dump(result, fh)
        tmp.replace(path)
        return result

    def trace(
        self, payload: Dict[str, Any], compute: Callable[[], ReferenceTrace]
    ) -> ReferenceTrace:
        """Return the cached reference trace for *payload*."""
        path = self.directory / f"{self.key(payload)}.npz"
        if path.exists():
            self.hits += 1
            return ReferenceTrace.load(path)
        self.misses += 1
        trace = compute()
        trace.save(path)
        return trace

    def clear(self) -> int:
        """Delete every cached file; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*"):
            if path.suffix in (".json", ".npz"):
                path.unlink()
                removed += 1
        return removed

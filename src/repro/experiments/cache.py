"""On-disk caching of experiment results.

Reference traces (one full-detail pass per benchmark) and technique runs
are deterministic given their configuration, so they are cached under a
key derived from the configuration.  The cache directory defaults to
``<repo>/.expcache`` and can be overridden with the ``REPRO_CACHE_DIR``
environment variable; delete the directory to force recomputation.

The cache is safe for concurrent writers across processes:

* every entry is published with a write-to-unique-tmp + ``os.replace``
  sequence, so readers only ever observe absent or complete files;
* a ``<key>.<ext>.claim`` file (created with ``O_EXCL``) suppresses
  duplicate work — the first writer computes while the others wait for
  the published entry, stealing the claim only if its holder died;
* unreadable entries (torn by a crash predating this scheme, or damaged
  on disk) are quarantined to ``<key>.<ext>.corrupt`` and recomputed
  instead of poisoning every later read;
* per-instance ``hits`` / ``misses`` / ``races`` / ``corrupt`` counters
  make the behaviour observable (see :meth:`ResultCache.stats`).
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Optional, TypeVar

from ..errors import CacheError
from ..sampling.full import ReferenceTrace

__all__ = ["ResultCache"]

T = TypeVar("T")

#: Bump when a change invalidates previously cached results (simulator
#: timing semantics, workload definitions, estimators).
CACHE_VERSION = 7

#: How long a reader waits on another process's claim before giving up
#: and computing the entry itself (results are deterministic, so a
#: duplicated computation publishes identical bytes).
_CLAIM_WAIT_S = 600.0

#: Poll interval while waiting on a peer's claim.
_CLAIM_POLL_S = 0.05

#: File suffixes the cache may leave in its directory.
_CACHE_SUFFIXES = (".json", ".npz", ".tmp", ".claim", ".corrupt")


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".expcache"


def _reject_unserializable(obj: Any) -> Any:
    raise CacheError(
        f"cache payload value {obj!r} of type {type(obj).__name__} is not "
        "JSON-serialisable; convert it explicitly before keying (silently "
        "stringifying could collapse distinct configurations onto one key)"
    )


class ResultCache:
    """Content-addressed store for traces and JSON-able results."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else _default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Times this instance found another writer working on its key.
        self.races = 0
        #: Unreadable entries quarantined and recomputed.
        self.corrupt = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits, misses, races, corrupt."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "races": self.races,
            "corrupt": self.corrupt,
        }

    def key(self, payload: Dict[str, Any]) -> str:
        """Stable hash of a JSON-able payload plus the cache version.

        Raises:
            CacheError: if the payload contains values that JSON cannot
                represent (they would otherwise be stringified, which can
                merge distinct configurations into one key).
        """
        try:
            material = json.dumps(
                {"v": CACHE_VERSION, **payload},
                sort_keys=True,
                default=_reject_unserializable,
            )
        except (TypeError, ValueError) as exc:
            # Non-string dict keys and circular references surface as
            # TypeError/ValueError without consulting ``default``.
            if isinstance(exc, CacheError):
                raise
            raise CacheError(f"cache payload is not JSON-serialisable: {exc}") from exc
        return hashlib.sha256(material.encode()).hexdigest()[:24]

    def json(
        self, payload: Dict[str, Any], compute: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Return the cached result for *payload*, computing it on a miss."""
        path = self.directory / f"{self.key(payload)}.json"
        return self._get(path, _load_json, _dump_json, compute)

    def trace(
        self, payload: Dict[str, Any], compute: Callable[[], ReferenceTrace]
    ) -> ReferenceTrace:
        """Return the cached reference trace for *payload*."""
        path = self.directory / f"{self.key(payload)}.npz"
        return self._get(path, _load_trace, _dump_trace, compute)

    def clear(self) -> int:
        """Delete every cache-owned file (entries, tmp, claim, quarantine).

        Returns the number of files removed.  Sweeping ``.tmp`` and
        ``.claim`` files keeps leftovers from interrupted runs from
        accumulating forever.
        """
        removed = 0
        for path in sorted(self.directory.glob("*")):
            if path.suffix in _CACHE_SUFFIXES:
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
        return removed

    def sweep(self) -> Dict[str, int]:
        """Remove crash litter without touching published entries.

        Deletes orphaned ``.tmp`` files and ``.claim`` files whose
        holder is dead (same-host check; foreign-host claims are left to
        the wait-deadline logic).  Returns counts per category — run by
        ``pgss-sim clear-cache --sweep`` after killing workers.
        """
        report = {"stale_claims": 0, "tmp_files": 0}
        for path in sorted(self.directory.glob("*.claim")):
            if not self._claim_holder_alive(path):
                try:
                    path.unlink()
                    report["stale_claims"] += 1
                except OSError:
                    pass
        for path in sorted(self.directory.glob("*.tmp")):
            try:
                path.unlink()
                report["tmp_files"] += 1
            except OSError:
                pass
        return report

    # ------------------------------------------------------------------
    # Concurrency-safe get-or-compute machinery.

    def _get(
        self,
        path: Path,
        load: Callable[[Path], T],
        dump: Callable[[T, Path], None],
        compute: Callable[[], T],
    ) -> T:
        value = self._load(path, load)
        if value is not None:
            self.hits += 1
            return value

        claim = path.with_name(path.name + ".claim")
        claimed = self._try_claim(claim)
        if not claimed:
            # Another process is computing this key right now: wait for
            # its published entry instead of duplicating the work.
            self.races += 1
            value = self._wait_for_peer(path, claim, load)
            if value is not None:
                self.hits += 1
                return value
            # The peer crashed, stalled past the deadline, or published a
            # corrupt entry — compute ourselves (claim is best-effort now;
            # a duplicated deterministic computation is harmless because
            # publication is atomic).
            claimed = self._try_claim(claim)

        self.misses += 1
        tmp = self._tmp_path(path)
        try:
            result = compute()
            dump(result, tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
            if claimed:
                self._release_claim(claim)
        return result

    def _load(self, path: Path, load: Callable[[Path], T]) -> Optional[T]:
        """Load an entry; quarantine and miss on a corrupted file."""
        if not path.exists():
            return None
        try:
            return load(path)
        except Exception:
            # Anything unreadable — torn writes predating atomic
            # publication, bad blocks, schema drift — is moved aside so
            # the entry is recomputed instead of failing forever.
            self.corrupt += 1
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def _tmp_path(self, path: Path) -> Path:
        """A tmp name unique per writer (pid + random token)."""
        token = uuid.uuid4().hex[:8]
        return path.with_name(f"{path.name}.{os.getpid()}.{token}.tmp")

    def _try_claim(self, claim: Path) -> bool:
        """Atomically create *claim*; False if another writer holds it."""
        try:
            fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # Filesystem without O_EXCL semantics or other failure: skip
            # duplicate suppression rather than blocking the computation.
            return True
        with os.fdopen(fd, "w") as fh:
            # "pid host": liveness is only checkable on the claimant's
            # own host, so peers elsewhere must honour the claim until
            # the wait deadline.  Pre-host claims hold a bare pid; the
            # parser accepts both.
            fh.write(f"{os.getpid()} {socket.gethostname()}")
        return True

    def _release_claim(self, claim: Path) -> None:
        try:
            claim.unlink()
        except OSError:
            pass

    @staticmethod
    def _claim_holder_alive(claim: Path) -> bool:
        try:
            parts = claim.read_text().split()
        except OSError:
            return False
        try:
            pid = int(parts[0]) if parts else 0
        except ValueError:
            return False
        if pid <= 0:
            return False
        if len(parts) > 1 and parts[1] != socket.gethostname():
            # A pid on another fleet host is unverifiable from here;
            # treat the claim as live and let the wait deadline bound
            # how long a truly dead foreign holder can stall us.
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except OSError:
            return True  # e.g. EPERM: alive but owned by another user
        return True

    def _wait_for_peer(
        self, path: Path, claim: Path, load: Callable[[Path], T]
    ) -> Optional[T]:
        """Wait for the claim holder to publish; None if we must compute."""
        # Host timing bounds how long we wait on a peer process; it never
        # influences simulated state.
        deadline = time.monotonic() + _CLAIM_WAIT_S  # simlint: disable=DET005
        while True:
            if path.exists():
                return self._load(path, load)
            if not claim.exists():
                # Holder finished without publishing (crashed mid-compute
                # or its entry was quarantined): our turn.
                return None
            if not self._claim_holder_alive(claim):
                self._release_claim(claim)  # steal the stale claim
                return None
            if time.monotonic() >= deadline:  # simlint: disable=DET005
                return None
            time.sleep(_CLAIM_POLL_S)


def _load_json(path: Path) -> Dict[str, Any]:
    with path.open() as fh:
        value = json.load(fh)
    if not isinstance(value, dict):
        raise CacheError(f"cache entry {path.name} is not a JSON object")
    return value


def _dump_json(result: Dict[str, Any], tmp: Path) -> None:
    with tmp.open("w") as fh:
        json.dump(result, fh)


def _load_trace(path: Path) -> ReferenceTrace:
    return ReferenceTrace.load(path)


def _dump_trace(trace: ReferenceTrace, tmp: Path) -> None:
    trace.save(tmp)

"""Extension experiment: phase-signal ablation on BBV-adversarial workloads.

BBVs are a control-flow projection, so a workload whose phases execute
byte-identical code over different data is invisible to them.  The
:data:`~repro.program.ADVERSARIAL_NAMES` workloads are built exactly that
way (twin blocks sharing addresses and instructions, differing only in
memory patterns); this experiment runs the online classifier and the full
PGSS loop over them with each phase signal (``bbv`` / ``mav`` /
``concat``) and reports

* **detection** — the fraction of ground-truth phase boundaries each
  signal's classifier flags (plus its false-positive count), and
* **accuracy** — each signal's PGSS IPC error against the cached
  reference trace.

The expected shape: the BBV detects (almost) nothing on these subjects
and its per-phase CIs converge on a blended population, while the MAV
and the concatenated signal see every boundary and cut the IPC error.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from ..cpu import Mode, SimulationEngine
from ..phase import OnlinePhaseClassifier
from ..program import ADVERSARIAL_NAMES
from ..sampling.pgss import Pgss, PgssConfig
from ..sampling.session import (
    ModeSegment,
    SamplingSession,
    SegmentPlan,
    SegmentRole,
)
from ..signals import PHASE_SIGNALS, make_signal_tracker
from .cells import ExperimentCell, trace_cell
from .formatting import fmt_ops, table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "run_cell", "THRESHOLD_PI"]

#: Classifier threshold (fraction of pi) shared by every signal — the
#: paper's canonical 0.05, so signals differ only in what they measure.
THRESHOLD_PI = 0.05


def _pgss_run(
    ctx: ExperimentContext, benchmark: str, signal: str
) -> Dict[str, Any]:
    """One cached PGSS run of *benchmark* driven by *signal*."""
    cfg = PgssConfig.from_scale(
        ctx.scale, threshold_pi=THRESHOLD_PI, phase_signal=signal
    )
    return ctx.run_cached(
        benchmark,
        Pgss(cfg, ctx.machine),
        {
            "period": cfg.bbv_period_ops,
            "threshold": cfg.threshold_pi,
            "signal": signal,
        },
    )


def _detection_stats(
    ctx: ExperimentContext, benchmark: str, signal: str
) -> Dict[str, Any]:
    """Classifier-vs-ground-truth bookkeeping for one (workload, signal).

    A FUNC_WARM profile pass classifies every signal period; a
    ground-truth boundary (the behaviour label changed between
    consecutive periods) counts as detected when the classifier flags a
    change in the boundary period or the one after it (a boundary can
    land anywhere inside a period).  Flags away from any boundary are
    false positives.
    """
    program = ctx.program(benchmark)
    tracker = make_signal_tracker(signal)
    engine = SimulationEngine(
        program, machine=ctx.machine, signal_tracker=tracker
    )
    classifier = OnlinePhaseClassifier(THRESHOLD_PI * math.pi)
    period = ctx.scale.pgss_best_period
    flags: List[bool] = []
    labels: List[str] = []

    def plan() -> SegmentPlan:
        while not engine.exhausted:
            outcome = yield ModeSegment(
                Mode.FUNC_WARM, period, role=SegmentRole.PROFILE
            )
            if outcome.run.ops == 0:
                break
            decision = classifier.observe(
                tracker.take_vector(normalize=True), outcome.run.ops
            )
            flags.append(decision.changed or decision.created)
            labels.append(engine.stream.current_behavior_name)

    SamplingSession(engine).execute(plan())
    boundaries = [
        i for i in range(1, len(labels)) if labels[i] != labels[i - 1]
    ]
    detected = sum(
        1
        for i in boundaries
        if flags[i] or (i + 1 < len(flags) and flags[i + 1])
    )
    near = {j for i in boundaries for j in (i, i + 1)}
    # Period 0 always "creates" the founding phase; it is neither a hit
    # nor a false positive.
    false_positives = sum(
        1 for i, flag in enumerate(flags) if flag and i > 0 and i not in near
    )
    return {
        "periods": len(flags),
        "boundaries": len(boundaries),
        "detected": detected,
        "rate": detected / len(boundaries) if boundaries else 1.0,
        "false_positives": false_positives,
        "n_phases": classifier.n_phases,
    }


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """One cell per (adversarial workload, signal), plus their traces."""
    out = [trace_cell(name) for name in ADVERSARIAL_NAMES]
    for benchmark in ADVERSARIAL_NAMES:
        for signal in PHASE_SIGNALS:
            out.append(
                ExperimentCell.make(
                    "signal_ablation", benchmark, signal=signal
                )
            )
    return out


def run_cell(
    ctx: ExperimentContext, benchmark: str, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Parallel-driver entry: one cached per-signal PGSS run."""
    return _pgss_run(ctx, benchmark, params["signal"])


@figure_entry
def run(ctx: ExperimentContext) -> Dict[str, Any]:
    """Detection rate and PGSS error per signal on adversarial subjects."""
    detection: Dict[str, Dict[str, Any]] = {}
    pgss: Dict[str, Dict[str, Any]] = {}
    for benchmark in ADVERSARIAL_NAMES:
        true_ipc = ctx.true_ipc(benchmark)
        detection[benchmark] = {}
        pgss[benchmark] = {}
        for signal in PHASE_SIGNALS:
            detection[benchmark][signal] = _detection_stats(
                ctx, benchmark, signal
            )
            res = _pgss_run(ctx, benchmark, signal)
            pgss[benchmark][signal] = {
                "ipc_estimate": res["ipc_estimate"],
                "error_pct": 100.0
                * abs(res["ipc_estimate"] - true_ipc)
                / true_ipc,
                "detailed_ops": res["detailed_ops"],
                "n_phases": res["extras"]["n_phases"],
            }
    # The acceptance claim: workloads where a memory-aware signal both
    # detects boundaries the BBV misses and lands a lower IPC error.
    mav_wins = [
        benchmark
        for benchmark in ADVERSARIAL_NAMES
        if any(
            detection[benchmark][s]["rate"]
            > detection[benchmark]["bbv"]["rate"]
            and pgss[benchmark][s]["error_pct"]
            < pgss[benchmark]["bbv"]["error_pct"]
            for s in ("mav", "concat")
        )
    ]
    return {
        "workloads": list(ADVERSARIAL_NAMES),
        "signals": list(PHASE_SIGNALS),
        "threshold_pi": THRESHOLD_PI,
        "detection": detection,
        "pgss": pgss,
        "mav_wins": mav_wins,
    }


def format_result(result: Dict[str, Any]) -> str:
    """Detection and error table, one row per (workload, signal)."""
    rows = []
    for benchmark in result["workloads"]:
        for signal in result["signals"]:
            det = result["detection"][benchmark][signal]
            acc = result["pgss"][benchmark][signal]
            rows.append(
                [
                    benchmark,
                    signal,
                    f"{det['detected']}/{det['boundaries']}",
                    f"{100 * det['rate']:5.1f}%",
                    f"{det['false_positives']}",
                    f"{acc['n_phases']}",
                    f"{acc['error_pct']:6.2f}%",
                    fmt_ops(acc["detailed_ops"]),
                ]
            )
    wins = ", ".join(result["mav_wins"]) or "none"
    header = (
        "Extension — phase-signal ablation on BBV-adversarial workloads\n"
        f"(threshold {result['threshold_pi']:.2f}pi; memory-aware signal "
        f"beats BBV on: {wins})\n"
    )
    return header + table(
        [
            "workload",
            "signal",
            "caught",
            "rate",
            "false+",
            "phases",
            "ipc err",
            "detail",
        ],
        rows,
    )

"""Full-reproduction report: every figure, one text document.

``pgss-sim report`` runs (or loads from cache) all nine reproduced figures
and assembles their tables into a single report — the machine-generated
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import importlib
from typing import List, Optional

from .runner import ExperimentContext

__all__ = ["FIGURE_MODULES", "generate_report"]

#: Figure number -> experiments module name, in presentation order.
FIGURE_MODULES = (
    ("1", "fig01_timeline"),
    ("2", "fig02_sampling_granularity"),
    ("3", "fig03_ipc_distribution"),
    ("6/7", "fig07_change_distribution"),
    ("8", "fig08_detection_rate"),
    ("9", "fig09_false_positives"),
    ("10", "fig10_twolf_threshold"),
    ("11", "fig11_pgss_sweep"),
    ("12", "fig12_technique_comparison"),
    ("13", "fig13_simulation_time"),
    ("ext-stratification", "stratification_gain"),
    ("ext-tradeoff", "tradeoff"),
)


def generate_report(
    ctx: ExperimentContext, figures: Optional[List[str]] = None
) -> str:
    """Run the selected figures (default: all) and return the report text.

    Args:
        ctx: experiment context (results come from its cache when warm).
        figures: figure numbers to include (e.g. ``["2", "12"]``).
    """
    wanted = set(figures) if figures else None
    sections = [
        "PGSS-Sim reproduction report",
        f"scale: {ctx.scale.name} "
        f"({ctx.scale.benchmark_ops:,} ops/benchmark, "
        f"{len(ctx.benchmarks)} benchmarks)",
        "=" * 72,
    ]
    for number, module_name in FIGURE_MODULES:
        if wanted is not None and number not in wanted:
            continue
        module = importlib.import_module(
            f".{module_name}", "repro.experiments"
        )
        result = module.run(ctx)
        sections.append(module.format_result(result))
        sections.append("-" * 72)
    return "\n\n".join(sections)

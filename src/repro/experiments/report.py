"""Full-reproduction report: every figure, one text document.

``pgss-sim report`` runs (or loads from cache) all nine reproduced figures
and assembles their tables into a single report — the machine-generated
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import importlib
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import OrchestrationError
from .runner import ExperimentContext, service_scope

__all__ = ["FIGURE_MODULES", "generate_report", "resolve_figure_ids"]

#: Figure number -> experiments module name, in presentation order.
FIGURE_MODULES = (
    ("1", "fig01_timeline"),
    ("2", "fig02_sampling_granularity"),
    ("3", "fig03_ipc_distribution"),
    ("6/7", "fig07_change_distribution"),
    ("8", "fig08_detection_rate"),
    ("9", "fig09_false_positives"),
    ("10", "fig10_twolf_threshold"),
    ("11", "fig11_pgss_sweep"),
    ("12", "fig12_technique_comparison"),
    ("13", "fig13_simulation_time"),
    ("ext-stratification", "stratification_gain"),
    ("ext-tradeoff", "tradeoff"),
    ("ext-signals", "signal_ablation"),
)


def resolve_figure_ids(
    figures: Union[str, Sequence[str], None],
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Map user figure ids to ``(numbers, module_names)``.

    Accepts a comma-separated string (``"2,12,ext-tradeoff"``) or a
    sequence of ids; ``None`` means "all figures" and maps to
    ``(None, None)``.  ``"6"`` and ``"7"`` both name the combined
    Figure 6/7 module.  Unknown ids raise
    :class:`~repro.errors.OrchestrationError`.
    """
    if figures is None:
        return None, None
    if isinstance(figures, str):
        wanted = [item.strip() for item in figures.split(",") if item.strip()]
    else:
        wanted = [str(item) for item in figures]
    if not wanted:
        return None, None
    aliases = {number: module for number, module in FIGURE_MODULES}
    aliases["6"] = aliases["7"] = aliases["6/7"]
    unknown = sorted(set(wanted) - set(aliases))
    if unknown:
        raise OrchestrationError(
            f"unknown figure id(s): {', '.join(unknown)} "
            f"(choose from {', '.join(n for n, _ in FIGURE_MODULES)})"
        )
    numbers: List[str] = []
    modules: List[str] = []
    for item in wanted:
        module = aliases[item]
        number = next(n for n, m in FIGURE_MODULES if m == module)
        if module not in modules:
            modules.append(module)
            numbers.append(number)
    return numbers, modules


def generate_report(
    ctx: ExperimentContext, figures: Optional[List[str]] = None
) -> str:
    """Run the selected figures (default: all) and return the report text.

    This is the sanctioned figure-assembly path (it enters the service
    scope, so the figure modules' deprecated direct entry points do not
    warn); user code should reach it through
    :class:`repro.fleet.ExperimentService.fetch`.

    Args:
        ctx: experiment context (results come from its cache when warm).
        figures: figure numbers to include (e.g. ``["2", "12"]``).
    """
    wanted = set(figures) if figures else None
    sections = [
        "PGSS-Sim reproduction report",
        f"scale: {ctx.scale.name} "
        f"({ctx.scale.benchmark_ops:,} ops/benchmark, "
        f"{len(ctx.benchmarks)} benchmarks)",
        "=" * 72,
    ]
    for number, module_name in FIGURE_MODULES:
        if wanted is not None and number not in wanted:
            continue
        module = importlib.import_module(
            f".{module_name}", "repro.experiments"
        )
        with service_scope():
            result = module.run(ctx)
        sections.append(module.format_result(result))
        sections.append("-" * 72)
    return "\n\n".join(sections)

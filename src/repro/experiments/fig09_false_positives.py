"""Figure 9: fraction of detected phase changes that are false positives.

"False positives are detrimental because they cause excess samples to be
taken by creating a new phase where there is no difference in performance.
False positives should be minimized by setting the threshold as high as
possible, but not at the expense of missing important performance
changes."  The false-positive share falls as the threshold rises.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

import numpy as np

from ..phase.threshold import false_positive_rate
from .cells import ExperimentCell, trace_cell
from .fig07_change_distribution import DEFAULT_PERIOD_FACTOR, change_pairs_per_benchmark
from .fig08_detection_rate import SIGMA_LEVELS, THRESHOLDS_PI
from .formatting import table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells"]


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: every benchmark's reference trace."""
    return [trace_cell(name) for name in ctx.benchmarks]


@figure_entry
def run(
    ctx: ExperimentContext, period_factor: int = DEFAULT_PERIOD_FACTOR
) -> Dict[str, Any]:
    """Compute the equally-weighted false-positive curves."""
    per_benchmark = change_pairs_per_benchmark(ctx, period_factor)
    curves: Dict[str, List[float]] = {}
    for sigma in SIGMA_LEVELS:
        rates = []
        for th in THRESHOLDS_PI:
            per_bench = [
                false_positive_rate(pairs, th * math.pi, sigma)
                for pairs in per_benchmark.values()
                if pairs
            ]
            rates.append(float(np.mean(per_bench)))
        curves[f"{sigma:.1f}"] = rates
    return {"thresholds_pi": list(THRESHOLDS_PI), "curves": curves}


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-9 table: false-positive share per threshold and sigma level."""
    rows = []
    for i, th in enumerate(result["thresholds_pi"]):
        if th not in (0.0, 0.02, 0.04, 0.06, 0.1, 0.2, 0.3, 0.4, 0.5):
            continue
        row = [f"{th:.2f}pi"]
        for sigma in SIGMA_LEVELS:
            row.append(f"{100 * result['curves'][f'{sigma:.1f}'][i]:5.1f}%")
        rows.append(row)
    header = (
        "Figure 9 — false-positive share of detected phase changes vs "
        "threshold\n(falls as the threshold rises; rises with the "
        "IPC-significance bar)\n"
    )
    return header + table(
        ["threshold"] + [f">{s:.1f}s" for s in SIGMA_LEVELS], rows
    )

"""Extension experiment: the stratified-sampling gain, measured.

Section 2.2's quantitative core: "It has been shown in [17] that by taking
phase behavior into account in the SMARTS system, the number of samples
needed can be reduced by over forty times over full SMARTS simulation."

For every benchmark this experiment labels the reference trace's fine
windows with (a) the ground-truth behaviour script and (b) the online
classifier's phases at the canonical threshold, then computes how many
samples a 3%-at-99.7% estimate of mean window IPC needs with and without
each stratification.  The gain from detected phases approaching the gain
from ground truth is the direct measure of phase-detection quality.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

import numpy as np

from ..phase import OnlinePhaseClassifier
from ..sampling.full import ReferenceTrace
from ..stats.sampling_theory import required_samples_comparison
from .cells import ExperimentCell, trace_cell
from .formatting import table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells"]

#: Classifier threshold used for the detected-phase labelling.
THRESHOLD_PI = 0.05


def _labels_from_truth(
    ctx: ExperimentContext, name: str, trace: ReferenceTrace
) -> List[int]:
    program = ctx.program(name)
    behaviors = sorted(program.behaviors)
    index = {b: i for i, b in enumerate(behaviors)}
    labels = []
    offset = 0
    for ops in trace.ops:
        labels.append(index[program.true_phase_at(offset)])
        offset += int(ops)
    return labels


def _labels_from_classifier(trace: ReferenceTrace) -> List[int]:
    classifier = OnlinePhaseClassifier(THRESHOLD_PI * math.pi)
    labels = []
    for bbv, ops in zip(trace.normalized_bbvs(), trace.ops):
        labels.append(classifier.observe(bbv, int(ops)).phase_id)
    return labels


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: every benchmark's reference trace."""
    return [trace_cell(name) for name in ctx.benchmarks]


@figure_entry
def run(ctx: ExperimentContext) -> Dict[str, Any]:
    """Compute per-benchmark stratification gains."""
    rows = {}
    for name in ctx.benchmarks:
        trace = ctx.trace(name)
        ipcs = trace.ipcs.tolist()
        truth = required_samples_comparison(
            ipcs, _labels_from_truth(ctx, name, trace)
        )
        detected = required_samples_comparison(
            ipcs, _labels_from_classifier(trace)
        )
        rows[name] = {
            "unstratified_samples": truth["unstratified"],
            "truth_samples": truth["stratified"],
            "truth_gain": truth["gain"],
            "detected_samples": detected["stratified"],
            "detected_gain": detected["gain"],
        }
    gains = [r["detected_gain"] for r in rows.values()]
    return {
        "benchmarks": rows,
        "mean_detected_gain": float(np.mean(gains)),
        "max_detected_gain": float(np.max(gains)),
    }


def format_result(result: Dict[str, Any]) -> str:
    """Per-benchmark required-sample table with gain columns."""
    rows = []
    for name, stats in result["benchmarks"].items():
        rows.append(
            [
                name,
                f"{stats['unstratified_samples']:,.0f}",
                f"{stats['truth_samples']:,.0f}",
                f"{stats['truth_gain']:.1f}x",
                f"{stats['detected_samples']:,.0f}",
                f"{stats['detected_gain']:.1f}x",
            ]
        )
    header = (
        "Extension — stratified-sampling gain (3% @ 99.7% on window IPC)\n"
        f"mean gain from detected phases: "
        f"{result['mean_detected_gain']:.1f}x (max "
        f"{result['max_detected_gain']:.1f}x; the paper's [17] reports "
        ">40x at full SPEC scale)\n"
    )
    return header + table(
        [
            "benchmark",
            "unstratified",
            "true-phase",
            "gain",
            "detected-phase",
            "gain",
        ],
        rows,
    )

"""Figure 2: IPC vs completed ops for 164.gzip at four sampling periods.

The paper's point: 164.gzip shows "periods of wild variations in IPC at
very small measurement periods" that are "averaged out, and therefore
invisible when the sampling period is large".  Quantitatively, the
standard deviation of the per-period IPC series shrinks as the period
grows; the series themselves are returned for plotting.

Periods scale the paper's 100k/1M/10M/100M ladder by the configured trace
window (each period is a power-of-five multiple of it, spanning three
orders of magnitude as in the paper).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from .cells import ExperimentCell, trace_cell
from .formatting import fmt_ops, table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "BENCHMARK"]

BENCHMARK = "164.gzip"

#: Multiples of the trace window forming the period ladder (1x .. 125x,
#: mirroring the paper's 100k .. 100M three-decade sweep).
PERIOD_FACTORS = (1, 5, 25, 125)


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: the subject benchmark's reference trace."""
    return [trace_cell(BENCHMARK)]


@figure_entry
def run(ctx: ExperimentContext, benchmark: str = BENCHMARK) -> Dict[str, Any]:
    """Compute the per-period IPC series and their dispersion."""
    trace = ctx.trace(benchmark)
    result: Dict[str, Any] = {
        "benchmark": benchmark,
        "true_ipc": trace.true_ipc,
        "series": [],
    }
    for factor in PERIOD_FACTORS:
        agg = trace.aggregate(factor)
        ipcs = agg.ipcs
        offsets = np.cumsum(agg.ops).tolist()
        result["series"].append(
            {
                "period_ops": agg.window_ops_target,
                "offsets": offsets,
                "ipcs": ipcs.tolist(),
                "std": float(ipcs.std(ddof=0)),
                "min": float(ipcs.min()),
                "max": float(ipcs.max()),
            }
        )
    return result


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-2 summary: per-period IPC dispersion (shrinks with period)."""
    rows: List[List[str]] = []
    for series in result["series"]:
        rows.append(
            [
                fmt_ops(series["period_ops"]),
                str(len(series["ipcs"])),
                f"{series['std']:.4f}",
                f"{series['min']:.3f}",
                f"{series['max']:.3f}",
            ]
        )
    header = (
        f"Figure 2 — IPC vs completed ops, {result['benchmark']} "
        f"(true IPC {result['true_ipc']:.3f})\n"
        "Fine-grained variation averages out as the sampling period grows:\n"
    )
    return header + table(
        ["period", "points", "IPC std", "min", "max"], rows
    )

"""The shared experiment context.

Owns the scale configuration, machine model, and result cache, and
provides the primitives every figure module needs: fresh programs, cached
reference traces, true IPCs, and cached technique runs.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..config import DEFAULT_MACHINE, MachineConfig, Scale, ScaleConfig
from ..program import Program, WORKLOAD_NAMES, get_workload
from ..sampling.base import SamplingResult, SamplingTechnique
from ..sampling.full import ReferenceTrace, collect_reference_trace
from .cache import ResultCache

__all__ = ["ExperimentContext"]


class ExperimentContext:
    """Everything a figure module needs to run.

    Args:
        scale: interval-scale configuration (default: ``Scale.SCALED``).
        machine: simulated machine.
        cache_dir: result-cache directory (default: ``<repo>/.expcache``).
        benchmarks: workload subset (default: the paper's ten).
    """

    def __init__(
        self,
        scale: ScaleConfig = Scale.SCALED,
        machine: MachineConfig = DEFAULT_MACHINE,
        cache_dir: Optional[Path] = None,
        benchmarks: Optional[List[str]] = None,
    ) -> None:
        self.scale = scale
        self.machine = machine
        self.cache = ResultCache(cache_dir)
        self.benchmarks = list(benchmarks) if benchmarks else list(WORKLOAD_NAMES)

    def _machine_key(self) -> Dict[str, Any]:
        return asdict(self.machine)

    def program(self, name: str) -> Program:
        """A fresh instance of workload *name* at this context's scale."""
        return get_workload(name, self.scale)

    def trace(self, name: str) -> ReferenceTrace:
        """Cached instrumented full-detail trace of workload *name*."""
        payload = {
            "kind": "trace",
            "benchmark": name,
            "scale": self.scale.name,
            "ops": self.scale.benchmark_ops,
            "window": self.scale.trace_window,
            "machine": self._machine_key(),
        }
        return self.cache.trace(
            payload,
            lambda: collect_reference_trace(
                self.program(name), self.scale.trace_window, machine=self.machine
            ),
        )

    def true_ipc(self, name: str) -> float:
        """Ground-truth IPC of workload *name* (from the cached trace)."""
        return self.trace(name).true_ipc

    def run_cached(
        self,
        benchmark: str,
        technique: SamplingTechnique,
        config_key: Dict[str, Any],
        runner: Optional[Callable[[], SamplingResult]] = None,
    ) -> Dict[str, Any]:
        """Run *technique* on *benchmark* with caching.

        Args:
            benchmark: workload name.
            technique: configured technique instance.
            config_key: JSON-able description of the configuration (cache
                key component).
            runner: optional override of the default
                ``technique.run(program)`` call (e.g. to pass a trace).

        Returns a plain dict with the result fields needed by the figures.
        """
        payload = {
            "kind": "technique",
            "benchmark": benchmark,
            "technique": technique.name,
            "config": config_key,
            "scale": self.scale.name,
            "ops": self.scale.benchmark_ops,
            "machine": self._machine_key(),
        }

        def compute() -> Dict[str, Any]:
            result = runner() if runner else technique.run(self.program(benchmark))
            return {
                "technique": result.technique,
                "benchmark": result.program,
                "ipc_estimate": result.ipc_estimate,
                "detailed_ops": result.detailed_ops,
                "total_ops": result.total_ops,
                "n_samples": result.n_samples,
                "extras": _jsonable(result.extras),
            }

        return self.cache.json(payload, compute)


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of extras to JSON-compatible values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)

"""The shared experiment context and the sanctioned-entry machinery.

Owns the scale configuration, machine model, and result cache, and
provides the primitives every figure module needs: fresh programs, cached
reference traces, true IPCs, and cached technique runs.

This module is also where the experiment API's front door is enforced.
Figure modules decorate their ``run()`` with :func:`figure_entry`; a
direct call from user code raises a :class:`DeprecationWarning` steering
it to :class:`repro.fleet.ExperimentService`, while the sanctioned paths
(report assembly, cell execution, the service itself) run inside
:func:`service_scope` and stay silent.  The simlint rule HYG006 flags
the same direct calls statically.
"""

from __future__ import annotations

import contextvars
import functools
import warnings
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar, cast

from ..config import DEFAULT_MACHINE, MachineConfig, Scale, ScaleConfig
from ..cpu.checkpoints import CheckpointFile
from ..program import Program, WORKLOAD_NAMES, get_workload
from ..sampling.base import SamplingResult, SamplingTechnique
from ..sampling.full import ReferenceTrace, collect_reference_trace
from .cache import ResultCache

__all__ = [
    "ExperimentContext",
    "figure_entry",
    "in_service_scope",
    "service_scope",
]

F = TypeVar("F", bound=Callable[..., Any])

#: True while executing inside the experiment service (report assembly,
#: cell execution, service fetch); direct figure entry points only warn
#: when this is unset.
_SERVICE_SCOPE: "contextvars.ContextVar[bool]" = contextvars.ContextVar(
    "pgss_service_scope", default=False
)


@contextmanager
def service_scope() -> Iterator[None]:
    """Mark the enclosed block as running inside the experiment service."""
    token = _SERVICE_SCOPE.set(True)
    try:
        yield
    finally:
        _SERVICE_SCOPE.reset(token)


def in_service_scope() -> bool:
    """True when called from a sanctioned experiment-service path."""
    return _SERVICE_SCOPE.get()


def figure_entry(func: F) -> F:
    """Deprecation shim for direct figure-module ``run(ctx)`` calls.

    The figure modules remain importable and callable (existing
    notebooks and tests keep working), but a call from outside the
    service emits a :class:`DeprecationWarning` pointing at the
    supported API: ``ExperimentService.submit`` / ``fetch``.
    """

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not _SERVICE_SCOPE.get():
            warnings.warn(
                f"direct call to {func.__module__}.{func.__name__}() is "
                "deprecated; submit the figure through "
                "repro.fleet.ExperimentService (pgss-sim jobs submit) and "
                "assemble it with fetch()",
                DeprecationWarning,
                stacklevel=2,
            )
        return func(*args, **kwargs)

    return cast(F, wrapper)


class ExperimentContext:
    """Everything a figure module needs to run.

    Args:
        scale: interval-scale configuration (default: ``Scale.SCALED``).
        machine: simulated machine.
        cache_dir: result-cache directory (default: ``<repo>/.expcache``).
        benchmarks: workload subset (default: the paper's ten).
        checkpoint_dir: when set, long DETAIL cells (reference-trace
            collection) persist periodic engine checkpoints under this
            directory and resume from them on a retry — the fleet worker
            points this at the queue's per-task checkpoint directory.
        checkpoint_windows: trace windows between two checkpoint saves
            (ignored unless ``checkpoint_dir`` is set).
    """

    def __init__(
        self,
        scale: ScaleConfig = Scale.SCALED,
        machine: MachineConfig = DEFAULT_MACHINE,
        cache_dir: Optional[Path] = None,
        benchmarks: Optional[List[str]] = None,
        checkpoint_dir: Optional[Path] = None,
        checkpoint_windows: int = 0,
    ) -> None:
        self.scale = scale
        self.machine = machine
        self.cache = ResultCache(cache_dir)
        self.benchmarks = list(benchmarks) if benchmarks else list(WORKLOAD_NAMES)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_windows = int(checkpoint_windows)

    def _machine_key(self) -> Dict[str, Any]:
        return asdict(self.machine)

    def program(self, name: str) -> Program:
        """A fresh instance of workload *name* at this context's scale."""
        return get_workload(name, self.scale)

    def trace(self, name: str) -> ReferenceTrace:
        """Cached instrumented full-detail trace of workload *name*.

        When the context has a checkpoint directory, a cache miss is
        computed resumably: the engine snapshot is persisted every
        ``checkpoint_windows`` windows under a file keyed exactly like
        the cache entry, so a killed worker's successor continues from
        the last snapshot instead of op 0 — with byte-identical output.
        """
        payload = {
            "kind": "trace",
            "benchmark": name,
            "scale": self.scale.name,
            "ops": self.scale.benchmark_ops,
            "window": self.scale.trace_window,
            "machine": self._machine_key(),
        }

        def compute() -> ReferenceTrace:
            checkpoint = None
            if self.checkpoint_dir is not None and self.checkpoint_windows > 0:
                checkpoint = CheckpointFile(
                    self.checkpoint_dir / f"{self.cache.key(payload)}.trace.ckpt"
                )
            return collect_reference_trace(
                self.program(name),
                self.scale.trace_window,
                machine=self.machine,
                checkpoint=checkpoint,
                checkpoint_windows=self.checkpoint_windows,
            )

        return self.cache.trace(payload, compute)

    def true_ipc(self, name: str) -> float:
        """Ground-truth IPC of workload *name* (from the cached trace)."""
        return self.trace(name).true_ipc

    def run_cached(
        self,
        benchmark: str,
        technique: SamplingTechnique,
        config_key: Dict[str, Any],
        runner: Optional[Callable[[], SamplingResult]] = None,
    ) -> Dict[str, Any]:
        """Run *technique* on *benchmark* with caching.

        Args:
            benchmark: workload name.
            technique: configured technique instance.
            config_key: JSON-able description of the configuration (cache
                key component).
            runner: optional override of the default
                ``technique.run(program)`` call (e.g. to pass a trace).

        Returns a plain dict with the result fields needed by the figures.
        """
        payload = {
            "kind": "technique",
            "benchmark": benchmark,
            "technique": technique.name,
            "config": config_key,
            "scale": self.scale.name,
            "ops": self.scale.benchmark_ops,
            "machine": self._machine_key(),
        }

        def compute() -> Dict[str, Any]:
            result = runner() if runner else technique.run(self.program(benchmark))
            return {
                "technique": result.technique,
                "benchmark": result.program,
                "ipc_estimate": result.ipc_estimate,
                "detailed_ops": result.detailed_ops,
                "total_ops": result.total_ops,
                "n_samples": result.n_samples,
                "extras": _jsonable(result.extras),
            }

        return self.cache.json(payload, compute)


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of extras to JSON-compatible values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)

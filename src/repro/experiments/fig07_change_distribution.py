"""Figures 6 and 7: the (BBV change, IPC change) joint distribution.

For every pair of consecutive BBV sampling periods across all ten
benchmarks, the BBV change (angle) is paired with the IPC change in units
of that benchmark's IPC standard deviation ("so that samples can be
meaningfully compared against data from other benchmarks"; "all benchmarks
are weighted equally").

Figure 7 is the 2-D distribution; Figure 6's four-region taxonomy is
evaluated quantitatively for a reference threshold pair.  The paper's
reading of its Fig. 7: "BBV changes greater than approximately .05 pi
radians typically correspond to a large change in IPC".
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

import numpy as np

from ..phase.threshold import ChangePair, consecutive_changes, region_counts
from .cells import ExperimentCell, trace_cell
from .formatting import table
from .runner import ExperimentContext, figure_entry

__all__ = [
    "run",
    "format_result",
    "cells",
    "change_pairs_per_benchmark",
    "DEFAULT_PERIOD_FACTOR",
]

#: The analysis period as a multiple of the trace window (the paper uses
#: its finest Fig.-11 period, 100k; scaled here to 4 windows = 20k).
DEFAULT_PERIOD_FACTOR = 4

#: Reference thresholds for the Fig. 6 region accounting.
REFERENCE_BBV_THRESHOLD_PI = 0.05
REFERENCE_IPC_SIGMA = 0.3


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """Cacheable units: every benchmark's reference trace."""
    return [trace_cell(name) for name in ctx.benchmarks]


def change_pairs_per_benchmark(
    ctx: ExperimentContext, period_factor: int = DEFAULT_PERIOD_FACTOR
) -> Dict[str, List[ChangePair]]:
    """Consecutive-period change pairs for every benchmark in the context."""
    pairs: Dict[str, List[ChangePair]] = {}
    for name in ctx.benchmarks:
        trace = ctx.trace(name).aggregate(period_factor)
        bbvs = list(trace.normalized_bbvs())
        pairs[name] = consecutive_changes(bbvs, trace.ipcs.tolist())
    return pairs


@figure_entry
def run(
    ctx: ExperimentContext,
    period_factor: int = DEFAULT_PERIOD_FACTOR,
    angle_bins: int = 25,
    sigma_bins: int = 20,
) -> Dict[str, Any]:
    """Compute the equally-weighted 2-D histogram and region counts."""
    per_benchmark = change_pairs_per_benchmark(ctx, period_factor)

    # Equal benchmark weighting: average the per-benchmark percentage
    # histograms rather than pooling raw counts.
    hist_sum = np.zeros((angle_bins, sigma_bins))
    angle_edges = sigma_edges = None
    max_angle_pi, max_sigma = 0.5, 1.0
    for pairs in per_benchmark.values():
        angles = np.array([min(p.bbv_angle / math.pi, max_angle_pi) for p in pairs])
        sigmas = np.array([min(p.ipc_sigma, max_sigma) for p in pairs])
        hist, angle_edges, sigma_edges = np.histogram2d(
            angles,
            sigmas,
            bins=(angle_bins, sigma_bins),
            range=((0.0, max_angle_pi), (0.0, max_sigma)),
        )
        if hist.sum():
            hist_sum += 100.0 * hist / hist.sum()
    percent = hist_sum / len(per_benchmark)

    regions = {1: 0, 2: 0, 3: 0, 4: 0}
    for pairs in per_benchmark.values():
        counts = region_counts(
            pairs,
            REFERENCE_BBV_THRESHOLD_PI * math.pi,
            REFERENCE_IPC_SIGMA,
        )
        for region in regions:
            regions[region] += counts[region]

    # The paper's headline observation: what fraction of large IPC changes
    # (> .3 sigma) coincide with BBV changes above .05 pi.
    hits, misses = regions[2], regions[1]
    return {
        "period_factor": period_factor,
        "angle_edges_pi": angle_edges.tolist(),
        "sigma_edges": sigma_edges.tolist(),
        "percent": percent.tolist(),
        "regions": {str(k): v for k, v in regions.items()},
        "n_pairs": sum(len(p) for p in per_benchmark.values()),
        "big_change_detection": hits / (hits + misses) if hits + misses else 1.0,
    }


def format_result(result: Dict[str, Any]) -> str:
    """Fig. 6/7 summary: region table and coarse 2-D density."""
    regions = result["regions"]
    rows = [
        ["1 (IPC change missed)", str(regions["1"])],
        ["2 (IPC change detected)", str(regions["2"])],
        ["3 (no change, no detect)", str(regions["3"])],
        ["4 (false positive)", str(regions["4"])],
    ]
    header = (
        f"Figure 6/7 — change distribution over {result['n_pairs']} "
        f"consecutive-period pairs (threshold .05pi, significance .3 sigma)\n"
        f">{REFERENCE_IPC_SIGMA} sigma IPC changes detected: "
        f"{100 * result['big_change_detection']:.1f}%\n"
    )
    # Compact density: marginal over 5 angle bands x 4 sigma bands.
    percent = np.array(result["percent"])
    bands = []
    a_step = percent.shape[0] // 5
    s_step = percent.shape[1] // 4
    for ai in range(5):
        row = [f"{ai * 0.1:.1f}-{(ai + 1) * 0.1:.1f}pi"]
        for si in range(4):
            block = percent[
                ai * a_step : (ai + 1) * a_step, si * s_step : (si + 1) * s_step
            ]
            row.append(f"{block.sum():5.1f}%")
        bands.append(row)
    density = table(
        ["BBV change", "<.25s", ".25-.5s", ".5-.75s", ">.75s"], bands
    )
    return header + table(["Fig. 6 region", "pairs"], rows) + "\n\n" + density

"""Figure 11: PGSS sampling error across BBV periods and thresholds.

Every benchmark is run under PGSS-Sim for each (BBV sampling period,
threshold) combination — three periods by five thresholds, as in the
paper.  Reported per configuration: per-benchmark percent error plus
A-Mean and G-Mean.  The paper's findings this sweep should reproduce:

* each benchmark performs best with a different parameter set;
* a mid-length period with a tight threshold is the best overall
  configuration (the paper: 1M ops at .05 pi);
* the micro-phased, low-IPC benchmarks (179.art, 181.mcf) perform very
  poorly at the shortest period and improve at longer ones.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..sampling.pgss import Pgss, PgssConfig
from ..stats.errors_metrics import arithmetic_mean, geometric_mean
from .cells import ExperimentCell, trace_cell
from .formatting import fmt_ops, fmt_pct, table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "run_cell", "run_single", "best_configs"]


def run_single(
    ctx: ExperimentContext, benchmark: str, period: int, threshold_pi: float
) -> Dict[str, Any]:
    """One cached PGSS run; returns the cached result dict plus error."""
    config = PgssConfig.from_scale(
        ctx.scale, bbv_period_ops=period, threshold_pi=threshold_pi
    )
    technique = Pgss(config, machine=ctx.machine)
    result = ctx.run_cached(
        benchmark,
        technique,
        {
            "period": period,
            "threshold": threshold_pi,
            "detail": config.detail_ops,
            "warm": config.warmup_ops,
            "spread": config.spread_ops,
            "rel": config.rel_error,
        },
    )
    result = dict(result)
    result["error_pct"] = 100.0 * abs(
        result["ipc_estimate"] - ctx.true_ipc(benchmark)
    ) / ctx.true_ipc(benchmark)
    return result


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """One cell per (benchmark, period, threshold) sweep point."""
    out = [trace_cell(name) for name in ctx.benchmarks]
    for period in ctx.scale.pgss_periods:
        for threshold in ctx.scale.thresholds:
            for benchmark in ctx.benchmarks:
                out.append(
                    ExperimentCell.make(
                        "fig11_pgss_sweep",
                        benchmark,
                        period=period,
                        threshold_pi=threshold,
                    )
                )
    return out


def run_cell(ctx: ExperimentContext, benchmark: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Parallel-driver entry: one cached PGSS sweep point."""
    return run_single(ctx, benchmark, params["period"], params["threshold_pi"])


@figure_entry
def run(ctx: ExperimentContext) -> Dict[str, Any]:
    """The full period x threshold sweep over the benchmark suite."""
    grid: List[Dict[str, Any]] = []
    for period in ctx.scale.pgss_periods:
        for threshold in ctx.scale.thresholds:
            errors: Dict[str, float] = {}
            details: Dict[str, int] = {}
            for benchmark in ctx.benchmarks:
                res = run_single(ctx, benchmark, period, threshold)
                errors[benchmark] = res["error_pct"]
                details[benchmark] = res["detailed_ops"]
            values = list(errors.values())
            grid.append(
                {
                    "period": period,
                    "threshold_pi": threshold,
                    "errors": errors,
                    "detailed_ops": details,
                    "a_mean": arithmetic_mean(values),
                    "g_mean": geometric_mean(values),
                }
            )
    best_overall = min(grid, key=lambda g: g["a_mean"])
    per_benchmark_best: Dict[str, Dict[str, Any]] = {}
    for benchmark in ctx.benchmarks:
        best = min(grid, key=lambda g: g["errors"][benchmark])
        per_benchmark_best[benchmark] = {
            "period": best["period"],
            "threshold_pi": best["threshold_pi"],
            "error_pct": best["errors"][benchmark],
            "detailed_ops": best["detailed_ops"][benchmark],
        }
    return {
        "grid": grid,
        "best_overall": {
            "period": best_overall["period"],
            "threshold_pi": best_overall["threshold_pi"],
            "a_mean": best_overall["a_mean"],
            "g_mean": best_overall["g_mean"],
        },
        "per_benchmark_best": per_benchmark_best,
        "benchmarks": list(ctx.benchmarks),
    }


def best_configs(result: Dict[str, Any]) -> Tuple[int, float]:
    """The sweep's best overall (period, threshold) pair."""
    best = result["best_overall"]
    return best["period"], best["threshold_pi"]


def format_result(result: Dict[str, Any]) -> str:
    """Fig.-11 table: error per benchmark for every configuration."""
    benchmarks = result["benchmarks"]
    short = [b.split(".")[1] for b in benchmarks]
    rows = []
    for entry in result["grid"]:
        row = [fmt_ops(entry["period"]), f".{int(entry['threshold_pi'] * 100):02d}"]
        row += [fmt_pct(entry["errors"][b]) for b in benchmarks]
        row += [fmt_pct(entry["a_mean"]), fmt_pct(entry["g_mean"])]
        rows.append(row)
    best = result["best_overall"]
    header = (
        "Figure 11 — PGSS sampling error (percent of benchmark IPC)\n"
        f"best overall configuration: {fmt_ops(best['period'])} period at "
        f".{int(best['threshold_pi'] * 100):02d}pi "
        f"(A-Mean {fmt_pct(best['a_mean'])})\n"
    )
    return header + table(
        ["period", "thr"] + short + ["A-Mean", "G-Mean"], rows
    )

"""Extension experiment: the accuracy / detailed-simulation Pareto frontier.

Not a figure from the paper, but the question its Figure 12 begs: *for a
given detailed-op budget, which technique wins?*  SMARTS trades budget via
its sampling period, PGSS via its spread rule, two-phase stratified via
its total sample budget, and ranked-set via its set size; sweeping each
produces an error-vs-detail curve per technique.  The paper's thesis
corresponds to the PGSS curve lying below-left of the SMARTS curve over
the low-budget region.

Also includes the functional-warming ablation: SMARTS with cold samples
(the pre-SMARTS sampling of Conte et al.) is biased because long-lifetime
state is stale at each sample — quantified here as the cold-vs-warm error
gap at equal budget.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List

from ..errors import OrchestrationError
from ..sampling.pgss import Pgss, PgssConfig
from ..sampling.ranked import RankedSetConfig, RankedSetSampling
from ..sampling.smarts import Smarts, SmartsConfig
from ..sampling.stratified import TwoPhaseStratified, TwoPhaseStratifiedConfig
from ..stats.errors_metrics import arithmetic_mean
from .cells import ExperimentCell, trace_cell
from .formatting import fmt_ops, fmt_pct, table
from .runner import ExperimentContext, figure_entry

__all__ = ["run", "format_result", "cells", "run_cell"]

#: SMARTS period multipliers swept (relative to the scale's canonical one).
SMARTS_PERIOD_FACTORS = (0.5, 1, 2, 4, 8)

#: PGSS spread multipliers swept (relative to the scale's canonical one).
PGSS_SPREAD_FACTORS = (0.25, 0.5, 1, 2, 4)

#: Stratified total-budget multipliers swept (relative to the scale's).
STRATIFIED_SAMPLE_FACTORS = (0.5, 1, 2, 4)

#: Ranked-set set sizes swept (bigger sets = fewer, better-ranked samples).
RANKED_SET_SIZES = (2, 3, 4, 5)


def _smarts_run(
    ctx: ExperimentContext, benchmark: str, period: int, warming: bool
) -> Dict[str, Any]:
    """One cached SMARTS sweep-point run on one benchmark."""
    cfg = replace(
        SmartsConfig.from_scale(ctx.scale),
        period_ops=period,
        functional_warming=warming,
    )
    return ctx.run_cached(
        benchmark,
        Smarts(cfg, ctx.machine),
        {"period": period, "warming": warming, "sweep": "tradeoff"},
    )


def _pgss_run(
    ctx: ExperimentContext, benchmark: str, spread: int
) -> Dict[str, Any]:
    """One cached PGSS sweep-point run on one benchmark."""
    cfg = PgssConfig.from_scale(ctx.scale, spread_ops=spread)
    return ctx.run_cached(
        benchmark,
        Pgss(cfg, ctx.machine),
        {"spread": spread, "sweep": "tradeoff"},
    )


def _stratified_run(
    ctx: ExperimentContext, benchmark: str, samples: int
) -> Dict[str, Any]:
    """One cached two-phase stratified sweep-point run on one benchmark."""
    cfg = TwoPhaseStratifiedConfig.from_scale(ctx.scale, total_samples=samples)
    return ctx.run_cached(
        benchmark,
        TwoPhaseStratified(cfg, ctx.machine),
        {"samples": samples, "sweep": "tradeoff"},
    )


def _ranked_run(
    ctx: ExperimentContext, benchmark: str, set_size: int
) -> Dict[str, Any]:
    """One cached ranked-set sweep-point run on one benchmark."""
    cfg = RankedSetConfig.from_scale(ctx.scale, set_size=set_size)
    return ctx.run_cached(
        benchmark,
        RankedSetSampling(cfg, ctx.machine),
        {"set": set_size, "sweep": "tradeoff"},
    )


def _sweep_point(
    ctx: ExperimentContext, results: List[Dict[str, Any]]
) -> Dict[str, float]:
    """Suite-level error/cost summary of one sweep point's runs."""
    errors = []
    details = []
    for name, res in zip(ctx.benchmarks, results):
        true = ctx.true_ipc(name)
        errors.append(100.0 * abs(res["ipc_estimate"] - true) / true)
        details.append(res["detailed_ops"])
    return {
        "a_mean_error": arithmetic_mean(errors),
        "mean_detailed_ops": arithmetic_mean(details),
    }


def _smarts_point(
    ctx: ExperimentContext, period: int, warming: bool
) -> Dict[str, float]:
    return _sweep_point(
        ctx, [_smarts_run(ctx, b, period, warming) for b in ctx.benchmarks]
    )


def _pgss_point(ctx: ExperimentContext, spread: int) -> Dict[str, float]:
    return _sweep_point(
        ctx, [_pgss_run(ctx, b, spread) for b in ctx.benchmarks]
    )


def _stratified_point(ctx: ExperimentContext, samples: int) -> Dict[str, float]:
    return _sweep_point(
        ctx, [_stratified_run(ctx, b, samples) for b in ctx.benchmarks]
    )


def _ranked_point(ctx: ExperimentContext, set_size: int) -> Dict[str, float]:
    return _sweep_point(
        ctx, [_ranked_run(ctx, b, set_size) for b in ctx.benchmarks]
    )


def _smarts_periods(ctx: ExperimentContext) -> List[int]:
    return [int(ctx.scale.smarts_period * f) for f in SMARTS_PERIOD_FACTORS]


def _pgss_spreads(ctx: ExperimentContext) -> List[int]:
    return [
        max(int(ctx.scale.pgss_spread * f), ctx.scale.pgss_best_period)
        for f in PGSS_SPREAD_FACTORS
    ]


def _stratified_budgets(ctx: ExperimentContext) -> List[int]:
    return [
        max(int(ctx.scale.stratified_samples * f), 2)
        for f in STRATIFIED_SAMPLE_FACTORS
    ]


def cells(ctx: ExperimentContext) -> List[ExperimentCell]:
    """One cell per (sweep point, benchmark) pair for both techniques."""
    out = [trace_cell(name) for name in ctx.benchmarks]
    for period in _smarts_periods(ctx):
        for warming in (True, False):
            for benchmark in ctx.benchmarks:
                out.append(
                    ExperimentCell.make(
                        "tradeoff",
                        benchmark,
                        technique="smarts",
                        period=period,
                        warming=warming,
                    )
                )
    for spread in _pgss_spreads(ctx):
        for benchmark in ctx.benchmarks:
            out.append(
                ExperimentCell.make(
                    "tradeoff", benchmark, technique="pgss", spread=spread
                )
            )
    for samples in _stratified_budgets(ctx):
        for benchmark in ctx.benchmarks:
            out.append(
                ExperimentCell.make(
                    "tradeoff", benchmark, technique="stratified", samples=samples
                )
            )
    for set_size in RANKED_SET_SIZES:
        for benchmark in ctx.benchmarks:
            out.append(
                ExperimentCell.make(
                    "tradeoff", benchmark, technique="ranked", set_size=set_size
                )
            )
    return out


def run_cell(ctx: ExperimentContext, benchmark: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Parallel-driver entry: one cached sweep-point run."""
    technique = params["technique"]
    if technique == "smarts":
        return _smarts_run(ctx, benchmark, params["period"], params["warming"])
    if technique == "pgss":
        return _pgss_run(ctx, benchmark, params["spread"])
    if technique == "stratified":
        return _stratified_run(ctx, benchmark, params["samples"])
    if technique == "ranked":
        return _ranked_run(ctx, benchmark, params["set_size"])
    raise OrchestrationError(f"unknown tradeoff cell technique {technique!r}")


@figure_entry
def run(ctx: ExperimentContext) -> Dict[str, Any]:
    """Sweep both techniques' budget knobs; include the warming ablation."""
    smarts_curve: List[Dict[str, float]] = []
    cold_curve: List[Dict[str, float]] = []
    for period in _smarts_periods(ctx):
        smarts_curve.append(
            {"period": period, **_smarts_point(ctx, period, warming=True)}
        )
        cold_curve.append(
            {"period": period, **_smarts_point(ctx, period, warming=False)}
        )

    pgss_curve: List[Dict[str, float]] = []
    for spread in _pgss_spreads(ctx):
        pgss_curve.append({"spread": spread, **_pgss_point(ctx, spread)})

    stratified_curve: List[Dict[str, float]] = []
    for samples in _stratified_budgets(ctx):
        stratified_curve.append(
            {"samples": samples, **_stratified_point(ctx, samples)}
        )

    ranked_curve: List[Dict[str, float]] = []
    for set_size in RANKED_SET_SIZES:
        ranked_curve.append(
            {"set_size": set_size, **_ranked_point(ctx, set_size)}
        )

    # Warming ablation headline: cold-vs-warm error gap at the canonical
    # period.
    warm_base = smarts_curve[1]
    cold_base = cold_curve[1]
    return {
        "smarts": smarts_curve,
        "smarts_cold": cold_curve,
        "pgss": pgss_curve,
        "stratified": stratified_curve,
        "ranked": ranked_curve,
        "warming_gap": cold_base["a_mean_error"] - warm_base["a_mean_error"],
    }


def format_result(result: Dict[str, Any]) -> str:
    """The tradeoff table: detail budget vs error per technique."""
    rows = []
    for entry in result["smarts"]:
        rows.append(
            [
                "SMARTS (warm)",
                f"period {fmt_ops(entry['period'])}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    for entry in result["smarts_cold"]:
        rows.append(
            [
                "SMARTS (cold FF)",
                f"period {fmt_ops(entry['period'])}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    for entry in result["pgss"]:
        rows.append(
            [
                "PGSS",
                f"spread {fmt_ops(entry['spread'])}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    for entry in result.get("stratified", []):
        rows.append(
            [
                "Stratified",
                f"budget {entry['samples']}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    for entry in result.get("ranked", []):
        rows.append(
            [
                "RankedSet",
                f"set {entry['set_size']}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    header = (
        "Extension — accuracy vs detailed-simulation budget\n"
        f"cold fast-forwarding costs {result['warming_gap']:+.2f} points of "
        "A-mean error at the canonical SMARTS period "
        "(the functional-warming ablation)\n"
    )
    return header + table(["technique", "knob", "detail (mean)", "A-mean err"], rows)

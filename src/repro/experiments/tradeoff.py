"""Extension experiment: the accuracy / detailed-simulation Pareto frontier.

Not a figure from the paper, but the question its Figure 12 begs: *for a
given detailed-op budget, which technique wins?*  SMARTS trades budget via
its sampling period, PGSS via its spread rule; sweeping both produces an
error-vs-detail curve per technique.  The paper's thesis corresponds to
the PGSS curve lying below-left of the SMARTS curve over the low-budget
region.

Also includes the functional-warming ablation: SMARTS with cold samples
(the pre-SMARTS sampling of Conte et al.) is biased because long-lifetime
state is stale at each sample — quantified here as the cold-vs-warm error
gap at equal budget.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List

from ..sampling.pgss import Pgss, PgssConfig
from ..sampling.smarts import Smarts, SmartsConfig
from ..stats.errors_metrics import arithmetic_mean
from .formatting import fmt_ops, fmt_pct, table
from .runner import ExperimentContext

__all__ = ["run", "format_result"]

#: SMARTS period multipliers swept (relative to the scale's canonical one).
SMARTS_PERIOD_FACTORS = (0.5, 1, 2, 4, 8)

#: PGSS spread multipliers swept (relative to the scale's canonical one).
PGSS_SPREAD_FACTORS = (0.25, 0.5, 1, 2, 4)


def _smarts_point(
    ctx: ExperimentContext, period: int, warming: bool
) -> Dict[str, float]:
    errors = []
    details = []
    cfg = replace(
        SmartsConfig.from_scale(ctx.scale),
        period_ops=period,
        functional_warming=warming,
    )
    for name in ctx.benchmarks:
        res = ctx.run_cached(
            name,
            Smarts(cfg, ctx.machine),
            {"period": period, "warming": warming, "sweep": "tradeoff"},
        )
        true = ctx.true_ipc(name)
        errors.append(100.0 * abs(res["ipc_estimate"] - true) / true)
        details.append(res["detailed_ops"])
    return {
        "a_mean_error": arithmetic_mean(errors),
        "mean_detailed_ops": arithmetic_mean(details),
    }


def _pgss_point(ctx: ExperimentContext, spread: int) -> Dict[str, float]:
    errors = []
    details = []
    cfg = PgssConfig.from_scale(ctx.scale, spread_ops=spread)
    for name in ctx.benchmarks:
        res = ctx.run_cached(
            name,
            Pgss(cfg, ctx.machine),
            {"spread": spread, "sweep": "tradeoff"},
        )
        true = ctx.true_ipc(name)
        errors.append(100.0 * abs(res["ipc_estimate"] - true) / true)
        details.append(res["detailed_ops"])
    return {
        "a_mean_error": arithmetic_mean(errors),
        "mean_detailed_ops": arithmetic_mean(details),
    }


def run(ctx: ExperimentContext) -> Dict[str, Any]:
    """Sweep both techniques' budget knobs; include the warming ablation."""
    base_period = ctx.scale.smarts_period
    smarts_curve: List[Dict[str, float]] = []
    cold_curve: List[Dict[str, float]] = []
    for factor in SMARTS_PERIOD_FACTORS:
        period = int(base_period * factor)
        smarts_curve.append(
            {"period": period, **_smarts_point(ctx, period, warming=True)}
        )
        cold_curve.append(
            {"period": period, **_smarts_point(ctx, period, warming=False)}
        )

    base_spread = ctx.scale.pgss_spread
    pgss_curve: List[Dict[str, float]] = []
    for factor in PGSS_SPREAD_FACTORS:
        spread = max(int(base_spread * factor), ctx.scale.pgss_best_period)
        pgss_curve.append({"spread": spread, **_pgss_point(ctx, spread)})

    # Warming ablation headline: cold-vs-warm error gap at the canonical
    # period.
    warm_base = smarts_curve[1]
    cold_base = cold_curve[1]
    return {
        "smarts": smarts_curve,
        "smarts_cold": cold_curve,
        "pgss": pgss_curve,
        "warming_gap": cold_base["a_mean_error"] - warm_base["a_mean_error"],
    }


def format_result(result: Dict[str, Any]) -> str:
    """The tradeoff table: detail budget vs error per technique."""
    rows = []
    for entry in result["smarts"]:
        rows.append(
            [
                "SMARTS (warm)",
                f"period {fmt_ops(entry['period'])}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    for entry in result["smarts_cold"]:
        rows.append(
            [
                "SMARTS (cold FF)",
                f"period {fmt_ops(entry['period'])}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    for entry in result["pgss"]:
        rows.append(
            [
                "PGSS",
                f"spread {fmt_ops(entry['spread'])}",
                fmt_ops(entry["mean_detailed_ops"]),
                fmt_pct(entry["a_mean_error"]),
            ]
        )
    header = (
        "Extension — accuracy vs detailed-simulation budget\n"
        f"cold fast-forwarding costs {result['warming_gap']:+.2f} points of "
        "A-mean error at the canonical SMARTS period "
        "(the functional-warming ablation)\n"
    )
    return header + table(["technique", "knob", "detail (mean)", "A-mean err"], rows)

"""Two-bit-counter branch predictors: bimodal and gshare.

Only direction prediction is modelled; a wrong direction costs the machine's
mispredict penalty.  The pattern-history tables are plain Python lists of
2-bit saturating counters for speed and easy snapshotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..errors import ConfigurationError, SnapshotError

__all__ = ["BranchStats", "BranchPredictor", "BimodalPredictor", "GsharePredictor"]

#: 2-bit saturating counter values: 0-1 predict not-taken, 2-3 predict taken.
_WEAK_TAKEN = 2
_MAX_COUNTER = 3


@dataclass
class BranchStats:
    """Prediction accuracy counters."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (1.0 when never used)."""
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset(self) -> None:
        """Zero both counters."""
        self.predictions = 0
        self.mispredictions = 0


class BranchPredictor:
    """Abstract base: predict-and-update with one call per branch."""

    def __init__(self) -> None:
        self.stats = BranchStats()

    def predict_update(self, addr: int, taken: bool) -> bool:
        """Predict branch at *addr*, update state with the true outcome.

        Returns True when the prediction was correct.
        """
        raise NotImplementedError

    def is_steady(self, addr: int, taken: bool) -> bool:
        """Would :meth:`predict_update` predict correctly *and* change no
        state (tables, history) for this outcome?

        When True, any number of repetitions of the same (addr, taken)
        pair leaves the predictor byte-identical apart from the prediction
        counter — the branch-side steadiness probe of the detailed
        pipeline's closed-form fast path.
        """
        raise NotImplementedError

    def taken_streak(self, addr: int, limit: int) -> int:
        """Apply up to *limit* taken-outcome :meth:`predict_update` calls
        in bulk, stopping before the first one that would mispredict or
        write a table entry.

        Returns the number applied.  Every applied step is byte-identical
        to a real ``predict_update(addr, True)``: the prediction counter
        advances and any history register shifts, but no table entry moves
        and no misprediction is recorded.  The detailed pipeline uses this
        to collapse the uniformly-taken middle of a loop-controlled run —
        including the history-refill stretch right after the loop's final
        not-taken branch — into one call.
        """
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        """Capture predictor state for checkpointing."""
        raise NotImplementedError

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        raise NotImplementedError


class BimodalPredictor(BranchPredictor):
    """Per-address 2-bit counters indexed by low branch-address bits."""

    def __init__(self, table_bits: int = 12) -> None:
        super().__init__()
        if not 1 <= table_bits <= 24:
            raise ConfigurationError("table_bits must be in 1..24")
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._table: List[int] = [_WEAK_TAKEN] * (1 << table_bits)

    def predict_update(self, addr: int, taken: bool) -> bool:
        idx = (addr >> 2) & self._mask
        counter = self._table[idx]
        predicted = counter >= _WEAK_TAKEN
        correct = predicted == taken
        if taken:
            if counter < _MAX_COUNTER:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        self.stats.predictions += 1
        if not correct:
            self.stats.mispredictions += 1
        return correct

    def is_steady(self, addr: int, taken: bool) -> bool:
        counter = self._table[(addr >> 2) & self._mask]
        return counter == _MAX_COUNTER if taken else counter == 0

    def taken_streak(self, addr: int, limit: int) -> int:
        if limit <= 0:
            return 0
        # No history register: a saturated counter covers the whole span.
        if self._table[(addr >> 2) & self._mask] != _MAX_COUNTER:
            return 0
        self.stats.predictions += limit
        return limit

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "bimodal", "table": list(self._table)}

    def restore(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != "bimodal" or len(state["table"]) != len(self._table):
            raise SnapshotError("snapshot does not match this predictor")
        self._table = list(state["table"])


class GsharePredictor(BranchPredictor):
    """Global-history predictor: PC xor GHR indexes a 2-bit counter table."""

    def __init__(self, table_bits: int = 12) -> None:
        super().__init__()
        if not 1 <= table_bits <= 24:
            raise ConfigurationError("table_bits must be in 1..24")
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._table: List[int] = [_WEAK_TAKEN] * (1 << table_bits)
        self._history = 0

    def predict_update(self, addr: int, taken: bool) -> bool:
        idx = ((addr >> 2) ^ self._history) & self._mask
        counter = self._table[idx]
        predicted = counter >= _WEAK_TAKEN
        correct = predicted == taken
        if taken:
            if counter < _MAX_COUNTER:
                self._table[idx] = counter + 1
            self._history = ((self._history << 1) | 1) & self._mask
        else:
            if counter > 0:
                self._table[idx] = counter - 1
            self._history = (self._history << 1) & self._mask
        self.stats.predictions += 1
        if not correct:
            self.stats.mispredictions += 1
        return correct

    def is_steady(self, addr: int, taken: bool) -> bool:
        # The history register must be at its own fixed point (all-ones for
        # taken streaks, all-zeros for not-taken) or the shift would change
        # it — and with it the table index — every repetition.
        if taken:
            if self._history != self._mask:
                return False
            return self._table[((addr >> 2) ^ self._mask) & self._mask] == _MAX_COUNTER
        if self._history != 0:
            return False
        return self._table[(addr >> 2) & self._mask] == 0

    def taken_streak(self, addr: int, limit: int) -> int:
        if limit <= 0:
            return 0
        mask = self._mask
        table = self._table
        pc = addr >> 2
        h = self._history
        j = 0
        while j < limit:
            idx = (pc ^ h) & mask
            if table[idx] != _MAX_COUNTER:
                break
            if h == mask:
                # History at its fixed point and the (now constant) entry
                # saturated: every remaining step repeats silently.
                j = limit
                break
            h = ((h << 1) | 1) & mask
            j += 1
        if j:
            self._history = h
            self.stats.predictions += j
        return j

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "gshare",
            "table": list(self._table),
            "history": self._history,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != "gshare" or len(state["table"]) != len(self._table):
            raise SnapshotError("snapshot does not match this predictor")
        self._table = list(state["table"])
        self._history = state["history"]

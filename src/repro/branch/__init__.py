"""Branch-direction predictors used by the functional and detailed engines.

Both SMARTS-style fast-forwarding and detailed simulation keep the branch
predictor warm; the predictors here are snapshotable so checkpoints capture
them alongside the caches.
"""

from .predictors import BimodalPredictor, BranchPredictor, BranchStats, GsharePredictor

__all__ = ["BranchPredictor", "BimodalPredictor", "GsharePredictor", "BranchStats"]

"""Phase-transition point refinement (paper Section 7 future work).

"More accurately tracking exact phase transition points, as was proposed
in [5] (Lau et al., Selecting Software Phase Markers with Code Structure
Analysis), would both increase accuracy and reduce simulation time by more
accurately capturing phase behavior."

The classifier detects changes at BBV-period granularity, so each detected
transition is localised only to within one period; the interval straddling
the true boundary mixes two behaviours and pollutes whichever phase it is
attributed to.  :class:`TransitionRefiner` narrows a detected transition to
fine-window granularity by scanning the BBV series of the surrounding
periods for the largest consecutive-window angle — the sub-period point
where the code signature actually moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..signals.vector import angle_between
from ..errors import SamplingError

__all__ = ["RefinedTransition", "TransitionRefiner"]


@dataclass(frozen=True)
class RefinedTransition:
    """One localised phase boundary.

    Attributes:
        coarse_period: index of the period at which the classifier saw the
            change.
        fine_window: index (into the fine-window series) of the first
            window after the refined boundary.
        op_offset: cumulative op offset of the refined boundary.
        angle: BBV angle across the refined boundary (radians) — the
            evidence strength.
    """

    coarse_period: int
    fine_window: int
    op_offset: int
    angle: float


class TransitionRefiner:
    """Narrows period-granularity transitions to fine-window granularity.

    Args:
        fine_bbvs: per-fine-window normalised BBVs.
        fine_ops: per-fine-window op counts.
        windows_per_period: how many fine windows form one BBV period.
    """

    def __init__(
        self,
        fine_bbvs: Sequence[np.ndarray],
        fine_ops: Sequence[int],
        windows_per_period: int,
    ) -> None:
        if len(fine_bbvs) != len(fine_ops):
            raise SamplingError("fine_bbvs and fine_ops must match in length")
        if windows_per_period < 1:
            raise SamplingError("windows_per_period must be at least 1")
        self._bbvs = [np.asarray(b, dtype=np.float64) for b in fine_bbvs]
        self._ops = list(fine_ops)
        self._wpp = windows_per_period
        self._cum_ops = np.concatenate([[0], np.cumsum(self._ops)])

    def refine(self, change_period: int) -> RefinedTransition:
        """Locate the boundary behind a change detected at *change_period*.

        The classifier compares period ``change_period - 1`` against
        ``change_period``; the true boundary therefore lies somewhere in
        the fine windows spanning those two periods.  The refined point is
        the consecutive fine-window pair with the largest BBV angle.
        """
        if change_period < 1:
            raise SamplingError("change_period must be at least 1")
        lo = (change_period - 1) * self._wpp
        hi = min((change_period + 1) * self._wpp, len(self._bbvs))
        if hi - lo < 2:
            raise SamplingError("not enough fine windows around the change")

        best_idx = lo + 1
        best_angle = -1.0
        for i in range(lo + 1, hi):
            angle = angle_between(self._bbvs[i - 1], self._bbvs[i])
            if angle > best_angle:
                best_angle = angle
                best_idx = i
        return RefinedTransition(
            coarse_period=change_period,
            fine_window=best_idx,
            op_offset=int(self._cum_ops[best_idx]),
            angle=best_angle,
        )

    def refine_all(self, change_periods: Sequence[int]) -> List[RefinedTransition]:
        """Refine every detected transition, skipping unrefinable ones."""
        out = []
        for period in change_periods:
            try:
                out.append(self.refine(period))
            except SamplingError:
                continue
        return out

    def boundary_error_ops(
        self, refined: RefinedTransition, true_boundary_ops: int
    ) -> int:
        """Distance in ops between a refined boundary and the truth."""
        return abs(refined.op_offset - int(true_boundary_ops))

"""Online phase detection (paper Sections 3 and 4).

:class:`OnlinePhaseClassifier` implements the Figure 4/5 algorithm: at each
BBV sampling-period boundary the new normalised vector is compared first
against the previous period's vector (the cheap common case) and then
against every known phase's representative; an angle below the threshold
means "same phase", otherwise a new phase is created.

:mod:`repro.phase.threshold` holds the Section-4 threshold analysis — the
Figure 6 region taxonomy and the computations behind Figures 7-10 — and
:mod:`repro.phase.adaptive` implements the paper's future-work idea of
adapting the threshold to each benchmark automatically.
"""

from .profile import PhaseProfile
from .classifier import OnlinePhaseClassifier, PhaseDecision
from .threshold import (
    ChangePair,
    consecutive_changes,
    region_counts,
    detection_rate,
    false_positive_rate,
    detection_curve,
    false_positive_curve,
    phase_statistics,
    PhaseStatistics,
    change_histogram_2d,
)
from .adaptive import AdaptiveThresholdSelector
from .transition import RefinedTransition, TransitionRefiner
from .hierarchy import (
    HierarchyLevel,
    VariableInterval,
    hierarchical_phases,
    variable_length_intervals,
)

__all__ = [
    "RefinedTransition",
    "TransitionRefiner",
    "HierarchyLevel",
    "VariableInterval",
    "hierarchical_phases",
    "variable_length_intervals",
    "PhaseProfile",
    "OnlinePhaseClassifier",
    "PhaseDecision",
    "ChangePair",
    "consecutive_changes",
    "region_counts",
    "detection_rate",
    "false_positive_rate",
    "detection_curve",
    "false_positive_curve",
    "phase_statistics",
    "PhaseStatistics",
    "change_histogram_2d",
    "AdaptiveThresholdSelector",
]

"""Section-4 threshold analysis: the computations behind Figures 6-10.

The analysis operates on paired consecutive-period changes: for every pair
of adjacent sampling periods, the BBV change (angle, radians) and the IPC
change measured in units of the benchmark's own IPC standard deviation —
"all IPC changes are compared to the standard deviation of all samples
across the benchmark" so benchmarks can be compared on one axis.

Figure 6 splits the (BBV change, IPC change) plane into four regions:

* Region 1 — undetected change in IPC (miss),
* Region 2 — detected change in IPC (hit),
* Region 3 — no IPC change, not detected (true negative),
* Region 4 — false phase change detected (false positive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..signals.vector import angle_between
from ..errors import SamplingError
from .classifier import OnlinePhaseClassifier

__all__ = [
    "ChangePair",
    "consecutive_changes",
    "region_counts",
    "detection_rate",
    "false_positive_rate",
    "detection_curve",
    "false_positive_curve",
    "change_histogram_2d",
    "PhaseStatistics",
    "phase_statistics",
]


@dataclass(frozen=True)
class ChangePair:
    """One consecutive-period change observation.

    Attributes:
        bbv_angle: angle between the two periods' BBVs, radians.
        ipc_sigma: absolute IPC change in units of the benchmark's IPC
            standard deviation.
    """

    bbv_angle: float
    ipc_sigma: float


def consecutive_changes(
    bbvs: Sequence[np.ndarray], ipcs: Sequence[float]
) -> List[ChangePair]:
    """Build the change pairs from per-period BBV and IPC series.

    IPC changes are normalised by the standard deviation of the *whole*
    series (the paper's cross-benchmark normalisation).
    """
    if len(bbvs) != len(ipcs):
        raise SamplingError("bbvs and ipcs must be the same length")
    if len(bbvs) < 2:
        return []
    arr = np.asarray(ipcs, dtype=np.float64)
    sigma = float(arr.std(ddof=0))
    if sigma == 0.0:
        sigma = 1.0  # constant-IPC series: every change is 0 sigma anyway
    pairs = []
    for i in range(1, len(bbvs)):
        angle = angle_between(bbvs[i - 1], bbvs[i])
        dipc = abs(float(arr[i] - arr[i - 1])) / sigma
        pairs.append(ChangePair(bbv_angle=angle, ipc_sigma=dipc))
    return pairs


def region_counts(
    pairs: Sequence[ChangePair],
    bbv_threshold: float,
    ipc_threshold_sigma: float,
) -> Dict[int, int]:
    """Figure 6 region occupancy for one (BBV, IPC) threshold pair.

    Returns ``{1: misses, 2: hits, 3: true negatives, 4: false positives}``.
    """
    counts = {1: 0, 2: 0, 3: 0, 4: 0}
    for pair in pairs:
        significant = pair.ipc_sigma >= ipc_threshold_sigma
        detected = pair.bbv_angle >= bbv_threshold
        if significant and detected:
            counts[2] += 1
        elif significant:
            counts[1] += 1
        elif detected:
            counts[4] += 1
        else:
            counts[3] += 1
    return counts


def detection_rate(
    pairs: Sequence[ChangePair],
    bbv_threshold: float,
    ipc_threshold_sigma: float,
) -> float:
    """Fraction of significant IPC changes caught: R2 / (R1 + R2) (Fig. 8).

    Returns 1.0 when there are no significant changes at all.
    """
    counts = region_counts(pairs, bbv_threshold, ipc_threshold_sigma)
    significant = counts[1] + counts[2]
    if significant == 0:
        return 1.0
    return counts[2] / significant


def false_positive_rate(
    pairs: Sequence[ChangePair],
    bbv_threshold: float,
    ipc_threshold_sigma: float,
) -> float:
    """Fraction of detections that were spurious: R4 / (R2 + R4) (Fig. 9).

    Returns 0.0 when nothing was detected.
    """
    counts = region_counts(pairs, bbv_threshold, ipc_threshold_sigma)
    detected = counts[2] + counts[4]
    if detected == 0:
        return 0.0
    return counts[4] / detected


def detection_curve(
    pairs: Sequence[ChangePair],
    thresholds: Sequence[float],
    sigma_levels: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
) -> Dict[float, List[float]]:
    """Figure 8: detection rate vs threshold, one series per sigma level."""
    return {
        sigma: [detection_rate(pairs, th, sigma) for th in thresholds]
        for sigma in sigma_levels
    }


def false_positive_curve(
    pairs: Sequence[ChangePair],
    thresholds: Sequence[float],
    sigma_levels: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
) -> Dict[float, List[float]]:
    """Figure 9: false-positive rate vs threshold, per sigma level."""
    return {
        sigma: [false_positive_rate(pairs, th, sigma) for th in thresholds]
        for sigma in sigma_levels
    }


def change_histogram_2d(
    pairs: Sequence[ChangePair],
    angle_bins: int = 25,
    sigma_bins: int = 20,
    max_angle_pi: float = 0.5,
    max_sigma: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 7: joint distribution of BBV change vs IPC change.

    Returns ``(angle_edges_in_pi, sigma_edges, percent)`` where *percent*
    is the percentage of pairs in each (angle, sigma) cell; out-of-range
    observations are clamped into the outermost cells.
    """
    if not pairs:
        raise SamplingError("no change pairs supplied")
    angles = np.array([min(p.bbv_angle / np.pi, max_angle_pi) for p in pairs])
    sigmas = np.array([min(p.ipc_sigma, max_sigma) for p in pairs])
    hist, angle_edges, sigma_edges = np.histogram2d(
        angles,
        sigmas,
        bins=(angle_bins, sigma_bins),
        range=((0.0, max_angle_pi), (0.0, max_sigma)),
    )
    percent = 100.0 * hist / hist.sum()
    return angle_edges, sigma_edges, percent


@dataclass(frozen=True)
class PhaseStatistics:
    """Figure 10 statistics for one threshold value.

    Attributes:
        threshold: the BBV angle threshold (radians).
        n_phases: distinct phases detected.
        n_changes: phase transitions observed.
        mean_interval_ops: average contiguous same-phase run length (ops).
        ipc_variation: mean within-phase IPC standard deviation in units
            of the benchmark's overall IPC standard deviation.
    """

    threshold: float
    n_phases: int
    n_changes: int
    mean_interval_ops: float
    ipc_variation: float


def phase_statistics(
    bbvs: Sequence[np.ndarray],
    ipcs: Sequence[float],
    ops_per_period: Sequence[int],
    threshold: float,
    metric: str = "angle",
) -> PhaseStatistics:
    """Run the online classifier over a trace and report Fig.-10 statistics.

    Args:
        bbvs: per-period normalised BBVs.
        ipcs: per-period IPC.
        ops_per_period: per-period op counts.
        threshold: classifier threshold (radians for the angle metric).
        metric: classifier distance metric.
    """
    if not (len(bbvs) == len(ipcs) == len(ops_per_period)):
        raise SamplingError("series must have equal lengths")
    if not bbvs:
        raise SamplingError("empty trace")

    classifier = OnlinePhaseClassifier(threshold, metric=metric)
    assignments: List[int] = []
    for bbv, ops in zip(bbvs, ops_per_period):
        decision = classifier.observe(np.asarray(bbv, dtype=np.float64), int(ops))
        assignments.append(decision.phase_id)

    # Contiguous same-phase interval lengths in ops.
    intervals: List[int] = []
    run_ops = 0
    for i, phase in enumerate(assignments):
        run_ops += int(ops_per_period[i])
        last = i + 1 == len(assignments)
        if last or assignments[i + 1] != phase:
            intervals.append(run_ops)
            run_ops = 0

    ipc_arr = np.asarray(ipcs, dtype=np.float64)
    overall_sigma = float(ipc_arr.std(ddof=0))
    per_phase: Dict[int, List[float]] = {}
    for phase, ipc in zip(assignments, ipc_arr):
        per_phase.setdefault(phase, []).append(float(ipc))
    stds = [
        float(np.std(vals, ddof=0)) for vals in per_phase.values() if len(vals) > 1
    ]
    if stds and overall_sigma > 0:
        variation = float(np.mean(stds)) / overall_sigma
    else:
        variation = 0.0

    return PhaseStatistics(
        threshold=threshold,
        n_phases=classifier.n_phases,
        n_changes=classifier.n_changes,
        mean_interval_ops=float(np.mean(intervals)) if intervals else 0.0,
        ipc_variation=variation,
    )

"""Hierarchical and variable-length phase analysis (paper reference [4]).

The paper's background cites Lau et al., "Motivation for variable length
intervals and hierarchical phase behavior" (ISPASS'05): program phases
nest — fine-grained phases compose into coarse ones — and fixed-length
intervals straddle phase boundaries that variable-length intervals can
respect.  Both ideas matter to PGSS: its BBV period is a fixed-length
interval, and its art/mcf pathology (Section 5) is precisely a hierarchy
mismatch between micro-phases and the sampling period.

Two tools:

* :func:`variable_length_intervals` — greedy segmentation of a BBV window
  series into maximal runs whose consecutive windows stay within a
  threshold angle (the variable-length-interval view);
* :func:`hierarchical_phases` — classify the same execution at several
  granularities and relate the levels: how much of each coarse phase's
  execution is explained by its dominant fine phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..signals.vector import angle_between
from ..errors import SamplingError
from .classifier import OnlinePhaseClassifier

__all__ = [
    "VariableInterval",
    "variable_length_intervals",
    "HierarchyLevel",
    "hierarchical_phases",
]


@dataclass(frozen=True)
class VariableInterval:
    """One variable-length interval.

    Attributes:
        start_window / end_window: half-open window-index range.
        ops: operations covered.
        phase_id: phase assigned by classifying the interval's summed BBV.
    """

    start_window: int
    end_window: int
    ops: int
    phase_id: int

    @property
    def n_windows(self) -> int:
        """Fine windows merged into this interval."""
        return self.end_window - self.start_window


def variable_length_intervals(
    bbvs: Sequence[np.ndarray],
    ops: Sequence[int],
    threshold: float,
) -> List[VariableInterval]:
    """Segment a window series into maximal same-behaviour runs.

    A new interval starts whenever the angle between consecutive window
    BBVs reaches *threshold* (radians).  Each interval's aggregate BBV is
    then classified with an :class:`OnlinePhaseClassifier` at the same
    threshold, so recurring behaviour maps to recurring phase ids.

    Raises:
        SamplingError: on empty input or mismatched lengths.
    """
    if len(bbvs) != len(ops):
        raise SamplingError("bbvs and ops must be the same length")
    if not bbvs:
        raise SamplingError("empty window series")

    boundaries = [0]
    for i in range(1, len(bbvs)):
        if angle_between(bbvs[i - 1], bbvs[i]) >= threshold:
            boundaries.append(i)
    boundaries.append(len(bbvs))

    classifier = OnlinePhaseClassifier(threshold)
    intervals: List[VariableInterval] = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        if lo == hi:
            continue
        summed = np.sum(np.asarray(bbvs[lo:hi], dtype=np.float64), axis=0)
        norm = float(np.sqrt(np.dot(summed, summed)))
        if norm > 0:
            summed = summed / norm
        interval_ops = int(sum(ops[lo:hi]))
        decision = classifier.observe(summed, interval_ops)
        intervals.append(
            VariableInterval(
                start_window=lo,
                end_window=hi,
                ops=interval_ops,
                phase_id=decision.phase_id,
            )
        )
    return intervals


@dataclass(frozen=True)
class HierarchyLevel:
    """Phase classification of one granularity level.

    Attributes:
        factor: windows aggregated per period at this level.
        assignments: per-period phase ids (length = ceil(n / factor)).
        n_phases: distinct phases at this level.
        coherence: fraction of each coarse period's fine-level windows
            belonging to the coarse period's dominant fine phase, averaged
            over coarse periods (1.0 = perfectly nested hierarchy); for
            the finest level this is 1.0 by definition.
    """

    factor: int
    assignments: List[int]
    n_phases: int
    coherence: float


def hierarchical_phases(
    bbvs: Sequence[np.ndarray],
    ops: Sequence[int],
    factors: Sequence[int],
    threshold_pi: float = 0.05,
) -> Dict[int, HierarchyLevel]:
    """Classify one execution at several granularities.

    Args:
        bbvs: finest-granularity raw (or normalised) window BBVs.
        ops: per-window op counts.
        factors: aggregation factors, e.g. ``(1, 4, 16)``; must be
            ascending and start at 1.
        threshold_pi: classifier threshold as a fraction of pi.

    Returns a mapping factor -> :class:`HierarchyLevel`.  The expected
    hierarchy signatures: phase counts fall as the factor grows, and
    coherence stays high when fine phases nest cleanly inside coarse ones.
    """
    if len(bbvs) != len(ops):
        raise SamplingError("bbvs and ops must be the same length")
    if not bbvs:
        raise SamplingError("empty window series")
    if not factors or factors[0] != 1 or list(factors) != sorted(set(factors)):
        raise SamplingError("factors must be ascending, unique, starting at 1")

    arr = np.asarray(bbvs, dtype=np.float64)
    ops_arr = np.asarray(ops, dtype=np.int64)
    levels: Dict[int, HierarchyLevel] = {}
    fine_assignments: List[int] = []

    for factor in factors:
        groups = (len(bbvs) + factor - 1) // factor
        classifier = OnlinePhaseClassifier(threshold_pi * math.pi)
        assignments: List[int] = []
        for g in range(groups):
            lo, hi = g * factor, min((g + 1) * factor, len(bbvs))
            summed = arr[lo:hi].sum(axis=0)
            norm = float(np.sqrt(np.dot(summed, summed)))
            if norm > 0:
                summed = summed / norm
            decision = classifier.observe(summed, int(ops_arr[lo:hi].sum()))
            assignments.append(decision.phase_id)

        if factor == 1:
            fine_assignments = assignments
            coherence = 1.0
        else:
            scores = []
            for g in range(groups):
                lo, hi = g * factor, min((g + 1) * factor, len(bbvs))
                members = fine_assignments[lo:hi]
                if not members:
                    continue
                dominant = max(set(members), key=members.count)
                scores.append(members.count(dominant) / len(members))
            coherence = float(np.mean(scores)) if scores else 0.0

        levels[factor] = HierarchyLevel(
            factor=factor,
            assignments=assignments,
            n_phases=classifier.n_phases,
            coherence=coherence,
        )
    return levels

"""The online phase classifier of PGSS-Sim (paper Figures 4 and 5).

Per signal sampling period the classifier receives the period's
normalised vector and decides, in order:

1. compare against the *previous period's* vector — "it is most likely
   that no phase change occurred"; below threshold means stay in the
   current phase;
2. otherwise compare against every known phase's representative; the best
   match below threshold becomes the current phase;
3. otherwise a new phase is created.

Distances are angles (radians); the threshold is typically quoted as a
fraction of pi (the paper's best overall value is 0.05 pi).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..signals.vector import angle_between, manhattan_distance
from ..errors import ConfigurationError
from ..events import EventBus, PhaseChange
from .profile import PhaseProfile

__all__ = ["PhaseDecision", "OnlinePhaseClassifier"]


@dataclass(frozen=True)
class PhaseDecision:
    """Outcome of classifying one period's signal vector.

    Attributes:
        phase_id: the phase the period was assigned to.
        changed: True when the current phase differs from the previous
            period's phase.
        created: True when a brand-new phase was created.
        angle_to_prev: distance to the previous period's vector (radians
            for the angle metric).
    """

    phase_id: int
    changed: bool
    created: bool
    angle_to_prev: float


class OnlinePhaseClassifier:
    """Run-time phase detection over a stream of normalised vectors.

    The classifier is signal-agnostic: it compares whatever normalised
    vectors the attached :class:`~repro.signals.SignalTracker` compiles
    (BBV, MAV, or a concatenation), so every signal shares the same
    Fig. 5 decision structure.

    Args:
        threshold: distance below which two vectors are "the same phase".
            For the default angle metric this is in radians
            (e.g. ``0.05 * math.pi``).
        metric: ``"angle"`` (the paper's cosine-derived angle) or
            ``"manhattan"`` (SimPoint's L1 metric, for the ablation study).
        bus: optional event bus; every phase change or creation is
            published as a :class:`~repro.events.PhaseChange` event.
    """

    def __init__(
        self,
        threshold: float,
        metric: str = "angle",
        bus: Optional[EventBus] = None,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if metric == "angle":
            if threshold > math.pi:
                raise ConfigurationError("angle thresholds cannot exceed pi")
            self._distance: Callable[[np.ndarray, np.ndarray], float] = angle_between
        elif metric == "manhattan":
            self._distance = manhattan_distance
        else:
            raise ConfigurationError(f"unknown metric {metric!r}")
        self.threshold = threshold
        self.metric = metric
        self.phases: List[PhaseProfile] = []
        self.current_phase_id: Optional[int] = None
        self._last_vector: Optional[np.ndarray] = None
        self.n_changes = 0
        self.n_observations = 0
        self.bus = bus

    @property
    def n_phases(self) -> int:
        """Number of distinct phases discovered so far."""
        return len(self.phases)

    @property
    def current_phase(self) -> Optional[PhaseProfile]:
        """Profile of the phase the execution is currently in."""
        if self.current_phase_id is None:
            return None
        return self.phases[self.current_phase_id]

    def observe(self, vector: np.ndarray, ops: int) -> PhaseDecision:
        """Classify one period's normalised vector (Fig. 5 diamonds).

        Args:
            vector: the period's L2-normalised signal vector (from any
                tracker's ``take_vector``).
            ops: operations executed during the period (attributed to the
                chosen phase).
        """
        previous_id = self.current_phase_id
        decision = self._classify(vector, ops)
        if self.bus is not None and (decision.changed or decision.created):
            self.bus.emit(
                PhaseChange(
                    phase_id=decision.phase_id,
                    previous_phase_id=previous_id,
                    created=decision.created,
                    distance=decision.angle_to_prev,
                    n_observations=self.n_observations,
                )
            )
        return decision

    def _classify(self, vector: np.ndarray, ops: int) -> PhaseDecision:
        """The Fig. 5 decision diamonds, without event emission."""
        self.n_observations += 1
        previous_id = self.current_phase_id

        if self._last_vector is None:
            # First period ever: it founds phase 0.
            profile = PhaseProfile(0, vector)
            profile.add_ops(ops)
            self.phases.append(profile)
            self.current_phase_id = 0
            self._last_vector = vector
            return PhaseDecision(0, changed=False, created=True, angle_to_prev=0.0)

        d_prev = self._distance(vector, self._last_vector)
        if d_prev < self.threshold and previous_id is not None:
            profile = self.phases[previous_id]
            profile.add_vector(vector, ops)
            self._last_vector = vector
            return PhaseDecision(
                previous_id, changed=False, created=False, angle_to_prev=d_prev
            )

        # Does the vector match an existing phase?
        best_id = None
        best_d = math.inf
        for profile in self.phases:
            d = self._distance(vector, profile.representative)
            if d < best_d:
                best_d = d
                best_id = profile.phase_id
        if best_id is not None and best_d < self.threshold:
            profile = self.phases[best_id]
            profile.add_vector(vector, ops)
            changed = best_id != previous_id
            if changed:
                self.n_changes += 1
            self.current_phase_id = best_id
            self._last_vector = vector
            return PhaseDecision(
                best_id, changed=changed, created=False, angle_to_prev=d_prev
            )

        # Create a new phase.
        new_id = len(self.phases)
        profile = PhaseProfile(new_id, vector)
        profile.add_ops(ops)
        self.phases.append(profile)
        self.current_phase_id = new_id
        self.n_changes += 1
        self._last_vector = vector
        return PhaseDecision(new_id, changed=True, created=True, angle_to_prev=d_prev)

    def ops_per_phase(self) -> Dict[int, int]:
        """Mapping of phase id to attributed operations."""
        return {p.phase_id: p.ops for p in self.phases}

    def __repr__(self) -> str:
        return (
            f"OnlinePhaseClassifier(threshold={self.threshold:.4f}, "
            f"metric={self.metric!r}, phases={self.n_phases}, "
            f"changes={self.n_changes})"
        )

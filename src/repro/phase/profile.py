"""Per-phase profiles: representative vector plus performance record.

A phase's representative vector is the running mean of every member
signal vector (BBV by default; re-normalised for comparisons); its
performance record is the list of
detailed-sample IPCs taken inside the phase, with the op offset of the most
recent one — the input to PGSS-Sim's confidence-bound and sample-spreading
decisions (Fig. 5).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..stats.ci import ConfidenceInterval, student_t_ci

__all__ = ["PhaseProfile"]


class PhaseProfile:
    """Accumulated knowledge about one detected phase.

    Args:
        phase_id: dense id assigned by the classifier.
        first_vector: the (normalised) signal vector that created the
            phase.
    """

    def __init__(self, phase_id: int, first_vector: np.ndarray) -> None:
        self.phase_id = phase_id
        self._vector_sum = np.array(first_vector, dtype=np.float64)
        self.vector_count = 1
        #: Total operations attributed to this phase.
        self.ops = 0
        #: IPC of each detailed sample taken while in this phase.
        self.sample_ipcs: List[float] = []
        #: ``(ops, cycles)`` of each detailed sample (for ratio estimation).
        self.sample_ops_cycles: List[tuple] = []
        #: Op offset (program-global) of the most recent detailed sample.
        self.last_sample_op: Optional[int] = None

    @property
    def representative(self) -> np.ndarray:
        """Unit-norm mean of all member vectors."""
        norm = float(np.sqrt(np.dot(self._vector_sum, self._vector_sum)))
        if norm == 0.0:
            return self._vector_sum.copy()
        return self._vector_sum / norm

    def add_vector(self, vector: np.ndarray, ops: int) -> None:
        """Fold one period's vector (and its op count) into the phase."""
        self._vector_sum += vector
        self.vector_count += 1
        self.ops += ops

    def add_bbv(self, bbv: np.ndarray, ops: int) -> None:
        """Historical alias of :meth:`add_vector`."""
        self.add_vector(bbv, ops)

    def add_ops(self, ops: int) -> None:
        """Attribute *ops* operations to this phase without a new BBV."""
        self.ops += ops

    def add_sample(
        self,
        ipc: float,
        op_offset: int,
        ops: Optional[int] = None,
        cycles: Optional[int] = None,
    ) -> None:
        """Record a detailed sample taken inside this phase.

        Args:
            ipc: the sample's IPC.
            op_offset: program-global op count at which it was taken.
            ops, cycles: the sample's raw counts; when given they feed the
                ratio (CPI-space) estimator, otherwise a 1-op pseudo-count
                consistent with *ipc* is stored.
        """
        self.sample_ipcs.append(ipc)
        if ops is not None and cycles is not None:
            self.sample_ops_cycles.append((ops, cycles))
        elif ipc > 0:
            self.sample_ops_cycles.append((1.0, 1.0 / ipc))
        self.last_sample_op = op_offset

    @property
    def n_samples(self) -> int:
        """Number of detailed samples taken in this phase."""
        return len(self.sample_ipcs)

    @property
    def mean_ipc(self) -> float:
        """Arithmetic mean of sampled IPCs (0.0 when unsampled)."""
        if not self.sample_ipcs:
            return 0.0
        return float(np.mean(self.sample_ipcs))

    @property
    def ratio_ipc(self) -> float:
        """Ratio estimate of the phase IPC: pooled sample ops over cycles.

        This is the unbiased per-phase estimator (IPC is a ratio quantity);
        see :func:`repro.stats.stratified_ratio_ipc`.
        """
        ops = sum(p[0] for p in self.sample_ops_cycles)
        cycles = sum(p[1] for p in self.sample_ops_cycles)
        if ops <= 0 or cycles <= 0:
            return 0.0
        return ops / cycles

    def confidence_interval(self, confidence: float = 0.997) -> ConfidenceInterval:
        """Student-t CI over this phase's sample IPCs."""
        return student_t_ci(self.sample_ipcs, confidence)

    def within_bounds(
        self,
        rel_error: float = 0.03,
        confidence: float = 0.997,
        min_samples: int = 3,
    ) -> bool:
        """The Fig. 5 "Is Phase Within Confidence Bounds?" test.

        True when at least *min_samples* samples exist and the CI half
        width is inside ``rel_error`` of the mean.  A phase whose samples
        are all identical is trivially converged.
        """
        if self.n_samples < min_samples:
            return False
        ci = self.confidence_interval(confidence)
        if math.isinf(ci.half_width):
            return False
        return ci.within_relative(rel_error)

    def __repr__(self) -> str:
        return (
            f"PhaseProfile(id={self.phase_id}, vectors={self.vector_count}, "
            f"ops={self.ops}, samples={self.n_samples}, "
            f"mean_ipc={self.mean_ipc:.3f})"
        )

"""Adaptive per-benchmark threshold selection (paper Section 7).

"Since the optimal parameters for PGSS-Sim vary between benchmarks, these
parameters must be automatically adjusted to each benchmark either in some
sort of offline analysis of the benchmark or ideally, the algorithm would
adapt at runtime to program characteristics."

This module implements the runtime variant: the selector watches the
phase-signal vector stream of a short execution prefix (no detailed
simulation required; any :class:`~repro.signals.SignalTracker` feeds it),
runs the online classifier at every candidate threshold, and picks the
largest
threshold whose phase structure is *usable* — enough distinct phases to
carry information, but intervals long and stable enough that each phase can
actually be characterised with a handful of small samples (the failure
modes called out in Section 5: "when the BBV sampling is too short or the
threshold value too low, the phase changes occur too frequently and there
are too many phases to accurately characterize").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..events import EventBus, ThresholdSelected
from .classifier import OnlinePhaseClassifier

__all__ = ["AdaptiveThresholdSelector"]


@dataclass(frozen=True)
class _Candidate:
    threshold: float
    n_phases: int
    change_rate: float
    score: float


class AdaptiveThresholdSelector:
    """Chooses a PGSS threshold from a prefix of the signal stream.

    Args:
        candidates: thresholds to evaluate, as fractions of pi
            (default: the paper's swept values).
        max_change_rate: reject thresholds whose per-period phase-change
            probability exceeds this (phases too unstable to sample).
        min_phases: reject thresholds that collapse execution into fewer
            phases than this (no information left to exploit) unless every
            candidate does.
        max_phases_per_period: reject thresholds creating more phases than
            this fraction of observed periods (too many tiny phases).
        bus: optional event bus; :meth:`select` publishes its choice as a
            :class:`~repro.events.ThresholdSelected` event.
    """

    def __init__(
        self,
        candidates: Sequence[float] = (0.05, 0.10, 0.15, 0.20, 0.25),
        max_change_rate: float = 0.35,
        min_phases: int = 2,
        max_phases_per_period: float = 0.25,
        bus: Optional[EventBus] = None,
    ) -> None:
        if not candidates:
            raise ConfigurationError("at least one candidate threshold is required")
        if any(c <= 0 or c > 1 for c in candidates):
            raise ConfigurationError("candidates are fractions of pi in (0, 1]")
        self.candidates = sorted(candidates)
        self.max_change_rate = max_change_rate
        self.min_phases = min_phases
        self.max_phases_per_period = max_phases_per_period
        self.bus = bus

    def evaluate(self, vectors: Sequence[np.ndarray]) -> List[Dict[str, Any]]:
        """Score every candidate on the prefix; returns per-candidate dicts.

        Args:
            vectors: normalised per-period signal vectors (from any
                tracker's ``take_vector``).
        """
        if len(vectors) < 4:
            raise ConfigurationError("need at least 4 signal periods to adapt")
        results: List[Dict[str, Any]] = []
        n = len(vectors)
        for frac in self.candidates:
            classifier = OnlinePhaseClassifier(frac * math.pi)
            for vector in vectors:
                classifier.observe(np.asarray(vector, dtype=np.float64), 1)
            change_rate = classifier.n_changes / max(n - 1, 1)
            phase_density = classifier.n_phases / n
            usable = (
                change_rate <= self.max_change_rate
                and phase_density <= self.max_phases_per_period
            )
            # Prefer tight thresholds (more sensitivity) among usable ones:
            # score rewards structure (phases > 1) and penalises churn.
            structure = min(classifier.n_phases, 8) / 8.0
            score = structure * (1.0 - change_rate) - frac
            results.append(
                {
                    "threshold": frac,
                    "n_phases": classifier.n_phases,
                    "change_rate": change_rate,
                    "usable": usable,
                    "score": score,
                }
            )
        return results

    def select(self, vectors: Sequence[np.ndarray]) -> float:
        """Return the chosen threshold as a fraction of pi.

        Picks the tightest *usable* candidate that still finds at least
        ``min_phases`` phases; falls back to the best-scoring candidate
        when none qualifies.
        """
        results = self.evaluate(vectors)
        usable = [
            r
            for r in results
            if r["usable"] and r["n_phases"] >= self.min_phases
        ]
        if usable:
            chosen = min(usable, key=lambda r: r["threshold"])
        else:
            informative = [
                r for r in results if r["n_phases"] >= self.min_phases
            ]
            pool = informative if informative else results
            chosen = max(pool, key=lambda r: r["score"])
        if self.bus is not None:
            self.bus.emit(
                ThresholdSelected(
                    threshold=chosen["threshold"],
                    n_phases=chosen["n_phases"],
                    change_rate=chosen["change_rate"],
                    usable=chosen["usable"],
                )
            )
        return float(chosen["threshold"])

"""Memory-access-vector (MAV) tracking: the second phase signal.

BBVs project program behaviour onto control flow, so two phases that
execute the *same* blocks over *different* data are indistinguishable to
them (Caculo et al., PAPERS.md).  :class:`MavTracker` projects behaviour
onto the memory stream instead: every dynamic access is reduced to its
cache-line and page identity, and each granularity hashes into its own
small register file of access counts.  The compiled vector is the
concatenation ``[line buckets | page buckets]`` — the line half captures
fine-grained spatial locality, the page half the coarse footprint — and
is L2-normalised and angle-compared exactly like a BBV.

Closed-form batching mirrors the BBV credit telescoping.  A
:class:`~repro.program.MemPattern` is a pure function of its block's
execution count *k* (that is what makes checkpoints tiny), so the
address stream of a :class:`~repro.program.BlockRun` covering
``k_start .. k_start+n-1`` is computable without expanding events:
:func:`pattern_addresses` evaluates the strided and hashed generators
over a whole ``k`` range with numpy integer arithmetic that reproduces
``MemPattern.address`` bit-for-bit (products are masked to 32 bits, so
uint64 wraparound is unobservable).  All register increments are
integer-valued counts far below 2**53, so float64 accumulation is exact
and the scalar and batched paths produce bit-identical register files —
the property ``tests/test_signals.py`` pins with hypothesis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..program.block import BasicBlock
from ..program.mem_patterns import MemPattern, PatternKind
from .base import pack_registers, unpack_registers
from .vector import l2_norm

if TYPE_CHECKING:
    from ..program.stream import BlockRun

__all__ = ["MavTracker", "pattern_addresses"]

#: Knuth multiplicative-hash constant (same family as the pattern hash).
_HASH_MULT = 2654435761
_AVALANCHE_MULT = 0x45D9F3B
_MASK32 = 0xFFFFFFFF


def pattern_addresses(pattern: MemPattern, ks: np.ndarray) -> np.ndarray:
    """Vectorised :meth:`~repro.program.MemPattern.address` over *ks*.

    Evaluates the pattern's address generator for every execution count
    in *ks* (int64, non-negative) in one shot, bit-identical to the
    scalar method: strided kinds are plain int64 arithmetic, hashed
    kinds replay the 32-bit avalanche in uint64 (the 32-bit masks make
    modulo-2**64 wraparound indistinguishable from Python's
    arbitrary-precision product).
    """
    if pattern.kind is PatternKind.STREAM or pattern.kind is PatternKind.REUSE:
        return pattern.base + (ks * pattern.stride) % pattern.span
    h = (ks.astype(np.uint64) + np.uint64(pattern.seed)) * np.uint64(
        _HASH_MULT
    ) & np.uint64(_MASK32)
    h ^= h >> np.uint64(16)
    h = h * np.uint64(_AVALANCHE_MULT) & np.uint64(_MASK32)
    h ^= h >> np.uint64(16)
    offsets = (h % np.uint64(pattern.span)) & ~np.uint64(0x7)
    return (np.uint64(pattern.base) + offsets).astype(np.int64)


class MavTracker:
    """Accumulates a reduced memory-access vector over a sampling period.

    Args:
        n_buckets: register-file width per granularity; the compiled
            vector has ``2 * n_buckets`` entries.
        line_bits: log2 of the cache-line size addresses are reduced to
            (64-byte lines by default, matching the machine model).
        page_bits: log2 of the page size for the coarse half.

    The tracker is engine-attachable exactly like
    :class:`~repro.signals.BbvTracker` and implements the same
    :class:`~repro.signals.SignalTracker` protocol; unlike the BBV it
    consumes the execution count *k* carried by each event, because the
    address stream — not the branch stream — is the signal.
    """

    def __init__(
        self, n_buckets: int = 32, line_bits: int = 6, page_bits: int = 12
    ) -> None:
        if n_buckets < 2:
            raise ConfigurationError("n_buckets must be at least 2")
        if not 0 <= line_bits <= page_bits:
            raise ConfigurationError(
                "need 0 <= line_bits <= page_bits for the two granularities"
            )
        self.n_buckets = n_buckets
        self.line_bits = line_bits
        self.page_bits = page_bits
        self._registers: np.ndarray = np.zeros(2 * n_buckets, dtype=np.float64)
        self.total_ops = 0
        #: Dynamic memory accesses observed since construction / reset.
        self.total_accesses = 0

    def _bucket(self, unit: int) -> int:
        """Bucket of one line/page number (scalar multiplicative hash)."""
        return (unit * _HASH_MULT & _MASK32) % self.n_buckets

    def _bucket_batch(self, units: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_bucket` (bit-identical; see module doc)."""
        mixed = units.astype(np.uint64) * np.uint64(_HASH_MULT) & np.uint64(
            _MASK32
        )
        return (mixed % np.uint64(self.n_buckets)).astype(np.int64)

    def record(self, block: BasicBlock, taken: bool, k: int = 0) -> None:
        """Observe one dynamic basic-block execution.

        Every memory instruction in *block* generates its *k*-th address;
        the access is counted once at line granularity and once at page
        granularity.  The branch outcome is irrelevant to this signal.
        """
        self.total_ops += block.n_ops
        patterns = block.mem_patterns
        if not patterns:
            return
        registers = self._registers
        n_buckets = self.n_buckets
        for pattern in patterns:
            address = pattern.address(k)
            registers[self._bucket(address >> self.line_bits)] += 1.0
            registers[n_buckets + self._bucket(address >> self.page_bits)] += 1.0
        self.total_accesses += len(patterns)

    def record_batch(self, runs: Sequence["BlockRun"]) -> None:
        """Observe a batch of run-length records in closed form.

        For each run the whole ``k`` range is materialised once and every
        pattern's address stream is generated vectorised; per-bucket
        counts come from one ``bincount`` per (run, pattern, granularity).
        Counts are integers, so the float64 register file ends
        bit-identical to the scalar path.
        """
        registers = self._registers
        n_buckets = self.n_buckets
        for run in runs:
            block = run.block
            self.total_ops += run.n * block.n_ops
            patterns = block.mem_patterns
            if not patterns:
                continue
            ks = np.arange(run.k_start, run.k_start + run.n, dtype=np.int64)
            for pattern in patterns:
                addresses = pattern_addresses(pattern, ks)
                registers[:n_buckets] += np.bincount(
                    self._bucket_batch(addresses >> self.line_bits),
                    minlength=n_buckets,
                )
                registers[n_buckets:] += np.bincount(
                    self._bucket_batch(addresses >> self.page_bits),
                    minlength=n_buckets,
                )
            self.total_accesses += run.n * len(patterns)

    def take_vector(self, normalize: bool = True) -> np.ndarray:
        """Compile the register file into a vector and reset it in place.

        Args:
            normalize: L2-normalise the result (the comparison form).
        """
        vec = self._registers.copy()
        self._registers.fill(0.0)
        if normalize:
            norm = l2_norm(vec)
            if norm > 0.0:
                vec /= norm
        return vec

    def peek_vector(self) -> np.ndarray:
        """Current raw (unnormalised) register contents, without reset."""
        return self._registers.copy()

    def reset(self) -> None:
        """Clear registers (in place) and both counters."""
        self._registers.fill(0.0)
        self.total_ops = 0
        self.total_accesses = 0

    def snapshot(self) -> Dict[str, object]:
        """Capture tracker state for checkpointing (compact buffer form)."""
        return {
            "registers": pack_registers(self._registers),
            "total_ops": self.total_ops,
            "total_accesses": self.total_accesses,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._registers = unpack_registers(
            state["registers"], 2 * self.n_buckets
        )
        self.total_ops = state["total_ops"]  # type: ignore[assignment]
        self.total_accesses = state["total_accesses"]  # type: ignore[assignment]

"""Weighted concatenation of several phase signals into one vector.

:class:`ConcatenatedSignal` fans every engine event out to its child
trackers and compiles their period vectors into one: each child vector
is normalised, scaled by its weight, concatenated, and the whole vector
re-normalised.  Because the children are unit vectors before weighting,
the weights set the *relative influence* of each signal on the angle
metric directly — ``(1, 1)`` means a phase change visible to either
signal moves the combined vector, which is the BBV+MAV default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..program.block import BasicBlock
from .base import SignalTracker
from .vector import l2_norm

if TYPE_CHECKING:
    from ..program.stream import BlockRun

__all__ = ["ConcatenatedSignal"]


class ConcatenatedSignal:
    """Combine several :class:`~repro.signals.SignalTracker` instances.

    Args:
        trackers: child trackers, each observing the full event stream.
        weights: per-child positive weights applied to the normalised
            child vectors before concatenation; defaults to equal
            weights.
    """

    def __init__(
        self,
        trackers: Sequence[SignalTracker],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not trackers:
            raise ConfigurationError("ConcatenatedSignal needs >= 1 tracker")
        self.trackers: List[SignalTracker] = list(trackers)
        if weights is None:
            weights = [1.0] * len(self.trackers)
        if len(weights) != len(self.trackers):
            raise ConfigurationError(
                f"{len(self.trackers)} trackers but {len(weights)} weights"
            )
        if any(w <= 0.0 for w in weights):
            raise ConfigurationError("signal weights must be positive")
        self.weights: List[float] = [float(w) for w in weights]

    @property
    def total_ops(self) -> int:
        """Ops observed (children see identical streams; first reports)."""
        return self.trackers[0].total_ops

    def record(self, block: BasicBlock, taken: bool, k: int = 0) -> None:
        """Fan one dynamic event out to every child tracker."""
        for tracker in self.trackers:
            tracker.record(block, taken, k)

    def record_batch(self, runs: Sequence["BlockRun"]) -> None:
        """Fan a run-length batch out to every child tracker."""
        for tracker in self.trackers:
            tracker.record_batch(runs)

    def take_vector(self, normalize: bool = True) -> np.ndarray:
        """Compile and reset every child, concatenating the results.

        With ``normalize`` (the comparison form) each child vector is
        unit-normalised and weighted before concatenation and the result
        is re-normalised; without it the raw per-child register contents
        are concatenated unweighted (units are per-signal counts).
        """
        if not normalize:
            return np.concatenate(
                [tracker.take_vector(normalize=False) for tracker in self.trackers]
            )
        parts = [
            weight * tracker.take_vector(normalize=True)
            for tracker, weight in zip(self.trackers, self.weights)
        ]
        vec = np.concatenate(parts)
        norm = l2_norm(vec)
        if norm > 0.0:
            vec /= norm
        return vec

    def peek_vector(self) -> np.ndarray:
        """Concatenated raw register contents, without reset."""
        return np.concatenate([t.peek_vector() for t in self.trackers])

    def reset(self) -> None:
        """Reset every child tracker."""
        for tracker in self.trackers:
            tracker.reset()

    def snapshot(self) -> Dict[str, object]:
        """Capture every child's state for checkpointing."""
        return {"parts": [tracker.snapshot() for tracker in self.trackers]}

    def restore(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        parts = state["parts"]
        if not isinstance(parts, list) or len(parts) != len(self.trackers):
            raise ConfigurationError(
                "snapshot does not match this ConcatenatedSignal's children"
            )
        for tracker, part in zip(self.trackers, parts):
            tracker.restore(part)

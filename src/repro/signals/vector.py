"""Vector operations on phase-signal vectors.

The paper normalises each BBV to an L2 norm of one and compares vectors
with a dot product, yielding the cosine of the angle between them; the
angle (in [0, pi/2] for non-negative vectors) is the distance measure and
thresholds are quoted as fractions of pi.  The same geometry applies to
any non-negative signal vector (MAV, concatenated signals).  Manhattan
distance — what SimPoint uses — is provided for the distance-metric
ablation.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

__all__ = [
    "l2_norm",
    "l2_normalize",
    "angle_between",
    "manhattan_distance",
    "cosine_similarity",
]

ArrayLike = Union[Sequence[float], np.ndarray]


def l2_norm(vector: ArrayLike) -> float:
    """L2 norm of *vector* via a single dot product."""
    arr = np.asarray(vector, dtype=np.float64)
    return float(np.sqrt(np.dot(arr, arr)))


def l2_normalize(vector: ArrayLike) -> np.ndarray:
    """Return *vector* scaled to unit L2 norm (zero vectors stay zero)."""
    arr = np.asarray(vector, dtype=np.float64)
    norm = l2_norm(arr)
    if norm == 0.0:
        return arr.copy()
    return arr / norm


def cosine_similarity(a: ArrayLike, b: ArrayLike) -> float:
    """Cosine of the angle between *a* and *b* (0.0 if either is zero)."""
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    na = l2_norm(va)
    nb = l2_norm(vb)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(va, vb) / (na * nb))


def angle_between(a: ArrayLike, b: ArrayLike) -> float:
    """Angle in radians between *a* and *b*.

    For the non-negative vectors produced by signal tracking the result
    lies in ``[0, pi/2]``; the paper exploits the one-to-one cosine/angle
    correspondence on that interval.  Two zero vectors are defined to be at
    angle 0; a zero vector against a non-zero one is maximally distant
    (``pi/2``).
    """
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    na = l2_norm(va)
    nb = l2_norm(vb)
    if na == 0.0 and nb == 0.0:
        return 0.0
    if na == 0.0 or nb == 0.0:
        return math.pi / 2.0
    cos = float(np.dot(va, vb) / (na * nb))
    # Guard against rounding pushing |cos| past 1.
    if cos > 1.0:
        cos = 1.0
    elif cos < -1.0:
        cos = -1.0
    return math.acos(cos)


def manhattan_distance(a: ArrayLike, b: ArrayLike) -> float:
    """L1 distance between *a* and *b* (SimPoint's native metric)."""
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    return float(np.abs(va - vb).sum())

"""The BBV register file and its address hash (paper Figure 4).

The hash "simply selects five bits from the address and concatenates them
into an index for a register file.  The five bits are chosen at random, but
remain constant throughout the simulation."  :class:`ReducedBbvHash`
implements exactly that; :class:`WideBbvHash` is a higher-dimensional
variant used by the BBV-width ablation.

:class:`BbvTracker` accumulates ops-since-last-taken-branch into the
indexed register.  For speed it pre-resolves each basic block's branch
address to its bucket once (the hash is constant), and accumulates the
untaken-branch op run-length exactly as the hardware would: ops retired
since the *last taken branch* are credited to the bucket of the taken
branch that ends the run.

Two accumulation paths exist: :meth:`BbvTracker.record` observes one event
at a time, and :meth:`BbvTracker.record_batch` consumes the run-length
records produced by :meth:`~repro.program.ProgramStream.next_events`,
folding each run's credits into closed form and applying a whole batch
with vectorised numpy scatter-adds.  All credits are integer-valued and
far below 2**53, so float64 accumulation is exact and the two paths
produce bit-identical register files.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional, Protocol, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..program.block import BasicBlock
from .base import pack_registers, unpack_registers
from .vector import l2_norm

if TYPE_CHECKING:
    from ..program.stream import BlockRun

__all__ = ["BbvHash", "ReducedBbvHash", "WideBbvHash", "BbvTracker"]


class BbvHash(Protocol):
    """Structural type of a branch-address bucket function."""

    n_buckets: int

    def __call__(self, address: int) -> int:
        """Map a branch address to its register-file index."""
        ...


class ReducedBbvHash:
    """Concatenate five randomly chosen branch-address bits (Fig. 4).

    Args:
        n_bits: number of selected bits (paper: 5, giving 32 buckets).
        seed: seed for the one-time random bit choice.
        lo, hi: inclusive range of candidate bit positions; the low two
            bits are excluded by default because instructions are 4-byte
            aligned and those bits carry no information.
    """

    def __init__(self, n_bits: int = 5, seed: int = 12345, lo: int = 2, hi: int = 23) -> None:
        if n_bits < 1 or hi - lo + 1 < n_bits:
            raise ConfigurationError("not enough candidate bits for the hash")
        rng = random.Random(seed)
        self.bit_positions = sorted(rng.sample(range(lo, hi + 1), n_bits))
        self.n_buckets = 1 << n_bits

    def __call__(self, address: int) -> int:
        """Map a branch address to its register-file index."""
        index = 0
        for shift, pos in enumerate(self.bit_positions):
            index |= ((address >> pos) & 1) << shift
        return index

    def batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised bit-gather: hash an array of branch addresses."""
        a = np.asarray(addresses, dtype=np.int64)
        out = np.zeros(a.shape, dtype=np.int64)
        for shift, pos in enumerate(self.bit_positions):
            out |= ((a >> pos) & 1) << shift
        return out


class WideBbvHash:
    """A wider modulo hash used by the BBV-dimensionality ablation."""

    def __init__(self, n_buckets: int = 1024) -> None:
        if n_buckets < 2:
            raise ConfigurationError("n_buckets must be at least 2")
        self.n_buckets = n_buckets

    def __call__(self, address: int) -> int:
        """Map a branch address to a bucket by multiplicative hashing."""
        return ((address >> 2) * 2654435761 & 0xFFFFFFFF) % self.n_buckets

    def batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised multiplicative hash of an array of addresses.

        uint64 arithmetic wraps modulo 2**64, which the 32-bit mask makes
        indistinguishable from Python's arbitrary-precision product.
        """
        a = np.asarray(addresses, dtype=np.uint64)
        mixed = (a >> np.uint64(2)) * np.uint64(2654435761) & np.uint64(0xFFFFFFFF)
        return (mixed % np.uint64(self.n_buckets)).astype(np.int64)


class BbvTracker:
    """Accumulates the BBV register file over a sampling period.

    Args:
        hash_fn: bucket function (defaults to the paper's 5-bit hash).

    The tracker is attached to a :class:`~repro.cpu.SimulationEngine`; the
    engine calls :meth:`record` once per dynamic basic block (scalar
    modes) or :meth:`record_batch` once per stream batch (batched modes).
    At each BBV sampling-period boundary the driver calls
    :meth:`take_vector` to compile and reset the register file.
    """

    def __init__(self, hash_fn: Optional[BbvHash] = None) -> None:
        self.hash_fn: BbvHash = hash_fn if hash_fn is not None else ReducedBbvHash()
        self.n_buckets = self.hash_fn.n_buckets
        self._registers: np.ndarray = np.zeros(self.n_buckets, dtype=np.float64)
        #: Ops retired since the last taken branch (the Fig. 4 side counter).
        self._run_ops = 0
        #: Per-block bucket cache: the hash of a block's branch address.
        self._bucket_of_block: Dict[int, int] = {}
        self.total_ops = 0

    def bucket_for(self, block: BasicBlock) -> int:
        """Bucket index of *block*'s terminating branch (cached)."""
        bucket = self._bucket_of_block.get(block.bid)
        if bucket is None:
            bucket = self.hash_fn(block.branch_address)
            self._bucket_of_block[block.bid] = bucket
        return bucket

    def record(self, block: BasicBlock, taken: bool, k: int = 0) -> None:
        """Observe one dynamic basic-block execution.

        Ops accumulate in a run counter; when the block's terminator is
        taken, the run (including this block) is credited to the branch's
        bucket, matching the Fig. 4 hardware.  The execution count *k* is
        ignored: the BBV is a pure control-flow signal.
        """
        self.total_ops += block.n_ops
        if taken:
            self._registers[self.bucket_for(block)] += self._run_ops + block.n_ops
            self._run_ops = 0
        else:
            self._run_ops += block.n_ops

    def _resolve_buckets(self, blocks: Sequence[BasicBlock]) -> None:
        """Hash any not-yet-cached blocks, vectorised when possible."""
        cache = self._bucket_of_block
        fresh: Dict[int, int] = {}
        for block in blocks:
            if block.bid not in cache and block.bid not in fresh:
                fresh[block.bid] = block.branch_address
        if not fresh:
            return
        batch = getattr(self.hash_fn, "batch", None)
        bids = list(fresh.keys())
        if batch is not None:
            addresses = np.fromiter(fresh.values(), dtype=np.int64, count=len(bids))
            buckets = batch(addresses)
            for bid, bucket in zip(bids, buckets):
                cache[bid] = int(bucket)
        else:
            for bid in bids:
                cache[bid] = self.hash_fn(fresh[bid])

    def record_batch(self, runs: Sequence["BlockRun"]) -> None:
        """Observe a batch of run-length records in closed form.

        Within one run every event shares a bucket, so the per-event
        credits telescope: the ops from the run's start through its last
        taken branch (plus the run counter carried in) land in that
        bucket, and anything after the last taken branch carries out.
        Across the batch the carried run counter is reconstructed from
        prefix sums, and all credits are applied with one scatter-add —
        bit-identical to calling :meth:`record` per expanded event.
        """
        m = len(runs)
        if m == 0:
            return
        self._resolve_buckets([run.block for run in runs])
        cache = self._bucket_of_block
        n = np.empty(m, dtype=np.int64)
        n_ops = np.empty(m, dtype=np.int64)
        last_taken = np.empty(m, dtype=np.int64)
        buckets = np.empty(m, dtype=np.int64)
        for i, run in enumerate(runs):
            n[i] = run.n
            n_ops[i] = run.block.n_ops
            last_taken[i] = run.last_taken
            buckets[i] = cache[run.block.bid]

        tot = n * n_ops
        self.total_ops += int(tot.sum())
        taken_idx = np.flatnonzero(last_taken >= 0)
        if taken_idx.size == 0:
            self._run_ops += int(tot.sum())
            return
        # prefix[i] = ops of runs 0..i-1; residual = ops after the last
        # taken branch within each taken run.
        prefix = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(tot)))
        residual = n_ops[taken_idx] * (n[taken_idx] - 1 - last_taken[taken_idx])
        entering = np.empty(taken_idx.size, dtype=np.int64)
        entering[0] = self._run_ops + prefix[taken_idx[0]]
        if taken_idx.size > 1:
            entering[1:] = (
                residual[:-1] + prefix[taken_idx[1:]] - prefix[taken_idx[:-1] + 1]
            )
        credit = entering + n_ops[taken_idx] * (last_taken[taken_idx] + 1)
        np.add.at(self._registers, buckets[taken_idx], credit)
        self._run_ops = int(residual[-1] + prefix[m] - prefix[taken_idx[-1] + 1])

    def take_vector(self, normalize: bool = True) -> np.ndarray:
        """Compile the register file into a vector and reset it in place.

        Args:
            normalize: L2-normalise the result (the paper's comparison form).
        """
        vec = self._registers.copy()
        self._registers.fill(0.0)
        self._run_ops = 0
        if normalize:
            norm = l2_norm(vec)
            if norm > 0.0:
                vec /= norm
        return vec

    def peek_vector(self) -> np.ndarray:
        """Current raw (unnormalised) register contents, without reset."""
        return self._registers.copy()

    def reset(self) -> None:
        """Clear registers (in place), run counter and op total."""
        self._registers.fill(0.0)
        self._run_ops = 0
        self.total_ops = 0

    def snapshot(self) -> Dict[str, object]:
        """Capture tracker state for checkpointing.

        Registers travel as a compact float64 buffer
        (:func:`~repro.signals.base.pack_registers`), not a Python list,
        so wide register files stay cheap in fleet checkpoints.
        """
        return {
            "registers": pack_registers(self._registers),
            "run_ops": self._run_ops,
            "total_ops": self.total_ops,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot` (either the compact
        buffer form or the historical list form)."""
        self._registers = unpack_registers(state["registers"], self.n_buckets)
        self._run_ops = state["run_ops"]  # type: ignore[assignment]
        self.total_ops = state["total_ops"]  # type: ignore[assignment]

"""Pluggable phase signals: the vectors the online classifier compares.

The paper's phase signal is the basic-block vector (Figure 4): taken
branches hash into a small register file that accumulates
ops-since-last-taken-branch.  BBVs are a *control-flow* projection, so
phases that execute the same code over different data are invisible to
them; Caculo et al. (PAPERS.md) show memory-access vectors catch exactly
those.  This package makes the signal a first-class abstraction:

* :class:`SignalTracker` — the protocol every signal implements
  (``record`` / ``record_batch`` / ``take_vector`` / ``snapshot`` /
  ``restore``); the engine and the sampling plans are written against
  it.
* :class:`BbvTracker` — the paper's BBV (the default signal), with the
  reduced 5-bit and wide modulo hashes.
* :class:`MavTracker` — an online reduced memory-access vector over
  cache-line/page granularities, batched in closed form from the same
  run-length records.
* :class:`ConcatenatedSignal` — a weighted concatenation of signals
  (BBV + MAV by default), sensitive to phase changes visible to either.
* :func:`make_signal_tracker` — the ``phase_signal`` knob
  (``"bbv"`` / ``"mav"`` / ``"concat"``) resolved into a tracker; the
  sampling techniques thread this through their configs.

Vector geometry (L2 normalisation, angle distance) lives in
:mod:`repro.signals.vector` and applies to every signal alike.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConfigurationError
from .base import SignalTracker, pack_registers, unpack_registers
from .bbv import BbvHash, BbvTracker, ReducedBbvHash, WideBbvHash
from .concat import ConcatenatedSignal
from .mav import MavTracker, pattern_addresses
from .vector import angle_between, l2_norm, l2_normalize, manhattan_distance

__all__ = [
    "PHASE_SIGNALS",
    "BbvHash",
    "BbvTracker",
    "ConcatenatedSignal",
    "MavTracker",
    "ReducedBbvHash",
    "SignalTracker",
    "WideBbvHash",
    "angle_between",
    "l2_norm",
    "l2_normalize",
    "make_signal_tracker",
    "manhattan_distance",
    "pack_registers",
    "pattern_addresses",
    "unpack_registers",
]

#: Valid values of the ``phase_signal`` configuration knob.
PHASE_SIGNALS = ("bbv", "mav", "concat")


def make_signal_tracker(
    signal: str = "bbv",
    hash_seed: int = 12345,
    wide_bbv_buckets: Optional[int] = None,
    mav_buckets: int = 32,
    signal_weights: Sequence[float] = (1.0, 1.0),
) -> SignalTracker:
    """Resolve a ``phase_signal`` knob value into a tracker.

    Args:
        signal: ``"bbv"`` (paper default), ``"mav"``, or ``"concat"``
            (BBV + MAV concatenated).
        hash_seed: seed of the reduced BBV hash's bit choice.
        wide_bbv_buckets: when set, the BBV part uses the wide modulo
            hash of this many buckets (the dimensionality ablation).
        mav_buckets: MAV register-file width per granularity.
        signal_weights: per-signal weights for ``"concat"``
            (BBV weight first).
    """

    def bbv() -> BbvTracker:
        if wide_bbv_buckets is not None:
            return BbvTracker(WideBbvHash(wide_bbv_buckets))
        return BbvTracker(ReducedBbvHash(seed=hash_seed))

    if signal == "bbv":
        return bbv()
    if signal == "mav":
        return MavTracker(n_buckets=mav_buckets)
    if signal == "concat":
        return ConcatenatedSignal(
            [bbv(), MavTracker(n_buckets=mav_buckets)],
            weights=list(signal_weights),
        )
    raise ConfigurationError(
        f"unknown phase signal {signal!r}; expected one of {PHASE_SIGNALS}"
    )

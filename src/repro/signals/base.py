"""The phase-signal tracker contract and shared serialisation helpers.

A *signal tracker* turns the engine's dynamic event stream into periodic
fixed-width vectors that the online phase classifier compares.  The
original (and default) signal is the paper's basic-block vector; the
layer exists so other projections of program behaviour — memory-access
vectors, or weighted concatenations — plug into the same engine
attachment point and classifier without either side changing.

Every tracker implements :class:`SignalTracker`: scalar ``record`` and
vectorised ``record_batch`` accumulation (bit-identical to each other),
``take_vector`` to compile-and-reset the register file at a sampling
period boundary, and ``snapshot``/``restore`` for engine checkpoints.

Register files are checkpointed through :func:`pack_registers` /
:func:`unpack_registers`: a raw little-endian float64 buffer instead of
a Python list, so a 1024-bucket wide-BBV or MAV register file costs
8 KiB in a pickled fleet checkpoint rather than a list of boxed floats.
``unpack_registers`` still accepts the historical list payloads, so
checkpoints written before the compact form restore unchanged.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Dict, Protocol, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..program.block import BasicBlock

if TYPE_CHECKING:
    from ..program.stream import BlockRun

__all__ = ["SignalTracker", "pack_registers", "unpack_registers"]


class SignalTracker(Protocol):
    """Structural type of a phase-signal tracker.

    The engine duck-types its attached tracker against this protocol:
    scalar modes call :meth:`record` once per dynamic basic block, the
    batched paths call :meth:`record_batch` once per run-length batch,
    and the sampling plans call :meth:`take_vector` at each signal
    period boundary.
    """

    #: Dynamic operations observed since construction / :meth:`reset`.
    total_ops: int

    def record(self, block: BasicBlock, taken: bool, k: int = 0) -> None:
        """Observe one dynamic execution of *block*.

        Args:
            block: the static block executed.
            taken: outcome of the terminating branch.
            k: the block's execution count before this event — the input
                to its memory-address generators.  Control-flow signals
                may ignore it.
        """
        ...

    def record_batch(self, runs: Sequence["BlockRun"]) -> None:
        """Observe a batch of run-length records, bit-identical to
        calling :meth:`record` for every expanded event."""
        ...

    def take_vector(self, normalize: bool = True) -> np.ndarray:
        """Compile the register file into a vector and reset it."""
        ...

    def peek_vector(self) -> np.ndarray:
        """Current raw register contents, without reset."""
        ...

    def reset(self) -> None:
        """Clear all accumulated state."""
        ...

    def snapshot(self) -> Dict[str, object]:
        """Capture tracker state for checkpointing."""
        ...

    def restore(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        ...


def pack_registers(registers: np.ndarray) -> bytes:
    """Compact checkpoint form of a register file.

    A raw little-endian float64 buffer: 8 bytes per bucket in the
    pickled checkpoint instead of a boxed Python float per bucket.
    """
    arr = np.ascontiguousarray(registers, dtype=np.float64)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        arr = arr.astype("<f8")
    return arr.tobytes()


def unpack_registers(payload: object, n_buckets: int) -> np.ndarray:
    """Rebuild a register file from :func:`pack_registers` output.

    Also accepts the historical ``list[float]`` payloads written by
    pre-compact snapshots, so old fleet checkpoints stay restorable.
    """
    if isinstance(payload, (bytes, bytearray)):
        registers = np.frombuffer(payload, dtype="<f8").astype(
            np.float64, copy=True
        )
    elif isinstance(payload, np.ndarray) or isinstance(payload, (list, tuple)):
        registers = np.array(payload, dtype=np.float64)
    else:
        raise ConfigurationError(
            f"unsupported register payload type {type(payload).__name__}"
        )
    if registers.shape != (n_buckets,):
        raise ConfigurationError(
            f"register payload has {registers.shape[0]} buckets, "
            f"tracker expects {n_buckets}; was the checkpoint written "
            f"with a different signal configuration?"
        )
    return registers

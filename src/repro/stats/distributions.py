"""Distribution diagnostics for the Figure 3 polymodality argument.

SMARTS' confidence analysis assumes the sample population is unimodal
Gaussian; the paper shows (Fig. 3) that phased programs produce polymodal
IPC distributions instead.  These helpers quantify that: a histogram, the
sample bimodality coefficient, and a simple smoothed-histogram peak count.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import SamplingError

__all__ = ["histogram", "bimodality_coefficient", "modality_peaks"]


def histogram(
    values: Sequence[float],
    bins: int = 40,
    weights: Sequence[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted histogram of *values*: returns (bin_edges, counts).

    The Fig. 3 distribution weighs each IPC observation by the cycles spent
    at it ("the approximate number of cycles spent in each IPC bin"); pass
    per-window cycle counts as *weights* to reproduce that.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SamplingError("histogram of an empty sequence")
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    counts, edges = np.histogram(arr, bins=bins, weights=w)
    return edges, counts


def bimodality_coefficient(values: Sequence[float]) -> float:
    """Sarle's bimodality coefficient.

    ``BC = (skew^2 + 1) / (kurtosis + 3 (n-1)^2 / ((n-2)(n-3)))`` where
    *kurtosis* is excess kurtosis.  Values above ~0.555 (the uniform
    distribution's coefficient) suggest bi- or polymodality; a Gaussian
    scores ~0.33.
    """
    arr = np.asarray(values, dtype=np.float64)
    n = arr.size
    if n < 4:
        raise SamplingError("bimodality coefficient needs at least 4 samples")
    mean = arr.mean()
    centered = arr - mean
    m2 = float((centered**2).mean())
    if m2 == 0.0:
        return 0.0
    m3 = float((centered**3).mean())
    m4 = float((centered**4).mean())
    skew = m3 / m2**1.5
    excess_kurtosis = m4 / m2**2 - 3.0
    correction = 3.0 * (n - 1) ** 2 / ((n - 2) * (n - 3))
    return (skew**2 + 1.0) / (excess_kurtosis + correction)


def modality_peaks(
    values: Sequence[float],
    bins: int = 40,
    smooth: int = 3,
    min_prominence: float = 0.05,
    weights: Sequence[float] = None,
) -> List[float]:
    """Locate the modes of a distribution from a smoothed histogram.

    Returns the bin-centre positions of local maxima whose height exceeds
    *min_prominence* times the tallest peak.  Used to verify that phased
    workloads (e.g. the wupwise analogue of Fig. 3) really are polymodal.
    """
    edges, counts = histogram(values, bins=bins, weights=weights)
    smoothed = counts.astype(np.float64)
    if smooth > 1:
        kernel = np.ones(smooth) / smooth
        smoothed = np.convolve(smoothed, kernel, mode="same")
    centres = 0.5 * (edges[:-1] + edges[1:])
    top = smoothed.max()
    if top == 0.0:
        return []
    peaks: List[float] = []
    for i in range(len(smoothed)):
        left = smoothed[i - 1] if i > 0 else -1.0
        right = smoothed[i + 1] if i + 1 < len(smoothed) else -1.0
        if smoothed[i] >= left and smoothed[i] > right:
            if smoothed[i] >= min_prominence * top:
                peaks.append(float(centres[i]))
    # Merge plateau-adjacent peaks (equal neighbours) into one.
    merged: List[float] = []
    for p in peaks:
        if merged and abs(p - merged[-1]) <= (edges[1] - edges[0]) * 1.5:
            continue
        merged.append(p)
    return merged

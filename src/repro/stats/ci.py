"""Confidence intervals for sample-mean estimates.

SMARTS-style sampling decides when to stop by testing whether the half
width of a confidence interval around the running mean is inside a relative
error bound (paper: 3% at 99.7% confidence).  The z/t critical values are
computed from scratch (inverse error function via Newton iteration on the
complementary error function) so the core library needs only numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ConfidenceInterval",
    "z_value",
    "t_value",
    "normal_ci",
    "student_t_ci",
    "required_samples",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean.

    Attributes:
        mean: sample mean.
        half_width: half the interval width (absolute units).
        confidence: confidence level in (0, 1).
        n: number of samples.
    """

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half width as a fraction of the mean (inf for zero mean)."""
        if self.mean == 0.0:
            return math.inf
        return abs(self.half_width / self.mean)

    def within_relative(self, bound: float) -> bool:
        """True when the interval is inside ``mean * (1 +- bound)``."""
        return self.relative_half_width <= bound


def _inverse_normal_cdf(p: float) -> float:
    """Quantile of the standard normal via Acklam's rational approximation,
    polished with one Halley step on the complementary error function."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError("p must be in (0, 1)")
    # Acklam coefficients.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    # One Halley refinement using the normal CDF expressed with erfc.
    e = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    x = x - u / (1.0 + x * u / 2.0)
    return x


def z_value(confidence: float) -> float:
    """Two-sided standard-normal critical value for *confidence*.

    ``z_value(0.997)`` is approximately 2.97 — the "3 sigma" bound of the
    paper's 99.7% TurboSMARTS configuration.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    return _inverse_normal_cdf(0.5 + confidence / 2.0)


def t_value(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value with *dof* degrees of freedom.

    Computed by numerically inverting the regularised incomplete beta
    function via bisection on the t CDF; accurate to ~1e-10, which is far
    tighter than sampling noise.
    """
    if dof < 1:
        raise ConfigurationError("dof must be at least 1")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    if dof > 200:
        return z_value(confidence)
    target = 0.5 + confidence / 2.0

    def t_cdf(x: float) -> float:
        # CDF via the regularised incomplete beta function.
        if x == 0.0:
            return 0.5
        v = float(dof)
        ib = _reg_inc_beta(v / 2.0, 0.5, v / (v + x * x))
        return 1.0 - 0.5 * ib if x > 0 else 0.5 * ib

    lo, hi = 0.0, 1e3
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _reg_inc_beta(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta I_x(a, b) via continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)
    front = math.exp(a * math.log(x) + b * math.log(1.0 - x) - ln_beta)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def _beta_cf(a: float, b: float, x: float) -> float:
    """Lentz continued fraction for the incomplete beta function."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def normal_ci(
    samples: Sequence[float], confidence: float = 0.997
) -> ConfidenceInterval:
    """Normal-theory CI around the mean of *samples* (SMARTS style)."""
    arr = np.asarray(samples, dtype=np.float64)
    n = arr.size
    if n < 2:
        return ConfidenceInterval(
            mean=float(arr.mean()) if n else 0.0,
            half_width=math.inf,
            confidence=confidence,
            n=n,
        )
    sd = float(arr.std(ddof=1))
    half = z_value(confidence) * sd / math.sqrt(n)
    return ConfidenceInterval(float(arr.mean()), half, confidence, n)


def student_t_ci(
    samples: Sequence[float], confidence: float = 0.997
) -> ConfidenceInterval:
    """Student-t CI — correct for the small per-phase sample counts of PGSS."""
    arr = np.asarray(samples, dtype=np.float64)
    n = arr.size
    if n < 2:
        return ConfidenceInterval(
            mean=float(arr.mean()) if n else 0.0,
            half_width=math.inf,
            confidence=confidence,
            n=n,
        )
    sd = float(arr.std(ddof=1))
    half = t_value(confidence, n - 1) * sd / math.sqrt(n)
    return ConfidenceInterval(float(arr.mean()), half, confidence, n)


def required_samples(
    cv: float, confidence: float = 0.997, rel_error: float = 0.03
) -> int:
    """SMARTS Eq. (1): samples needed for a relative error at a confidence.

    Args:
        cv: coefficient of variation of the sampled quantity.
        confidence: confidence level.
        rel_error: relative half-width target.
    """
    if cv < 0:
        raise ConfigurationError("cv must be non-negative")
    if rel_error <= 0:
        raise ConfigurationError("rel_error must be positive")
    z = z_value(confidence)
    return max(int(math.ceil((z * cv / rel_error) ** 2)), 1)

"""Statistics for sampled simulation.

Provides the estimators and confidence machinery the sampling techniques
depend on: sample summaries, normal/Student-t confidence intervals (SMARTS
and TurboSMARTS, paper Section 2.2), stratified per-phase estimation
(PGSS-Sim, Section 3), error metrics for the evaluation figures, and the
distribution diagnostics behind Figure 3's polymodality argument.
"""

from .ci import (
    ConfidenceInterval,
    normal_ci,
    student_t_ci,
    z_value,
    t_value,
    required_samples,
)
from .estimators import (
    SampleSummary,
    StratifiedEstimate,
    summarize,
    stratified_ipc,
    stratified_ratio_ipc,
)
from .errors_metrics import (
    percent_error,
    arithmetic_mean,
    geometric_mean,
    error_table,
)
from .distributions import (
    histogram,
    bimodality_coefficient,
    modality_peaks,
)
from .sampling_theory import (
    population_variance,
    within_stratum_variance,
    stratification_gain,
    required_samples_comparison,
)

__all__ = [
    "ConfidenceInterval",
    "normal_ci",
    "student_t_ci",
    "z_value",
    "t_value",
    "required_samples",
    "SampleSummary",
    "StratifiedEstimate",
    "summarize",
    "stratified_ipc",
    "stratified_ratio_ipc",
    "percent_error",
    "arithmetic_mean",
    "geometric_mean",
    "error_table",
    "histogram",
    "bimodality_coefficient",
    "modality_peaks",
    "population_variance",
    "within_stratum_variance",
    "stratification_gain",
    "required_samples_comparison",
]

"""Sampling-theory analysis: why stratifying by phase wins.

The paper's Section 2.2 argues that because phased programs have polymodal
sample populations, SMARTS' one-population analysis "overestimates"
variation, while "if phase behavior is considered, only a very small
number of samples are needed from each phase to characterize that phase";
its reference [17] (Wunderlich et al., stratified-sampling evaluation)
measured a 40x+ reduction in required samples.

These helpers quantify that on any labelled sample population:

* :func:`population_variance` — the variance SMARTS' bound sees;
* :func:`within_stratum_variance` — the pooled variance a stratified
  estimator sees;
* :func:`stratification_gain` — the ratio of samples needed without vs
  with stratification at equal confidence (variance ratio under
  proportional allocation — Neyman allocation would do even better);
* :func:`pool_singleton_strata` — merge one-member strata into their
  nearest neighbour so per-stratum variances are always defined;
* :func:`neyman_allocation` — the optimal (size x std proportional)
  split of a detailed-sample budget across strata, the stage-2 rule of
  two-phase stratified sampling (Ekman & Stenström);
* :func:`stratified_mean_ci` — a confidence interval for the stratified
  point estimate from per-stratum sample scatter.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..errors import EstimateError, SamplingError
from .ci import ConfidenceInterval, required_samples, t_value

__all__ = [
    "population_variance",
    "within_stratum_variance",
    "stratification_gain",
    "required_samples_comparison",
    "pool_singleton_strata",
    "neyman_allocation",
    "stratified_mean_ci",
]


def _check(values: Sequence[float], labels: Sequence[int]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SamplingError("empty sample population")
    if len(labels) != arr.size:
        raise SamplingError("labels must match values in length")
    return arr


def population_variance(values: Sequence[float]) -> float:
    """Plain population variance (the unstratified analysis' input)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SamplingError("empty sample population")
    return float(arr.var(ddof=0))


def pool_singleton_strata(
    values: Sequence[float], labels: Sequence[int]
) -> List[int]:
    """Relabel so that every stratum has at least two members.

    A one-member stratum has an undefined sample variance, which used to
    degenerate :func:`within_stratum_variance` to contributions of zero
    (and :func:`stratification_gain` to ``inf`` whenever *every* stratum
    was a singleton).  Each singleton is merged into the stratum whose
    member mean is nearest (ties to the smaller label), repeatedly and
    deterministically, until none remain.

    Returns the pooled label list (same length as *values*).

    Raises:
        EstimateError: for a population of one — there is nothing to
            pool a lone singleton stratum with.
    """
    arr = _check(values, labels)
    if arr.size == 1:
        raise EstimateError(
            "cannot pool singleton strata in a population of one value; "
            "a stratified variance estimate needs at least two members"
        )
    pooled = list(labels)
    while True:
        members: Dict[int, List[int]] = {}
        for index, label in enumerate(pooled):
            members.setdefault(label, []).append(index)
        singletons = sorted(
            label for label, idx in members.items() if len(idx) == 1
        )
        if not singletons or len(members) < 2:
            break
        label = singletons[0]
        mean = float(arr[members[label][0]])
        target = min(
            (other for other in members if other != label),
            key=lambda other: (
                abs(float(arr[members[other]].mean()) - mean),
                other,
            ),
        )
        for index in members[label]:
            pooled[index] = target
    return pooled


def within_stratum_variance(
    values: Sequence[float], labels: Sequence[int]
) -> float:
    """Pooled within-stratum variance under proportional allocation.

    ``sum_h (n_h / n) * var_h`` — the variance a stratified estimator's
    sampling error is driven by.  One-member strata are first pooled
    into their nearest neighbour (:func:`pool_singleton_strata`): a
    singleton's zero population variance is an artefact of the sample
    size, not evidence the stratum is noiseless, and letting it stand
    made the all-singletons labelling look like a perfect stratification.
    """
    arr = _check(values, labels)
    label_arr = np.asarray(labels)
    if arr.size > 1:
        _, counts = np.unique(label_arr, return_counts=True)
        if counts.min() < 2:
            label_arr = np.asarray(pool_singleton_strata(values, labels))
    total = 0.0
    for stratum in np.unique(label_arr):
        members = arr[label_arr == stratum]
        total += (members.size / arr.size) * float(members.var(ddof=0))
    return total


def stratification_gain(
    values: Sequence[float], labels: Sequence[int]
) -> float:
    """How many times fewer samples stratification needs.

    The required sample count scales with variance at fixed confidence and
    error, so the gain is ``population_variance / within_stratum_variance``.
    Returns ``inf`` when the (singleton-pooled) strata are internally
    constant; an all-singletons labelling no longer qualifies, because
    :func:`within_stratum_variance` pools singletons before measuring.
    """
    pop = population_variance(values)
    within = within_stratum_variance(values, labels)
    if within == 0.0:
        return float("inf")
    return pop / within


def neyman_allocation(
    strata_sizes: Sequence[int],
    strata_stds: Sequence[float],
    budget: int,
) -> List[int]:
    """Split a detailed-sample budget across strata à la Neyman.

    The optimal allocation under a fixed total sample count puts
    ``n_h proportional to N_h * S_h`` (stratum size times stratum standard
    deviation).  This integer version guarantees:

    * allocations sum *exactly* to ``budget`` (largest-remainder
      rounding, ties to the lower stratum index);
    * every nonempty stratum receives at least one sample, so no
      stratum's contribution to the estimate is pure extrapolation;
    * all-zero (or degenerate) deviation estimates — the singleton-pilot
      case — fall back to proportional allocation instead of dividing
      the budget by zero.

    Empty strata (size 0) receive 0.  Allocations are not capped at the
    stratum size; callers sampling without replacement cap and
    redistribute against their own availability.

    Raises:
        SamplingError: on mismatched lengths, negative sizes/stds,
            no nonempty strata, or a budget smaller than the number of
            nonempty strata.
    """
    if len(strata_sizes) != len(strata_stds):
        raise SamplingError("strata_sizes and strata_stds must match in length")
    if any(size < 0 for size in strata_sizes):
        raise SamplingError("strata sizes must be non-negative")
    if any(std < 0 or not math.isfinite(std) for std in strata_stds):
        raise SamplingError("strata stds must be finite and non-negative")
    nonempty = [i for i, size in enumerate(strata_sizes) if size > 0]
    if not nonempty:
        raise SamplingError("at least one stratum must be nonempty")
    if budget < len(nonempty):
        raise SamplingError(
            f"budget {budget} cannot give each of the {len(nonempty)} "
            "nonempty strata its minimum of one sample"
        )
    weights = [strata_sizes[i] * strata_stds[i] for i in nonempty]
    if sum(weights) == 0.0:
        # Pilot stds of zero carry no signal; fall back to proportional.
        weights = [float(strata_sizes[i]) for i in nonempty]
    total_weight = sum(weights)

    allocation = [0] * len(strata_sizes)
    quotas = [budget * w / total_weight for w in weights]
    floors = [int(math.floor(q)) for q in quotas]
    for pos, index in enumerate(nonempty):
        allocation[index] = floors[pos]
    leftover = budget - sum(floors)
    by_remainder = sorted(
        range(len(nonempty)),
        key=lambda pos: (-(quotas[pos] - floors[pos]), nonempty[pos]),
    )
    for pos in by_remainder[:leftover]:
        allocation[nonempty[pos]] += 1
    # Give zero-weight/rounded-out strata their minimum of one, funded by
    # the largest allocations (ties to the higher stratum index).
    for index in nonempty:
        if allocation[index] == 0:
            donor = max(
                (i for i in nonempty if allocation[i] > 1),
                key=lambda i: (allocation[i], i),
            )
            allocation[donor] -= 1
            allocation[index] = 1
    return allocation


def stratified_mean_ci(
    ops_per_stratum: Mapping[int, int],
    samples_per_stratum: Mapping[int, Sequence[float]],
    confidence: float = 0.997,
) -> ConfidenceInterval:
    """Confidence interval for a stratified (ops-weighted) mean estimate.

    The estimator variance is ``sum_h W_h^2 * s_h^2 / n_h`` over the
    covered strata (weights renormalised to the covered ops).  Strata
    with a single sample have no variance estimate of their own; they
    borrow the pooled (dof-weighted) variance of the multi-sample strata
    rather than claiming zero — the singleton-stratum guard.  When *no*
    stratum has two samples the half width is ``inf`` (honest: the
    scatter is unobserved), never NaN.

    Raises:
        SamplingError: when no stratum has any samples or total ops is 0.
    """
    covered = {
        key: np.asarray(samples_per_stratum[key], dtype=np.float64)
        for key in samples_per_stratum
        if len(samples_per_stratum[key]) > 0 and ops_per_stratum.get(key, 0) > 0
    }
    if not covered:
        raise SamplingError("no stratum has any samples")
    covered_ops = sum(ops_per_stratum[key] for key in covered)
    if covered_ops <= 0:
        raise SamplingError("total ops across covered strata must be positive")
    weights = {key: ops_per_stratum[key] / covered_ops for key in covered}
    point = sum(weights[key] * float(covered[key].mean()) for key in covered)

    dof = sum(arr.size - 1 for arr in covered.values() if arr.size > 1)
    n_total = sum(arr.size for arr in covered.values())
    if dof < 1:
        return ConfidenceInterval(point, math.inf, confidence, n_total)
    pooled_var = (
        sum(
            (arr.size - 1) * float(arr.var(ddof=1))
            for arr in covered.values()
            if arr.size > 1
        )
        / dof
    )
    variance = 0.0
    for key, arr in covered.items():
        s2 = float(arr.var(ddof=1)) if arr.size > 1 else pooled_var
        variance += weights[key] ** 2 * s2 / arr.size
    half = t_value(confidence, dof) * math.sqrt(variance)
    return ConfidenceInterval(point, half, confidence, n_total)


def required_samples_comparison(
    values: Sequence[float],
    labels: Sequence[int],
    confidence: float = 0.997,
    rel_error: float = 0.03,
) -> Dict[str, float]:
    """Samples needed with and without phase stratification.

    Returns a dict with ``unstratified`` and ``stratified`` sample counts
    (both for the same confidence and relative error on the mean) and the
    ``gain`` ratio — the quantity [17] reports as "over forty times" for
    SMARTS with phase knowledge.
    """
    arr = _check(values, labels)
    mean = float(arr.mean())
    if mean == 0.0:
        raise SamplingError("zero-mean population has no relative error")
    cv_pop = population_variance(values) ** 0.5 / abs(mean)
    cv_strat = within_stratum_variance(values, labels) ** 0.5 / abs(mean)
    unstratified = required_samples(cv_pop, confidence, rel_error)
    stratified = required_samples(cv_strat, confidence, rel_error)
    return {
        "unstratified": float(unstratified),
        "stratified": float(stratified),
        "gain": unstratified / max(stratified, 1),
    }

"""Sampling-theory analysis: why stratifying by phase wins.

The paper's Section 2.2 argues that because phased programs have polymodal
sample populations, SMARTS' one-population analysis "overestimates"
variation, while "if phase behavior is considered, only a very small
number of samples are needed from each phase to characterize that phase";
its reference [17] (Wunderlich et al., stratified-sampling evaluation)
measured a 40x+ reduction in required samples.

These helpers quantify that on any labelled sample population:

* :func:`population_variance` — the variance SMARTS' bound sees;
* :func:`within_stratum_variance` — the pooled variance a stratified
  estimator sees;
* :func:`stratification_gain` — the ratio of samples needed without vs
  with stratification at equal confidence (variance ratio under
  proportional allocation — Neyman allocation would do even better).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import SamplingError
from .ci import required_samples

__all__ = [
    "population_variance",
    "within_stratum_variance",
    "stratification_gain",
    "required_samples_comparison",
]


def _check(values: Sequence[float], labels: Sequence[int]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SamplingError("empty sample population")
    if len(labels) != arr.size:
        raise SamplingError("labels must match values in length")
    return arr


def population_variance(values: Sequence[float]) -> float:
    """Plain population variance (the unstratified analysis' input)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SamplingError("empty sample population")
    return float(arr.var(ddof=0))


def within_stratum_variance(
    values: Sequence[float], labels: Sequence[int]
) -> float:
    """Pooled within-stratum variance under proportional allocation.

    ``sum_h (n_h / n) * var_h`` — the variance a stratified estimator's
    sampling error is driven by.  Strata with one member contribute zero.
    """
    arr = _check(values, labels)
    label_arr = np.asarray(labels)
    total = 0.0
    for stratum in np.unique(label_arr):
        members = arr[label_arr == stratum]
        total += (members.size / arr.size) * float(members.var(ddof=0))
    return total


def stratification_gain(
    values: Sequence[float], labels: Sequence[int]
) -> float:
    """How many times fewer samples stratification needs.

    The required sample count scales with variance at fixed confidence and
    error, so the gain is ``population_variance / within_stratum_variance``.
    Returns ``inf`` when the strata are internally constant.
    """
    pop = population_variance(values)
    within = within_stratum_variance(values, labels)
    if within == 0.0:
        return float("inf")
    return pop / within


def required_samples_comparison(
    values: Sequence[float],
    labels: Sequence[int],
    confidence: float = 0.997,
    rel_error: float = 0.03,
) -> Dict[str, float]:
    """Samples needed with and without phase stratification.

    Returns a dict with ``unstratified`` and ``stratified`` sample counts
    (both for the same confidence and relative error on the mean) and the
    ``gain`` ratio — the quantity [17] reports as "over forty times" for
    SMARTS with phase knowledge.
    """
    arr = _check(values, labels)
    mean = float(arr.mean())
    if mean == 0.0:
        raise SamplingError("zero-mean population has no relative error")
    cv_pop = population_variance(values) ** 0.5 / abs(mean)
    cv_strat = within_stratum_variance(values, labels) ** 0.5 / abs(mean)
    unstratified = required_samples(cv_pop, confidence, rel_error)
    stratified = required_samples(cv_strat, confidence, rel_error)
    return {
        "unstratified": float(unstratified),
        "stratified": float(stratified),
        "gain": unstratified / max(stratified, 1),
    }

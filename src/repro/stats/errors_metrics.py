"""Error metrics used by the evaluation figures.

The paper reports "sampling error as a percent of benchmark IPC" per
benchmark, plus an arithmetic mean (A-Mean) and geometric mean (G-Mean)
column across the suite (Figs. 11 and 12).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

from ..errors import SamplingError

__all__ = ["percent_error", "arithmetic_mean", "geometric_mean", "error_table"]


def percent_error(estimate: float, truth: float) -> float:
    """Absolute relative error in percent: ``100 * |est - true| / true``."""
    if truth == 0.0:
        raise SamplingError("true value must be non-zero for percent error")
    return 100.0 * abs(estimate - truth) / abs(truth)


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain arithmetic mean (the figures' A-Mean column)."""
    values = list(values)
    if not values:
        raise SamplingError("mean of an empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float], floor: float = 1e-6) -> float:
    """Geometric mean with a small floor (the figures' G-Mean column).

    Zero errors are clamped to *floor* so a single perfect estimate does
    not collapse the G-Mean to zero.
    """
    values = list(values)
    if not values:
        raise SamplingError("mean of an empty sequence")
    log_sum = sum(math.log(max(v, floor)) for v in values)
    return math.exp(log_sum / len(values))


def error_table(
    estimates: Mapping[str, float], truths: Mapping[str, float]
) -> Dict[str, float]:
    """Per-benchmark percent error plus ``A-Mean`` and ``G-Mean`` rows.

    Args:
        estimates: benchmark -> estimated IPC.
        truths: benchmark -> true IPC; must cover every estimate key.
    """
    missing = set(estimates) - set(truths)
    if missing:
        raise SamplingError(f"missing truth for benchmarks: {sorted(missing)}")
    table = {
        name: percent_error(estimates[name], truths[name]) for name in estimates
    }
    errors = list(table.values())
    if errors:
        table["A-Mean"] = arithmetic_mean(errors)
        table["G-Mean"] = geometric_mean(errors)
    return table

"""Point estimators for sampled simulation.

Two estimator families appear in the paper:

* the *simple* (SMARTS) estimator — treat all samples as one population;
* the *stratified* (PGSS / SimPoint) estimator — weight each stratum
  (phase/cluster) by its share of the program's operations, using only the
  samples taken inside that stratum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..errors import SamplingError

__all__ = [
    "SampleSummary",
    "StratifiedEstimate",
    "summarize",
    "stratified_ipc",
    "stratified_ratio_ipc",
]


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a sample population.

    Attributes:
        n: number of samples.
        mean: arithmetic mean.
        std: sample standard deviation (ddof=1; 0.0 for n < 2).
        minimum, maximum: extremes.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (inf for zero mean)."""
        if self.mean == 0.0:
            return math.inf
        return self.std / abs(self.mean)


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Summarise *samples* (empty input yields an all-zero summary)."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        return SampleSummary(0, 0.0, 0.0, 0.0, 0.0)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return SampleSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


@dataclass(frozen=True)
class StratifiedEstimate:
    """A weighted-by-stratum IPC estimate.

    Attributes:
        ipc: the stratified point estimate.
        weights: stratum -> weight (fraction of total ops).
        stratum_means: stratum -> mean sampled IPC.
        uncovered_weight: total weight of strata that had no samples and
            fell back to the global mean.
    """

    ipc: float
    weights: Dict[object, float]
    stratum_means: Dict[object, float]
    uncovered_weight: float


def stratified_ipc(
    ops_per_stratum: Mapping[object, int],
    samples_per_stratum: Mapping[object, Sequence[float]],
) -> StratifiedEstimate:
    """Weighted per-stratum IPC estimate (paper Sections 2.1 and 3).

    "Estimating overall program performance is then simply a matter of
    calculating a weighted sum of the performance of each simulation point
    multiplied by the contribution of that phase."

    Strata with ops but no samples (possible for phases discovered at the
    very end of a run) contribute the mean of all covered strata, weighted
    by their ops; their total weight is reported as ``uncovered_weight``.

    Raises:
        SamplingError: when no stratum has any samples, or total ops is 0.
    """
    total_ops = sum(ops_per_stratum.values())
    if total_ops <= 0:
        raise SamplingError("total ops across strata must be positive")

    weights: Dict[object, float] = {
        key: ops / total_ops for key, ops in ops_per_stratum.items()
    }
    stratum_means: Dict[object, float] = {}
    covered_weight = 0.0
    weighted_sum = 0.0
    for key, weight in weights.items():
        samples = samples_per_stratum.get(key, ())
        if len(samples) > 0:
            mean = float(np.mean(np.asarray(samples, dtype=np.float64)))
            stratum_means[key] = mean
            covered_weight += weight
            weighted_sum += weight * mean
    if covered_weight == 0.0:
        raise SamplingError("no stratum has any samples")

    covered_mean = weighted_sum / covered_weight
    uncovered_weight = 1.0 - covered_weight
    ipc = weighted_sum + uncovered_weight * covered_mean
    return StratifiedEstimate(
        ipc=ipc,
        weights=weights,
        stratum_means=stratum_means,
        uncovered_weight=uncovered_weight,
    )


def stratified_ratio_ipc(
    ops_per_stratum: Mapping[object, int],
    sample_ops_cycles: Mapping[object, Sequence[tuple]],
) -> StratifiedEstimate:
    """Stratified *ratio* IPC estimate: per-stratum CPI from pooled samples.

    IPC is a ratio quantity, so the unbiased way to combine small samples is
    in cycles-per-op space: each stratum's CPI is estimated as
    ``sum(sample cycles) / sum(sample ops)`` and the program estimate is
    ``total_ops / sum(stratum_ops * stratum_cpi)``.  A plain arithmetic mean
    of per-sample IPCs overweights high-IPC samples — catastrophically so
    for workloads whose fine-grained behaviour oscillates between fast and
    slow micro-phases (the paper's 179.art / 181.mcf discussion).

    Args:
        ops_per_stratum: stratum -> operations attributed to it.
        sample_ops_cycles: stratum -> sequence of ``(ops, cycles)`` pairs,
            one per detailed sample taken in the stratum.

    Strata without samples contribute the pooled CPI of the covered strata.
    """
    total_ops = sum(ops_per_stratum.values())
    if total_ops <= 0:
        raise SamplingError("total ops across strata must be positive")

    weights: Dict[object, float] = {
        key: ops / total_ops for key, ops in ops_per_stratum.items()
    }
    stratum_means: Dict[object, float] = {}
    covered_weight = 0.0
    weighted_cpi = 0.0
    for key, weight in weights.items():
        pairs = sample_ops_cycles.get(key, ())
        s_ops = sum(p[0] for p in pairs)
        s_cycles = sum(p[1] for p in pairs)
        if s_ops > 0 and s_cycles > 0:
            cpi = s_cycles / s_ops
            stratum_means[key] = 1.0 / cpi
            covered_weight += weight
            weighted_cpi += weight * cpi
    if covered_weight == 0.0:
        raise SamplingError("no stratum has any samples")

    pooled_cpi = weighted_cpi / covered_weight
    uncovered_weight = 1.0 - covered_weight
    total_cpi = weighted_cpi + uncovered_weight * pooled_cpi
    return StratifiedEstimate(
        ipc=1.0 / total_cpi,
        weights=weights,
        stratum_means=stratum_means,
        uncovered_weight=uncovered_weight,
    )

"""The BBV register file and its address hash (paper Figure 4).

The hash "simply selects five bits from the address and concatenates them
into an index for a register file.  The five bits are chosen at random, but
remain constant throughout the simulation."  :class:`ReducedBbvHash`
implements exactly that; :class:`WideBbvHash` is a higher-dimensional
variant used by the BBV-width ablation.

:class:`BbvTracker` accumulates ops-since-last-taken-branch into the
indexed register.  For speed it pre-resolves each basic block's branch
address to its bucket once (the hash is constant), and accumulates the
untaken-branch op run-length exactly as the hardware would: ops retired
since the *last taken branch* are credited to the bucket of the taken
branch that ends the run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..program.block import BasicBlock

__all__ = ["ReducedBbvHash", "WideBbvHash", "BbvTracker"]


class ReducedBbvHash:
    """Concatenate five randomly chosen branch-address bits (Fig. 4).

    Args:
        n_bits: number of selected bits (paper: 5, giving 32 buckets).
        seed: seed for the one-time random bit choice.
        lo, hi: inclusive range of candidate bit positions; the low two
            bits are excluded by default because instructions are 4-byte
            aligned and those bits carry no information.
    """

    def __init__(self, n_bits: int = 5, seed: int = 12345, lo: int = 2, hi: int = 23) -> None:
        if n_bits < 1 or hi - lo + 1 < n_bits:
            raise ConfigurationError("not enough candidate bits for the hash")
        rng = random.Random(seed)
        self.bit_positions = sorted(rng.sample(range(lo, hi + 1), n_bits))
        self.n_buckets = 1 << n_bits

    def __call__(self, address: int) -> int:
        """Map a branch address to its register-file index."""
        index = 0
        for shift, pos in enumerate(self.bit_positions):
            index |= ((address >> pos) & 1) << shift
        return index


class WideBbvHash:
    """A wider modulo hash used by the BBV-dimensionality ablation."""

    def __init__(self, n_buckets: int = 1024) -> None:
        if n_buckets < 2:
            raise ConfigurationError("n_buckets must be at least 2")
        self.n_buckets = n_buckets

    def __call__(self, address: int) -> int:
        """Map a branch address to a bucket by multiplicative hashing."""
        return ((address >> 2) * 2654435761 & 0xFFFFFFFF) % self.n_buckets


class BbvTracker:
    """Accumulates the BBV register file over a sampling period.

    Args:
        hash_fn: bucket function (defaults to the paper's 5-bit hash).

    The tracker is attached to a :class:`~repro.cpu.SimulationEngine`; the
    engine calls :meth:`record` once per dynamic basic block.  At each BBV
    sampling-period boundary the driver calls :meth:`take_vector` to compile
    and reset the register file.
    """

    def __init__(self, hash_fn: Optional[object] = None) -> None:
        self.hash_fn = hash_fn if hash_fn is not None else ReducedBbvHash()
        self.n_buckets = self.hash_fn.n_buckets
        self._registers: List[float] = [0.0] * self.n_buckets
        #: Ops retired since the last taken branch (the Fig. 4 side counter).
        self._run_ops = 0
        #: Per-block bucket cache: the hash of a block's branch address.
        self._bucket_of_block: Dict[int, int] = {}
        self.total_ops = 0

    def bucket_for(self, block: BasicBlock) -> int:
        """Bucket index of *block*'s terminating branch (cached)."""
        bucket = self._bucket_of_block.get(block.bid)
        if bucket is None:
            bucket = self.hash_fn(block.branch_address)
            self._bucket_of_block[block.bid] = bucket
        return bucket

    def record(self, block: BasicBlock, taken: bool) -> None:
        """Observe one dynamic basic-block execution.

        Ops accumulate in a run counter; when the block's terminator is
        taken, the run (including this block) is credited to the branch's
        bucket, matching the Fig. 4 hardware.
        """
        self.total_ops += block.n_ops
        if taken:
            bucket = self._bucket_of_block.get(block.bid)
            if bucket is None:
                bucket = self.hash_fn(block.branch_address)
                self._bucket_of_block[block.bid] = bucket
            self._registers[bucket] += self._run_ops + block.n_ops
            self._run_ops = 0
        else:
            self._run_ops += block.n_ops

    def take_vector(self, normalize: bool = True) -> np.ndarray:
        """Compile the register file into a vector and reset it.

        Args:
            normalize: L2-normalise the result (the paper's comparison form).
        """
        vec = np.array(self._registers, dtype=np.float64)
        self._registers = [0.0] * self.n_buckets
        self._run_ops = 0
        if normalize:
            norm = float(np.sqrt(np.dot(vec, vec)))
            if norm > 0.0:
                vec /= norm
        return vec

    def peek_vector(self) -> np.ndarray:
        """Current raw (unnormalised) register contents, without reset."""
        return np.array(self._registers, dtype=np.float64)

    def reset(self) -> None:
        """Clear registers, run counter and op total."""
        self._registers = [0.0] * self.n_buckets
        self._run_ops = 0
        self.total_ops = 0

    def snapshot(self) -> Dict[str, object]:
        """Capture tracker state for checkpointing."""
        return {
            "registers": list(self._registers),
            "run_ops": self._run_ops,
            "total_ops": self.total_ops,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._registers = list(state["registers"])  # type: ignore[arg-type]
        self._run_ops = state["run_ops"]  # type: ignore[assignment]
        self.total_ops = state["total_ops"]  # type: ignore[assignment]

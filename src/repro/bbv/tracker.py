"""Compatibility shim: the BBV tracker now lives in ``repro.signals.bbv``.

Kept so historical imports (``from repro.bbv.tracker import BbvTracker``)
and pickled references keep resolving; new code should import from
:mod:`repro.signals`.
"""

from __future__ import annotations

from ..signals.bbv import BbvHash, BbvTracker, ReducedBbvHash, WideBbvHash

__all__ = ["BbvHash", "ReducedBbvHash", "WideBbvHash", "BbvTracker"]

"""Basic Block Vector (BBV) tracking — compatibility facade.

The BBV implementation moved into the pluggable phase-signal layer
(:mod:`repro.signals`) when memory-access vectors joined it as a second
signal; this package re-exports the historical names so existing imports
(``from repro.bbv import BbvTracker``) keep working.  New code should
import from :mod:`repro.signals`.

The mechanism itself is the paper's Figure 4: every taken branch hashes
five fixed (randomly chosen) bits of its address into an index for a
32-entry register file; the entry is incremented by the number of
operations retired since the last taken branch.  At each BBV
sampling-period boundary the register file is compiled into a vector,
L2-normalised, and compared with previous vectors by the angle between
them (the cosine comes from a single dot product).
"""

from ..signals.bbv import BbvHash, BbvTracker, ReducedBbvHash, WideBbvHash
from ..signals.vector import (
    angle_between,
    l2_norm,
    l2_normalize,
    manhattan_distance,
)

__all__ = [
    "BbvHash",
    "BbvTracker",
    "ReducedBbvHash",
    "WideBbvHash",
    "angle_between",
    "l2_norm",
    "l2_normalize",
    "manhattan_distance",
]

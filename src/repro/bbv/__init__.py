"""Basic Block Vector (BBV) tracking — the paper's Figure 4 mechanism.

Every taken branch hashes five fixed (randomly chosen) bits of its address
into an index for a 32-entry register file; the entry is incremented by the
number of operations retired since the last taken branch.  At each BBV
sampling-period boundary the register file is compiled into a vector,
L2-normalised, and compared with previous vectors by the angle between them
(the cosine comes from a single dot product).
"""

from .tracker import BbvHash, BbvTracker, ReducedBbvHash, WideBbvHash
from .vector import angle_between, l2_norm, l2_normalize, manhattan_distance

__all__ = [
    "BbvHash",
    "BbvTracker",
    "ReducedBbvHash",
    "WideBbvHash",
    "angle_between",
    "l2_norm",
    "l2_normalize",
    "manhattan_distance",
]

"""Compatibility shim: vector geometry now lives in ``repro.signals.vector``.

Kept so historical imports (``from repro.bbv.vector import angle_between``)
keep resolving; new code should import from :mod:`repro.signals`.
"""

from __future__ import annotations

from ..signals.vector import (
    ArrayLike,
    angle_between,
    cosine_similarity,
    l2_norm,
    l2_normalize,
    manhattan_distance,
)

__all__ = [
    "l2_norm",
    "l2_normalize",
    "angle_between",
    "manhattan_distance",
    "cosine_similarity",
]

"""PGSS-Sim: Phase-Guided Small-Sample Simulation.

A from-scratch reproduction of Kihm, Strom & Connors, "Phase-Guided
Small-Sample Simulation" (ISPASS 2007): a cycle-accurate in-order CPU
simulator, a synthetic SPEC2000-analogue workload suite, online BBV-based
phase detection, and five sampled-simulation techniques (SMARTS,
TurboSMARTS, SimPoint, Online SimPoint, and the paper's PGSS-Sim).

Quickstart::

    from repro import Scale, get_workload
    from repro.sampling import Pgss, PgssConfig

    program = get_workload("164.gzip", Scale.SCALED)
    result = Pgss(PgssConfig.from_scale(Scale.SCALED)).run(program)
    print(result.ipc_estimate, result.detailed_ops)
"""

from .config import (
    CacheConfig,
    MachineConfig,
    SampleBudget,
    Scale,
    ScaleConfig,
    DEFAULT_MACHINE,
)
from .errors import (
    ClusteringError,
    ConfigurationError,
    EstimateError,
    ProgramError,
    ReproError,
    SamplingError,
    SimulationError,
    SnapshotError,
    StreamExhausted,
)
from .program import (
    BasicBlock,
    Behavior,
    BlockBuilder,
    BlockEvent,
    BlockRun,
    MemPattern,
    PatternKind,
    Program,
    ProgramStream,
    Segment,
    WORKLOAD_NAMES,
    get_workload,
    paper_suite,
    wupwise_analogue,
)
from .cpu import Mode, SimulationEngine, CheckpointStore
from .signals import (
    PHASE_SIGNALS,
    BbvTracker,
    ConcatenatedSignal,
    MavTracker,
    ReducedBbvHash,
    SignalTracker,
    WideBbvHash,
    angle_between,
    make_signal_tracker,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "CacheConfig",
    "MachineConfig",
    "SampleBudget",
    "Scale",
    "ScaleConfig",
    "DEFAULT_MACHINE",
    # errors
    "ReproError",
    "ConfigurationError",
    "ProgramError",
    "SimulationError",
    "SnapshotError",
    "StreamExhausted",
    "SamplingError",
    "EstimateError",
    "ClusteringError",
    # program model
    "BasicBlock",
    "Behavior",
    "BlockBuilder",
    "BlockEvent",
    "BlockRun",
    "MemPattern",
    "PatternKind",
    "Program",
    "ProgramStream",
    "Segment",
    "WORKLOAD_NAMES",
    "get_workload",
    "paper_suite",
    "wupwise_analogue",
    # simulator
    "Mode",
    "SimulationEngine",
    "CheckpointStore",
    # phase signals
    "PHASE_SIGNALS",
    "BbvTracker",
    "ConcatenatedSignal",
    "MavTracker",
    "ReducedBbvHash",
    "SignalTracker",
    "WideBbvHash",
    "angle_between",
    "make_signal_tracker",
]

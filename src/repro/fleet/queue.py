"""Filesystem-backed work queue for the distributed experiment fleet.

A queue is a plain directory, shareable over NFS or rsync, holding one
job per submitted experiment and one task per
:class:`~repro.experiments.cells.ExperimentCell`.  Layout::

    queue/
      jobs/<job>.json       manifest: task list, figure ids, context spec
      tasks/<task>.json     a pending cell (priority encoded in the name)
      claims/<task>.json    lease held by a worker (created with O_EXCL)
      done/<task>.json      terminal outcome record
      cancel/<job>          cancellation marker (empty file)
      checkpoints/<task>/   mid-cell engine checkpoints of the claim holder
      logs/<task>.log       append-only per-task execution log (workers)

The claim protocol mirrors the result cache's ``.claim`` files
(DESIGN.md §12): ``O_EXCL`` creation is the atomic test-and-set, so any
number of workers on any number of hosts sharing the directory claim
each task exactly once.  Unlike cache claims, queue claims are *leases*:
the claim file records a wall-clock expiry that the executing worker
refreshes by heartbeat, and an expired lease is reaped by whichever
worker scans the task next — the task's attempt count is charged and the
cell is retried (resuming from its latest checkpoint) or, with the retry
budget exhausted, failed.

Everything a worker needs to execute a cell travels in the task file:
the serialized cell plus a JSON rendering of the experiment-context spec
(scale, machine, cache directory, benchmark list), so submitters and
workers only have to agree on the queue directory.

All timestamps in this module are orchestration wall clock — they gate
lease expiry and never influence simulated state, which stays a pure
function of (workload, config, seed).
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..config import CacheConfig, MachineConfig, ScaleConfig
from ..errors import FleetError
from ..experiments.cells import ExperimentCell

__all__ = [
    "DEFAULT_LEASE_S",
    "ClaimedTask",
    "JobQueue",
    "JobState",
    "QueueSweep",
    "spec_from_doc",
    "spec_to_doc",
]

#: Default lease duration; a worker heartbeats at a third of this, so a
#: lease only expires after several missed heartbeats.
DEFAULT_LEASE_S = 60.0

#: Priority bounds; higher runs earlier.
_PRIORITY_MIN, _PRIORITY_MAX, _PRIORITY_DEFAULT = 0, 99, 50

#: Terminal task statuses a done-record may carry.
_TERMINAL_STATUSES = ("ok", "error", "timeout", "failed", "cancelled")


def spec_to_doc(spec: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-able rendering of a picklable experiment-context spec.

    The spec is the same shape :func:`repro.experiments.parallel`
    ships to pool workers (scale, machine, cache_dir, benchmarks, and
    optionally checkpoint fields); this flattens the config dataclasses
    so the document survives a JSON round trip.
    """
    doc: Dict[str, Any] = {
        "scale": asdict(spec["scale"]),
        "machine": asdict(spec["machine"]),
        "cache_dir": str(spec["cache_dir"]),
        "benchmarks": list(spec["benchmarks"]),
    }
    return doc


def _scale_from_doc(doc: Dict[str, Any]) -> ScaleConfig:
    fields = dict(doc)
    for key in (
        "pgss_periods",
        "thresholds",
        "simpoint_intervals",
        "simpoint_clusters",
    ):
        fields[key] = tuple(fields[key])
    fields["simpoint_extra"] = tuple(
        (int(a), int(b)) for a, b in fields["simpoint_extra"]
    )
    return ScaleConfig(**fields)


def _machine_from_doc(doc: Dict[str, Any]) -> MachineConfig:
    fields = dict(doc)
    for key in ("l1i", "l1d", "l2"):
        fields[key] = CacheConfig(**fields[key])
    return MachineConfig(**fields)


def spec_from_doc(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the picklable context spec from its JSON document."""
    return {
        "scale": _scale_from_doc(doc["scale"]),
        "machine": _machine_from_doc(doc["machine"]),
        "cache_dir": doc["cache_dir"],
        "benchmarks": list(doc["benchmarks"]),
    }


def _cell_to_doc(cell: ExperimentCell) -> Dict[str, Any]:
    return {
        "figure": cell.figure,
        "benchmark": cell.benchmark,
        "params": [[k, v] for k, v in cell.params],
    }


def _cell_from_doc(doc: Dict[str, Any]) -> ExperimentCell:
    return ExperimentCell(
        doc["figure"],
        doc["benchmark"],
        tuple((str(k), v) for k, v in doc["params"]),
    )


def _now() -> float:
    # Lease expiry is inherently wall-clock: it must be comparable
    # between hosts that share the queue directory.  It never reaches
    # simulated state.
    return time.time()  # simlint: disable=DET004


def _write_json_atomic(path: Path, doc: Dict[str, Any]) -> None:
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    )
    try:
        with tmp.open("w") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


@dataclass
class JobState:
    """Aggregated status of one job.

    Attributes:
        job_id: the job identifier.
        state: rollup — ``pending`` | ``running`` | ``done`` | ``failed``
            | ``cancelled``.
        counts: tasks per per-task state (``pending`` / ``running`` /
            ``ok`` / ``failed`` / ``cancelled``).
        total: number of tasks in the job.
        failures: cell id -> error message for terminally failed tasks.
        logs: cell id -> path of the per-task execution log, for every
            task whose worker has written one (running or finished).
    """

    job_id: str
    state: str
    counts: Dict[str, int]
    total: int
    failures: Dict[str, str] = field(default_factory=dict)
    logs: Dict[str, str] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """True when no task can make further progress."""
        return self.state in ("done", "failed", "cancelled")


@dataclass
class QueueSweep:
    """What a maintenance sweep reclaimed (see :meth:`JobQueue.sweep`).

    Attributes:
        stale_leases: expired/dead leases reaped (tasks requeued or
            failed).
        requeued: tasks returned to the pending pool.
        failed: tasks finalised as failed because their retry budget was
            already spent when the lease was reaped.
        orphan_files: leftover ``.tmp`` litter removed.
        orphan_checkpoints: checkpoint directories with no live task.
    """

    stale_leases: int = 0
    requeued: int = 0
    failed: int = 0
    orphan_files: int = 0
    orphan_checkpoints: int = 0


@dataclass
class ClaimedTask:
    """A leased task: the unit a worker executes.

    The worker must either :meth:`complete` or :meth:`fail` the task (or
    let the lease expire, which charges an attempt).  :meth:`heartbeat`
    extends the lease while the cell runs.
    """

    queue: "JobQueue"
    name: str
    cell: ExperimentCell
    job_id: str
    spec_doc: Dict[str, Any]
    attempts: int
    retries: int
    worker: str

    @property
    def checkpoint_dir(self) -> Path:
        """Directory for this task's mid-cell checkpoints."""
        return self.queue.root / "checkpoints" / self.name

    def heartbeat(self) -> None:
        """Refresh the lease expiry; call at least every ``lease_s / 3``."""
        self.queue._write_claim(self.name, self.worker)

    def complete(self, record: Dict[str, Any]) -> None:
        """Publish a successful outcome and retire the task."""
        self.queue._finalize(self, dict(record, status="ok"))

    def fail(self, record: Dict[str, Any]) -> None:
        """Record a failed attempt: requeue within budget, else finalise."""
        if self.attempts <= self.retries:
            # Leave the task file (already stamped with this attempt) and
            # release the lease so any worker can retry; checkpoints are
            # kept so the retry resumes mid-cell.
            self.queue._release_claim(self.name)
            return
        self.queue._finalize(self, dict(record, status="failed"))


class JobQueue:
    """Shared-directory work queue with leases, priorities, and retries."""

    def __init__(
        self, directory: Path, lease_s: float = DEFAULT_LEASE_S
    ) -> None:
        if lease_s <= 0:
            raise FleetError(f"lease_s must be positive, got {lease_s}")
        self.root = Path(directory)
        self.lease_s = float(lease_s)
        for sub in (
            "jobs",
            "tasks",
            "claims",
            "done",
            "cancel",
            "checkpoints",
            "logs",
        ):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Submission side.

    def submit(
        self,
        cells: Sequence[ExperimentCell],
        spec_doc: Dict[str, Any],
        figures: Optional[Sequence[str]] = None,
        priority: int = _PRIORITY_DEFAULT,
        retries: int = 1,
        job_id: Optional[str] = None,
    ) -> str:
        """Enqueue *cells* as one job; returns the job id.

        Args:
            cells: the work units (already deduplicated by the caller).
            spec_doc: JSON context-spec document (:func:`spec_to_doc`).
            figures: figure ids the job was derived from (used by
                ``fetch`` to assemble the report).
            priority: 0-99; higher-priority tasks are claimed first.
            retries: additional attempts a task gets after a failed or
                lease-expired one.
            job_id: explicit id (tests); defaults to a fresh UUID.
        """
        if not cells:
            raise FleetError("cannot submit a job with no cells")
        if not _PRIORITY_MIN <= priority <= _PRIORITY_MAX:
            raise FleetError(
                f"priority must be in [{_PRIORITY_MIN}, {_PRIORITY_MAX}], "
                f"got {priority}"
            )
        job = job_id or uuid.uuid4().hex[:12]
        if (self.root / "jobs" / f"{job}.json").exists():
            raise FleetError(f"job {job!r} already exists in this queue")
        task_names: List[str] = []
        for index, cell in enumerate(cells):
            # Lexicographic task-file order is claim order: inverted
            # priority first, then job, then submission index.
            name = f"{_PRIORITY_MAX - priority:02d}.{job}.{index:05d}"
            task_names.append(name)
            _write_json_atomic(
                self.root / "tasks" / f"{name}.json",
                {
                    "cell": _cell_to_doc(cell),
                    "job": job,
                    "priority": priority,
                    "retries": int(retries),
                    "attempts": 0,
                    "spec": spec_doc,
                },
            )
        _write_json_atomic(
            self.root / "jobs" / f"{job}.json",
            {
                "job": job,
                "tasks": task_names,
                "figures": list(figures) if figures else [],
                "spec": spec_doc,
                "submitted": _now(),
            },
        )
        return job

    def jobs(self) -> List[str]:
        """All job ids in this queue, sorted."""
        return sorted(
            p.stem for p in (self.root / "jobs").glob("*.json")
        )

    def manifest(self, job_id: str) -> Dict[str, Any]:
        """The job's manifest document."""
        doc = _read_json(self.root / "jobs" / f"{job_id}.json")
        if doc is None:
            raise FleetError(f"unknown job {job_id!r} in {self.root}")
        return doc

    def cancel(self, job_id: str) -> bool:
        """Mark *job_id* cancelled; pending tasks will never be claimed.

        A cell already running is allowed to finish (its results are
        cached and harmless); returns False if the job was already
        finished or cancelled.
        """
        self.manifest(job_id)  # raises on unknown job
        marker = self.root / "cancel" / job_id
        if marker.exists() or self.status(job_id).finished:
            return False
        marker.touch()
        return True

    def cancelled(self, job_id: str) -> bool:
        """True if a cancellation marker exists for *job_id*."""
        return (self.root / "cancel" / job_id).exists()

    # ------------------------------------------------------------------
    # Worker side.

    def claim_next(self, worker: str) -> Optional[ClaimedTask]:
        """Claim the highest-priority pending task, or ``None``.

        Scans tasks in priority order; for each, reaps an expired lease
        (charging an attempt), retires tasks of cancelled jobs, and
        otherwise attempts the ``O_EXCL`` claim.
        """
        for task_path in sorted((self.root / "tasks").glob("*.json")):
            name = task_path.stem
            doc = _read_json(task_path)
            if doc is None:
                continue  # torn write in progress; next scan sees it
            if self.cancelled(doc["job"]):
                self._retire_cancelled(name, doc)
                continue
            claim_path = self._claim_path(name)
            if claim_path.exists():
                if not self._reap_if_stale(name, doc):
                    continue
                doc = _read_json(task_path)
                if doc is None:
                    continue  # reap exhausted the retry budget
            if not self._try_claim(name, worker):
                continue
            # Stamp the attempt we are about to consume.
            doc["attempts"] = int(doc.get("attempts", 0)) + 1
            _write_json_atomic(task_path, doc)
            return ClaimedTask(
                queue=self,
                name=name,
                cell=_cell_from_doc(doc["cell"]),
                job_id=doc["job"],
                spec_doc=doc["spec"],
                attempts=int(doc["attempts"]),
                retries=int(doc.get("retries", 0)),
                worker=worker,
            )
        return None

    def log_path(self, name: str) -> Path:
        """Path of the task's execution log (created lazily by workers)."""
        return self.root / "logs" / f"{name}.log"

    def append_log(self, name: str, line: str) -> None:
        """Append one timestamped line to the task's execution log.

        The log is plain text, append-only, and purely diagnostic: it
        records claim/finish events so a human can reconstruct what a
        worker did to a task after the fact.  Failures to write it are
        swallowed — diagnostics must never take a worker down.
        """
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(_now()))
        try:
            with self.log_path(name).open("a") as fh:
                fh.write(f"{stamp} {line}\n")
        except OSError:
            pass

    def pending_tasks(self) -> int:
        """Tasks not yet claimed or finished (includes retry-pending)."""
        count = 0
        for task_path in (self.root / "tasks").glob("*.json"):
            if not self._claim_path(task_path.stem).exists():
                count += 1
        return count

    def active_claims(self) -> int:
        """Leases currently held (live or not yet reaped)."""
        return sum(1 for _ in (self.root / "claims").glob("*.json"))

    def drained(self) -> bool:
        """True when no task remains to claim and no lease is active."""
        return self.pending_tasks() == 0 and self.active_claims() == 0

    # ------------------------------------------------------------------
    # Status side.

    def status(self, job_id: str) -> JobState:
        """Aggregate per-task states into one :class:`JobState`."""
        manifest = self.manifest(job_id)
        counts = {k: 0 for k in ("pending", "running", "ok", "failed", "cancelled")}
        failures: Dict[str, str] = {}
        logs: Dict[str, str] = {}
        cancelled = self.cancelled(job_id)
        for name in manifest["tasks"]:
            done = _read_json(self.root / "done" / f"{name}.json")
            log = self.log_path(name)
            if log.exists():
                logs[self._cell_id_for(name, done)] = str(log)
            if done is not None:
                status = done.get("status", "failed")
                if status == "ok":
                    counts["ok"] += 1
                elif status == "cancelled":
                    counts["cancelled"] += 1
                else:
                    counts["failed"] += 1
                    failures[str(done.get("cell_id", name))] = str(
                        done.get("error", status)
                    )
            elif self._claim_path(name).exists():
                counts["running"] += 1
            elif cancelled:
                counts["cancelled"] += 1
            else:
                counts["pending"] += 1
        total = len(manifest["tasks"])
        if counts["failed"]:
            # Terminal only once nothing is still in flight.
            state = (
                "failed"
                if counts["pending"] == counts["running"] == 0
                else "running"
            )
        elif counts["cancelled"] and counts["running"] == 0:
            state = "cancelled"
        elif counts["ok"] == total:
            state = "done"
        elif counts["running"] or counts["ok"]:
            state = "running"
        else:
            state = "pending"
        return JobState(
            job_id=job_id,
            state=state,
            counts=counts,
            total=total,
            failures=failures,
            logs=logs,
        )

    def _cell_id_for(
        self, name: str, done: Optional[Dict[str, Any]]
    ) -> str:
        """Best-effort cell id of a task: done record, task file, or name."""
        if done is not None and done.get("cell_id"):
            return str(done["cell_id"])
        task_doc = _read_json(self.root / "tasks" / f"{name}.json")
        if task_doc is not None and "cell" in task_doc:
            try:
                return _cell_from_doc(task_doc["cell"]).cell_id
            except (KeyError, TypeError):
                pass
        return name

    def outcomes(self, job_id: str) -> List[Dict[str, Any]]:
        """Per-task done-records of *job_id*, in task order."""
        out = []
        for name in self.manifest(job_id)["tasks"]:
            doc = _read_json(self.root / "done" / f"{name}.json")
            if doc is not None:
                out.append(doc)
        return out

    # ------------------------------------------------------------------
    # Maintenance.

    def sweep(self) -> QueueSweep:
        """Reap expired leases and remove orphaned litter.

        Run by ``pgss-sim clear-cache --queue DIR`` (and safe to run any
        time): tasks whose holder died resume being claimable, tasks out
        of retry budget are finalised as failed, stray ``.tmp`` files
        and checkpoints of finished tasks are deleted.
        """
        report = QueueSweep()
        for claim_path in sorted((self.root / "claims").glob("*.json")):
            name = claim_path.stem
            task_doc = _read_json(self.root / "tasks" / f"{name}.json")
            if task_doc is None:
                # Claim with no task: the finalising worker died between
                # unlinks; nothing left to execute.
                self._release_claim(name)
                report.orphan_files += 1
                continue
            if self._reap_if_stale(name, task_doc):
                report.stale_leases += 1
                if (self.root / "done" / f"{name}.json").exists():
                    report.failed += 1
                else:
                    report.requeued += 1
        for sub in ("tasks", "claims", "done", "jobs"):
            for tmp in (self.root / sub).glob("*.tmp"):
                try:
                    tmp.unlink()
                    report.orphan_files += 1
                except OSError:
                    pass
        for ckpt_dir in (self.root / "checkpoints").iterdir():
            if not ckpt_dir.is_dir():
                continue
            if not (self.root / "tasks" / f"{ckpt_dir.name}.json").exists():
                self._remove_checkpoints(ckpt_dir.name)
                report.orphan_checkpoints += 1
        return report

    # ------------------------------------------------------------------
    # Internals.

    def _claim_path(self, name: str) -> Path:
        return self.root / "claims" / f"{name}.json"

    def _claim_doc(self, worker: str) -> Dict[str, Any]:
        return {
            "worker": worker,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "expires": _now() + self.lease_s,
        }

    def _try_claim(self, name: str, worker: str) -> bool:
        try:
            fd = os.open(
                self._claim_path(name), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        except OSError:
            # No O_EXCL semantics: accept the (harmless, deterministic)
            # risk of duplicated work rather than wedging the queue.
            self._write_claim(name, worker)
            return True
        with os.fdopen(fd, "w") as fh:
            json.dump(self._claim_doc(worker), fh)
        return True

    def _write_claim(self, name: str, worker: str) -> None:
        _write_json_atomic(self._claim_path(name), self._claim_doc(worker))

    def _release_claim(self, name: str) -> None:
        try:
            self._claim_path(name).unlink()
        except OSError:
            pass

    def _lease_stale(self, claim_doc: Dict[str, Any]) -> bool:
        """A lease is stale when expired, or same-host with a dead pid."""
        try:
            expires = float(claim_doc.get("expires", 0.0))
        except (TypeError, ValueError):
            return True
        if expires <= _now():
            return True
        if claim_doc.get("host") == socket.gethostname():
            try:
                pid = int(claim_doc.get("pid", 0))
            except (TypeError, ValueError):
                return True
            if pid <= 0:
                return True
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except OSError:
                return False  # e.g. EPERM: alive under another user
        return False

    def _reap_if_stale(self, name: str, task_doc: Dict[str, Any]) -> bool:
        """Reap an expired lease; True if the claim was released."""
        claim_doc = _read_json(self._claim_path(name))
        if claim_doc is None:
            # Torn claim or already released; treat a persistent torn
            # file as stale so the task is not stranded.
            if not self._claim_path(name).exists():
                return True
            self._release_claim(name)
            return True
        if not self._lease_stale(claim_doc):
            return False
        self._release_claim(name)
        # The dead holder consumed its attempt when it claimed; if the
        # budget is gone, finalise now so the job can reach a terminal
        # state without the cell ever succeeding.
        attempts = int(task_doc.get("attempts", 0))
        retries = int(task_doc.get("retries", 0))
        if attempts > retries:
            self._finalize_name(
                name,
                task_doc,
                {
                    "status": "failed",
                    "seconds": 0.0,
                    "error": (
                        f"lease expired after {attempts} attempt(s); "
                        f"last holder {claim_doc.get('worker', '?')} died"
                    ),
                    "worker": str(claim_doc.get("worker", "?")),
                },
            )
        return True

    def _retire_cancelled(self, name: str, task_doc: Dict[str, Any]) -> None:
        self._finalize_name(
            name,
            task_doc,
            {
                "status": "cancelled",
                "seconds": 0.0,
                "error": "job cancelled before the cell ran",
                "worker": "",
            },
        )

    def _finalize(self, task: ClaimedTask, record: Dict[str, Any]) -> None:
        task_doc = _read_json(self.root / "tasks" / f"{task.name}.json")
        self._finalize_name(
            task.name,
            task_doc or {"job": task.job_id, "cell": _cell_to_doc(task.cell)},
            dict(record, worker=task.worker, attempts=task.attempts),
        )

    def _finalize_name(
        self, name: str, task_doc: Dict[str, Any], record: Dict[str, Any]
    ) -> None:
        """Write the done-record, then retire task, claim, checkpoints."""
        cell = _cell_from_doc(task_doc["cell"])
        doc = {
            "task": name,
            "job": task_doc.get("job", ""),
            "cell_id": cell.cell_id,
            "status": record.get("status", "failed"),
            "seconds": float(record.get("seconds", 0.0)),
            "attempts": int(record.get("attempts", task_doc.get("attempts", 0))),
            "error": str(record.get("error", "")),
            "worker": str(record.get("worker", "")),
        }
        if doc["status"] not in _TERMINAL_STATUSES:
            doc["status"] = "failed"
        if self.log_path(name).exists():
            doc["log"] = str(self.log_path(name))
        _write_json_atomic(self.root / "done" / f"{name}.json", doc)
        try:
            (self.root / "tasks" / f"{name}.json").unlink()
        except OSError:
            pass
        self._release_claim(name)
        self._remove_checkpoints(name)

    def _remove_checkpoints(self, name: str) -> None:
        ckpt_dir = self.root / "checkpoints" / name
        if not ckpt_dir.exists():
            return
        for path in sorted(ckpt_dir.glob("**/*"), reverse=True):
            try:
                path.unlink() if path.is_file() else path.rmdir()
            except OSError:
                pass
        try:
            ckpt_dir.rmdir()
        except OSError:
            pass

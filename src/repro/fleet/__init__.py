"""Distributed resumable experiment fleet.

The package behind ``pgss-sim jobs`` and ``pgss-sim worker``:

* :mod:`repro.fleet.queue` — the shared-directory :class:`JobQueue`
  (O_EXCL claims, leases with heartbeats, priorities, retry budgets).
* :mod:`repro.fleet.worker` — the :class:`Worker` loop that claims
  cells, executes them with mid-cell checkpointing, and publishes
  through the result cache.
* :mod:`repro.fleet.service` — the :class:`ExperimentService` facade
  (``submit`` / ``status`` / ``fetch`` / ``cancel``), the one supported
  way to run experiments, with :class:`LocalService` (in-process) and
  :class:`QueueService` (fleet) backends.
"""

from .queue import (
    DEFAULT_LEASE_S,
    ClaimedTask,
    JobQueue,
    JobState,
    QueueSweep,
    spec_from_doc,
    spec_to_doc,
)
from .service import ExperimentService, JobHandle, LocalService, QueueService
from .worker import DEFAULT_CHECKPOINT_WINDOWS, DEFAULT_POLL_S, Worker, run_worker

__all__ = [
    "DEFAULT_CHECKPOINT_WINDOWS",
    "DEFAULT_LEASE_S",
    "DEFAULT_POLL_S",
    "ClaimedTask",
    "ExperimentService",
    "JobHandle",
    "JobQueue",
    "JobState",
    "LocalService",
    "QueueService",
    "QueueSweep",
    "Worker",
    "run_worker",
    "spec_from_doc",
    "spec_to_doc",
]

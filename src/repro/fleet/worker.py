"""The fleet worker: claims cells from a queue and executes them.

``pgss-sim worker --queue DIR`` runs this loop.  Each claimed task is
executed through the exact same entry point the in-process pool uses
(:func:`repro.experiments.parallel._execute_cell`), against a context
rebuilt from the spec embedded in the task — so a cell produces the
same cache bytes whether it runs serially, in a local pool, or on a
fleet worker three hosts away.  Results never travel through the queue:
they are published into the shared :class:`ResultCache`, and the queue
only records small outcome documents.

While a cell runs, a daemon heartbeat thread refreshes the task's lease
at a third of the lease interval.  If this process dies, the heartbeats
stop, the lease expires, and the next worker to scan the queue reaps
the claim and retries the cell — resuming mid-cell from the checkpoint
the dead worker left behind (long DETAIL cells checkpoint periodically;
see DESIGN.md §17).
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..errors import FleetError
from ..experiments.parallel import DEFAULT_TIMEOUT_S, _execute_cell
from .queue import DEFAULT_LEASE_S, ClaimedTask, JobQueue, spec_from_doc

__all__ = ["DEFAULT_CHECKPOINT_WINDOWS", "DEFAULT_POLL_S", "Worker", "run_worker"]

#: Seconds an idle worker sleeps between queue scans.
DEFAULT_POLL_S = 0.5

#: Windows between two mid-cell checkpoint saves on fleet workers.
DEFAULT_CHECKPOINT_WINDOWS = 32


class Worker:
    """Claims, executes, heartbeats, and retires queue tasks.

    Args:
        queue: the shared :class:`JobQueue` (or a directory path).
        worker_id: stable identity recorded in leases and outcomes;
            defaults to ``<host>:<pid>:<token>``.
        timeout_s: per-cell wall-clock budget (enforced in-process via
            ``SIGALRM``, exactly like the pool runner).
        poll_s: idle sleep between scans when no task is claimable.
        drain: exit once the queue has no pending tasks and no active
            leases, instead of waiting for new work forever.
        max_cells: stop after executing this many cells (0 = unlimited);
            mainly for tests and batch-scheduler time slicing.
        checkpoint_windows: trace-cell checkpoint interval in windows.
        progress: callable receiving one line per claimed/finished cell.
    """

    def __init__(
        self,
        queue: "JobQueue | Path | str",
        worker_id: Optional[str] = None,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        poll_s: float = DEFAULT_POLL_S,
        drain: bool = False,
        max_cells: int = 0,
        checkpoint_windows: int = DEFAULT_CHECKPOINT_WINDOWS,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.queue = queue if isinstance(queue, JobQueue) else JobQueue(Path(queue))
        self.worker_id = worker_id or (
            f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"
        )
        self.timeout_s = timeout_s
        self.poll_s = max(float(poll_s), 0.01)
        self.drain = drain
        self.max_cells = int(max_cells)
        self.checkpoint_windows = int(checkpoint_windows)
        self.progress = progress
        self.executed = 0

    def _emit(self, line: str) -> None:
        if self.progress:
            self.progress(line)

    # ------------------------------------------------------------------

    def run(self) -> int:
        """The worker loop; returns the number of cells executed."""
        while True:
            if self.max_cells and self.executed >= self.max_cells:
                return self.executed
            task = self.queue.claim_next(self.worker_id)
            if task is None:
                if self.drain and self.queue.drained():
                    return self.executed
                time.sleep(self.poll_s)
                continue
            self.run_one(task)

    def run_one(self, task: ClaimedTask) -> Dict[str, Any]:
        """Execute one claimed task to an outcome record."""
        self._emit(
            f"{self.worker_id} claimed {task.cell.cell_id} "
            f"(attempt {task.attempts}/{1 + task.retries})"
        )
        self.queue.append_log(
            task.name,
            f"claim cell={task.cell.cell_id} worker={self.worker_id} "
            f"attempt={task.attempts}/{1 + task.retries}",
        )
        spec = spec_from_doc(task.spec_doc)
        spec["checkpoint_dir"] = str(task.checkpoint_dir)
        spec["checkpoint_windows"] = self.checkpoint_windows
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(task, stop), daemon=True
        )
        beat.start()
        try:
            record = _execute_cell(spec, task.cell, self.timeout_s, None)
        except Exception as exc:  # _execute_cell is defensive; belt+braces
            record = {
                "status": "error",
                "seconds": 0.0,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            stop.set()
            beat.join(timeout=5.0)
        self.executed += 1
        error = str(record.get("error", "") or "")
        self.queue.append_log(
            task.name,
            f"finish cell={task.cell.cell_id} worker={self.worker_id} "
            f"status={record['status']} "
            f"seconds={float(record.get('seconds', 0.0)):.1f}"
            + (f" error={error}" if error else ""),
        )
        if record["status"] == "ok":
            task.complete(record)
        else:
            task.fail(record)
        self._emit(
            f"{self.worker_id} finished {task.cell.cell_id}: "
            f"{record['status']} ({record.get('seconds', 0.0):.1f}s)"
        )
        return record

    def _heartbeat_loop(self, task: ClaimedTask, stop: threading.Event) -> None:
        interval = self.queue.lease_s / 3.0
        while not stop.wait(interval):
            try:
                task.heartbeat()
            except OSError:
                # A failed heartbeat (queue dir unreachable) is not fatal
                # here; the lease simply risks expiring and being retried.
                pass


def run_worker(
    queue_dir: Path,
    lease_s: float = DEFAULT_LEASE_S,
    **kwargs: Any,
) -> int:
    """Convenience wrapper used by the CLI: build a worker and run it."""
    if not Path(queue_dir).exists():
        raise FleetError(f"queue directory {queue_dir} does not exist")
    worker = Worker(JobQueue(Path(queue_dir), lease_s=lease_s), **kwargs)
    return worker.run()

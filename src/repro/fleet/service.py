"""The experiment service: the one supported way to run experiments.

Every driver — ``pgss-sim run-all``, ``figure``, ``report``, the
``jobs`` CLI, and any future sweep — goes through the same four-verb
facade::

    service = LocalService(ctx, jobs=4)          # or QueueService(ctx, dir)
    handle  = service.submit(figures="2,12")     # enqueue cells
    status  = service.wait(handle)               # or poll service.status()
    text    = service.fetch(handle)              # assemble the report
    service.cancel(handle)                       # abandon pending work

Two backends implement the interface:

* :class:`LocalService` — the single-host backend.  ``wait()`` executes
  the job's cells through :class:`~repro.experiments.parallel
  .ParallelRunner` (``jobs=1`` is the exact serial path), so the old
  ``run-all --jobs N`` behaviour is literally ``submit`` + ``wait`` +
  ``fetch`` on this backend.
* :class:`QueueService` — the fleet backend.  ``submit()`` writes tasks
  into a shared :class:`~repro.fleet.queue.JobQueue` directory and
  returns immediately; any number of ``pgss-sim worker`` processes on
  any number of hosts execute them, and ``wait()`` just polls the queue.

Both publish results exclusively through the content-addressed
:class:`~repro.experiments.cache.ResultCache`, so a report fetched after
a fleet run is byte-identical to one fetched after a serial run.
"""

from __future__ import annotations

import abc
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import FleetError
from ..experiments.cells import ExperimentCell, enumerate_cells
from ..experiments.parallel import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_S,
    CellOutcome,
    ParallelRunner,
    _context_from_spec,
    _context_spec,
)
from ..experiments.report import generate_report, resolve_figure_ids
from ..experiments.runner import ExperimentContext, service_scope
from .queue import (
    DEFAULT_LEASE_S,
    JobQueue,
    JobState,
    spec_from_doc,
    spec_to_doc,
)

__all__ = [
    "ExperimentService",
    "JobHandle",
    "LocalService",
    "QueueService",
]

FigureSpec = Union[str, Sequence[str], None]


@dataclass(frozen=True)
class JobHandle:
    """Opaque reference to one submitted job.

    The ``job_id`` string round-trips through the CLI (``pgss-sim jobs
    status <id>``); ``figures`` carries the submitted figure numbers so
    ``fetch`` can assemble exactly the requested report.
    """

    job_id: str
    figures: Optional[Tuple[str, ...]] = None

    def __str__(self) -> str:
        return self.job_id


class ExperimentService(abc.ABC):
    """Abstract front door: submit experiment cells, poll, fetch figures."""

    def __init__(self, ctx: ExperimentContext) -> None:
        self.ctx = ctx

    # -- the four verbs -------------------------------------------------

    @abc.abstractmethod
    def submit(
        self,
        figures: FigureSpec = None,
        cells: Optional[Sequence[ExperimentCell]] = None,
    ) -> JobHandle:
        """Enqueue a job: either figure ids (default: all) or raw cells."""

    @abc.abstractmethod
    def status(self, handle: Union[JobHandle, str]) -> JobState:
        """Current aggregate state of the job."""

    @abc.abstractmethod
    def wait(
        self,
        handle: Union[JobHandle, str],
        timeout_s: Optional[float] = None,
    ) -> JobState:
        """Block until the job reaches a terminal state (or *timeout_s*)."""

    @abc.abstractmethod
    def cancel(self, handle: Union[JobHandle, str]) -> bool:
        """Prevent pending cells from running; True if anything changed."""

    # -- shared behaviour ----------------------------------------------

    def fetch(
        self,
        handle: Union[JobHandle, str],
        figures: FigureSpec = None,
    ) -> str:
        """Assemble the job's report from the (now warm) result cache.

        Requires the job to be ``done``; fetching earlier would silently
        recompute missing cells in-process, defeating the fleet.
        """
        state = self.status(handle)
        if state.state != "done":
            raise FleetError(
                f"job {state.job_id} is {state.state}, not done; "
                "fetch() only assembles completed jobs "
                f"(counts: {state.counts}, failures: {state.failures})"
            )
        numbers = self._fetch_figures(handle, figures)
        with service_scope():
            return generate_report(self.ctx, figures=numbers)

    def _fetch_figures(
        self, handle: Union[JobHandle, str], figures: FigureSpec
    ) -> Optional[List[str]]:
        if figures is not None:
            numbers, _ = resolve_figure_ids(figures)
            return numbers
        if isinstance(handle, JobHandle) and handle.figures is not None:
            return list(handle.figures)
        return None

    @staticmethod
    def _job_id(handle: Union[JobHandle, str]) -> str:
        return handle.job_id if isinstance(handle, JobHandle) else str(handle)


@dataclass
class _LocalJob:
    cells: List[ExperimentCell]
    figures: Optional[Tuple[str, ...]]
    state: str = "pending"
    outcomes: List[CellOutcome] = field(default_factory=list)


class LocalService(ExperimentService):
    """In-process backend over :class:`ParallelRunner`.

    ``submit`` only records the job; ``wait`` executes it (the runner
    fans cells out over *jobs* worker processes and retries failures).
    Handles live in this service instance — a local job cannot be
    polled from another process, which is exactly what
    :class:`QueueService` exists for.
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        jobs: int = 1,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        retries: int = DEFAULT_RETRIES,
        progress: Optional[object] = None,
    ) -> None:
        super().__init__(ctx)
        self.runner = ParallelRunner(
            ctx,
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            progress=progress,  # type: ignore[arg-type]
        )
        self._jobs: Dict[str, _LocalJob] = {}

    def submit(
        self,
        figures: FigureSpec = None,
        cells: Optional[Sequence[ExperimentCell]] = None,
    ) -> JobHandle:
        numbers, modules = resolve_figure_ids(figures)
        if cells is None:
            cells = enumerate_cells(self.ctx, figures=modules)
        if not cells:
            raise FleetError("job has no cells to run")
        job_id = uuid.uuid4().hex[:12]
        handle = JobHandle(job_id, tuple(numbers) if numbers else None)
        self._jobs[job_id] = _LocalJob(list(cells), handle.figures)
        return handle

    def _job(self, handle: Union[JobHandle, str]) -> _LocalJob:
        job_id = self._job_id(handle)
        try:
            return self._jobs[job_id]
        except KeyError:
            raise FleetError(
                f"unknown local job {job_id!r}; local handles only resolve "
                "inside the submitting process (use a queue for detached jobs)"
            ) from None

    def status(self, handle: Union[JobHandle, str]) -> JobState:
        job = self._job(handle)
        counts = {k: 0 for k in ("pending", "running", "ok", "failed", "cancelled")}
        failures: Dict[str, str] = {}
        if job.state in ("pending", "running"):
            counts[job.state if job.state == "pending" else "running"] = len(
                job.cells
            )
        elif job.state == "cancelled":
            counts["cancelled"] = len(job.cells)
        else:
            for outcome in job.outcomes:
                if outcome.status == "ok":
                    counts["ok"] += 1
                else:
                    counts["failed"] += 1
                    failures[outcome.cell.cell_id] = (
                        f"{outcome.status}: {outcome.error}"
                    )
        return JobState(
            job_id=self._job_id(handle),
            state=job.state,
            counts=counts,
            total=len(job.cells),
            failures=failures,
        )

    def wait(
        self,
        handle: Union[JobHandle, str],
        timeout_s: Optional[float] = None,
    ) -> JobState:
        """Execute the job in-process (the local backend's "wait")."""
        job = self._job(handle)
        if job.state == "pending":
            job.state = "running"
            with service_scope():
                job.outcomes = self.runner.run(job.cells)
            failed = [o for o in job.outcomes if o.status != "ok"]
            job.state = "failed" if failed else "done"
        return self.status(handle)

    def cancel(self, handle: Union[JobHandle, str]) -> bool:
        job = self._job(handle)
        if job.state == "pending":
            job.state = "cancelled"
            return True
        return False


class QueueService(ExperimentService):
    """Fleet backend over a shared :class:`JobQueue` directory."""

    def __init__(
        self,
        ctx: ExperimentContext,
        queue_dir: Path,
        lease_s: float = DEFAULT_LEASE_S,
        priority: int = 50,
        retries: int = 1,
        poll_s: float = 0.5,
    ) -> None:
        super().__init__(ctx)
        self.queue = JobQueue(Path(queue_dir), lease_s=lease_s)
        self.priority = priority
        self.retries = retries
        self.poll_s = max(float(poll_s), 0.01)

    @classmethod
    def from_queue(cls, queue_dir: Path, job_id: str) -> "QueueService":
        """Rebuild a service for an existing job from its manifest.

        Lets ``pgss-sim jobs status/fetch/cancel <id>`` run in a fresh
        process: the manifest's context spec is authoritative, so the
        report is assembled against exactly the submitted scale,
        machine, cache directory, and benchmark list.
        """
        queue = JobQueue(Path(queue_dir))
        manifest = queue.manifest(job_id)
        ctx = _context_from_spec(spec_from_doc(manifest["spec"]))
        return cls(ctx, Path(queue_dir))

    def handle(self, job_id: str) -> JobHandle:
        """A full handle (with figure ids) for an existing job."""
        manifest = self.queue.manifest(job_id)
        figures = tuple(manifest.get("figures") or ()) or None
        return JobHandle(job_id, figures)

    def submit(
        self,
        figures: FigureSpec = None,
        cells: Optional[Sequence[ExperimentCell]] = None,
    ) -> JobHandle:
        numbers, modules = resolve_figure_ids(figures)
        if cells is None:
            cells = enumerate_cells(self.ctx, figures=modules)
        job_id = self.queue.submit(
            cells,
            spec_to_doc(_context_spec(self.ctx)),
            figures=numbers,
            priority=self.priority,
            retries=self.retries,
        )
        return JobHandle(job_id, tuple(numbers) if numbers else None)

    def status(self, handle: Union[JobHandle, str]) -> JobState:
        return self.queue.status(self._job_id(handle))

    def wait(
        self,
        handle: Union[JobHandle, str],
        timeout_s: Optional[float] = None,
    ) -> JobState:
        # Orchestration wall clock: bounds how long we poll a shared
        # directory for workers elsewhere; never touches simulated state.
        deadline = (
            None
            if timeout_s is None
            else time.time() + timeout_s  # simlint: disable=DET004
        )
        while True:
            state = self.status(handle)
            if state.finished:
                return state
            if deadline is not None and time.time() >= deadline:  # simlint: disable=DET004
                return state
            time.sleep(self.poll_s)

    def cancel(self, handle: Union[JobHandle, str]) -> bool:
        return self.queue.cancel(self._job_id(handle))

    def fetch(
        self,
        handle: Union[JobHandle, str],
        figures: FigureSpec = None,
    ) -> str:
        if figures is None and not isinstance(handle, JobHandle):
            handle = self.handle(str(handle))
        return super().fetch(handle, figures=figures)

"""Typed event bus for sampling sessions and phase tracking.

The sampling-session kernel (:mod:`repro.sampling.session`) and the
phase trackers emit typed events on a lightweight synchronous observer
bus — one :class:`EventBus` per session — so the experiment harness and
the CLI can watch a run (progress bars, diagnostics, figure extras)
without reaching into technique internals.

The event types form a small closed taxonomy (DESIGN.md §13):

* :class:`SegmentStart` / :class:`SegmentEnd` — one engine mode segment;
* :class:`SampleTaken` — a measured detailed sample was recorded;
* :class:`PhaseChange` — the online classifier switched phases;
* :class:`EstimateUpdated` — a technique's running or final estimate;
* :class:`ThresholdSelected` — the adaptive selector chose a threshold.

The bus lives in its own top-level module (rather than inside
``repro.sampling``) so :mod:`repro.phase` can emit events without an
import cycle; :mod:`repro.sampling.session` re-exports everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from .cpu.engine import Mode

__all__ = [
    "EstimateUpdated",
    "EventBus",
    "PhaseChange",
    "SampleTaken",
    "SegmentEnd",
    "SegmentStart",
    "SessionEvent",
    "ThresholdSelected",
]


@dataclass(frozen=True)
class SessionEvent:
    """Base class of every bus event (subscribe to it to see them all)."""


@dataclass(frozen=True)
class SegmentStart(SessionEvent):
    """A plan segment is about to execute.

    Attributes:
        mode: engine mode of the segment.
        planned_ops: the segment's op budget.
        op_offset: program-global op count at segment start.
        role: the plan's label for the segment (``"fast_forward"``,
            ``"warmup"``, ``"sample"``, ``"profile"``, ...).
    """

    mode: Mode
    planned_ops: int
    op_offset: int
    role: str


@dataclass(frozen=True)
class SegmentEnd(SessionEvent):
    """A plan segment finished executing.

    Attributes:
        mode: engine mode of the segment.
        ops: operations actually consumed (0 if the stream was done).
        cycles: cycles elapsed (0 for functional modes).
        op_offset: program-global op count after the segment.
        role: the plan's label for the segment.
        exhausted: True when the program ended during the segment.
    """

    mode: Mode
    ops: int
    cycles: int
    op_offset: int
    role: str
    exhausted: bool


@dataclass(frozen=True)
class SampleTaken(SessionEvent):
    """A measured segment produced a detailed sample.

    Attributes:
        index: 0-based sample index within the session.
        op_offset: program-global op count at which the sample started.
        ops: operations measured.
        cycles: cycles measured.
    """

    index: int
    op_offset: int
    ops: int
    cycles: int

    @property
    def ipc(self) -> float:
        """IPC over the sample."""
        return self.ops / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class PhaseChange(SessionEvent):
    """The online phase classifier changed (or created) the phase.

    Attributes:
        phase_id: the phase now current.
        previous_phase_id: the phase before this observation (None for
            the very first period).
        created: True when ``phase_id`` is brand new.
        distance: distance of the period's BBV to the previous period's
            (radians for the angle metric).
        n_observations: periods classified so far, this one included.
    """

    phase_id: int
    previous_phase_id: Optional[int]
    created: bool
    distance: float
    n_observations: int


@dataclass(frozen=True)
class EstimateUpdated(SessionEvent):
    """A technique refreshed its IPC estimate.

    Attributes:
        technique: technique name.
        ipc: the current estimate.
        n_samples: detailed samples consumed so far.
        final: True for the estimate a :class:`SamplingResult` reports.
    """

    technique: str
    ipc: float
    n_samples: int
    final: bool


@dataclass(frozen=True)
class ThresholdSelected(SessionEvent):
    """The adaptive selector settled on a classifier threshold.

    Attributes:
        threshold: the chosen value, as a fraction of pi.
        n_phases: phases the winning candidate found on the prefix.
        change_rate: the winning candidate's per-period change rate.
        usable: whether the choice satisfied the usability gates (False
            means it was the best-scoring fallback).
    """

    threshold: float
    n_phases: int
    change_rate: float
    usable: bool


#: An event handler; return value is ignored.
EventHandler = Callable[[SessionEvent], None]


class EventBus:
    """Synchronous observer bus with subtype dispatch.

    Handlers subscribe to an event *class* and receive every emitted
    instance of that class or its subclasses, in registration order —
    subscribing to :class:`SessionEvent` observes everything.  Emission
    is synchronous and exception-transparent: handlers run inline on
    the simulating thread and must not mutate simulation state.
    """

    def __init__(self) -> None:
        self._handlers: Dict[Type[SessionEvent], List[EventHandler]] = {}

    def subscribe(
        self, event_type: Type[SessionEvent], handler: EventHandler
    ) -> EventHandler:
        """Register *handler* for *event_type*; returns the handler."""
        self._handlers.setdefault(event_type, []).append(handler)
        return handler

    def unsubscribe(
        self, event_type: Type[SessionEvent], handler: EventHandler
    ) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._handlers.get(event_type)
        if handlers is not None and handler in handlers:
            handlers.remove(handler)

    def emit(self, event: SessionEvent) -> None:
        """Deliver *event* to every handler of its type or supertypes."""
        for klass in type(event).__mro__:
            handlers = self._handlers.get(klass)
            if handlers:
                for handler in list(handlers):
                    handler(event)
            if klass is SessionEvent:
                break
